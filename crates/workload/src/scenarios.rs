//! The paper's synthetic workload configurations (§V).
//!
//! Four sub-streams A–D make up every microbenchmark input:
//!
//! * **Gaussian**: A(μ=10, σ=5), B(1 000, 50), C(10 000, 500),
//!   D(100 000, 5 000) — Figure 5(a), 10(a).
//! * **Poisson**: A(λ=10), B(100), C(1 000), D(10 000) — Figure 5(b),
//!   10(b).
//! * **Fluctuating rates** (Figure 10): Setting1 (50k : 25k : 12.5k : 625),
//!   Setting2 (25k × 4), Setting3 (625 : 12.5k : 25k : 50k) items/s.
//! * **Extreme skew** (Figure 10(c)): Poisson λ = 10, 100, 1 000, 10⁷ with
//!   arrival shares 80%, 19.89%, 0.1%, 0.01%.

use crate::source::{StreamMix, SubStreamSpec, ValueDist};
use approxiot_core::{Batch, StratumId};
use std::time::Duration;

/// The four Gaussian value distributions A–D of §V.
pub fn gaussian_values() -> [ValueDist; 4] {
    [
        ValueDist::Gaussian {
            mu: 10.0,
            sigma: 5.0,
        },
        ValueDist::Gaussian {
            mu: 1_000.0,
            sigma: 50.0,
        },
        ValueDist::Gaussian {
            mu: 10_000.0,
            sigma: 500.0,
        },
        ValueDist::Gaussian {
            mu: 100_000.0,
            sigma: 5_000.0,
        },
    ]
}

/// The four Poisson value distributions A–D of §V.
pub fn poisson_values() -> [ValueDist; 4] {
    [
        ValueDist::Poisson { lambda: 10.0 },
        ValueDist::Poisson { lambda: 100.0 },
        ValueDist::Poisson { lambda: 1_000.0 },
        ValueDist::Poisson { lambda: 10_000.0 },
    ]
}

/// Arrival-rate settings of the Figure 10 experiments, items/s per
/// sub-stream A–D.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateSetting {
    /// (50k : 25k : 12.5k : 625) — sub-stream D is rare but most valuable.
    Setting1,
    /// (25k : 25k : 25k : 25k) — balanced.
    Setting2,
    /// (625 : 12.5k : 25k : 50k) — sub-stream D dominates.
    Setting3,
}

impl RateSetting {
    /// The per-sub-stream rates, items/s.
    pub fn rates(self) -> [f64; 4] {
        match self {
            RateSetting::Setting1 => [50_000.0, 25_000.0, 12_500.0, 625.0],
            RateSetting::Setting2 => [25_000.0; 4],
            RateSetting::Setting3 => [625.0, 12_500.0, 25_000.0, 50_000.0],
        }
    }

    /// All three settings, in paper order.
    pub fn all() -> [RateSetting; 3] {
        [
            RateSetting::Setting1,
            RateSetting::Setting2,
            RateSetting::Setting3,
        ]
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            RateSetting::Setting1 => "Setting1",
            RateSetting::Setting2 => "Setting2",
            RateSetting::Setting3 => "Setting3",
        }
    }
}

/// Builds the four-sub-stream mix from value distributions and rates.
pub fn mix_of(values: [ValueDist; 4], rates: [f64; 4], interval: Duration) -> StreamMix {
    let specs = values
        .into_iter()
        .zip(rates)
        .enumerate()
        .map(|(i, (v, r))| SubStreamSpec::new(StratumId::new(i as u32), r, v))
        .collect();
    StreamMix::new(specs, interval)
}

/// The Figure 5(a) mix: Gaussian values, equal rates summing to
/// `total_rate` items/s.
pub fn gaussian_mix(total_rate: f64, interval: Duration) -> StreamMix {
    mix_of(gaussian_values(), [total_rate / 4.0; 4], interval)
}

/// The Figure 5(b) mix: Poisson values, equal rates summing to
/// `total_rate` items/s.
pub fn poisson_mix(total_rate: f64, interval: Duration) -> StreamMix {
    mix_of(poisson_values(), [total_rate / 4.0; 4], interval)
}

/// The Figure 10(a) mix: Gaussian values with a [`RateSetting`].
pub fn gaussian_rate_mix(setting: RateSetting, interval: Duration) -> StreamMix {
    mix_of(gaussian_values(), setting.rates(), interval)
}

/// The Figure 10(b) mix: Poisson values with a [`RateSetting`].
pub fn poisson_rate_mix(setting: RateSetting, interval: Duration) -> StreamMix {
    mix_of(poisson_values(), setting.rates(), interval)
}

/// The Figure 10(c) extreme-skew mix: Poisson λ = 10, 100, 1 000, 10⁷ with
/// arrival shares 80%, 19.89%, 0.1% and 0.01% of `total_rate` items/s.
///
/// The rare sub-stream D carries values seven orders of magnitude larger
/// than A's, which is why SRS fails catastrophically here (up to 2 600×
/// worse accuracy in the paper).
pub fn skewed_mix(total_rate: f64, interval: Duration) -> StreamMix {
    let values = [
        ValueDist::Poisson { lambda: 10.0 },
        ValueDist::Poisson { lambda: 100.0 },
        ValueDist::Poisson { lambda: 1_000.0 },
        ValueDist::Poisson {
            lambda: 10_000_000.0,
        },
    ];
    let shares = [0.80, 0.1989, 0.001, 0.0001];
    let rates = [
        total_rate * shares[0],
        total_rate * shares[1],
        total_rate * shares[2],
        total_rate * shares[3],
    ];
    mix_of(values, rates, interval)
}

/// One level of the chaos sweep: a loss rate with its figure label.
///
/// The fault-injection experiments run the same workload over increasingly
/// lossy networks and compare estimate error against the per-window
/// completeness the root reports. Jitter (as a fraction of the window) and
/// light duplication ride along so every impairment knob is exercised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosLevel {
    /// Figure label ("loss 1%", …).
    pub label: &'static str,
    /// Per-hop frame loss probability.
    pub loss: f64,
    /// Per-hop frame duplication probability.
    pub duplicate: f64,
    /// Per-hop jitter bound as a fraction of the computation window.
    pub jitter_window_fraction: f64,
}

impl ChaosLevel {
    /// Percentage points of loss, as used in scenario ids and tables
    /// (`0`, `1`, `5`, `10`).
    pub fn loss_pct(&self) -> u32 {
        (self.loss * 100.0).round() as u32
    }
}

/// The full loss grid of the error-vs-cost matrix: `{0, 1%, 5%, 10%}`
/// frame loss per hop, each with proportional jitter and light
/// duplication. Level 0 is the unimpaired control (an all-zero spec —
/// must reproduce the clean run exactly); [`chaos_levels`] is the
/// three-level subset the chaos example sweeps.
pub fn matrix_levels() -> [ChaosLevel; 4] {
    [
        ChaosLevel {
            label: "loss 0%",
            loss: 0.0,
            duplicate: 0.0,
            jitter_window_fraction: 0.0,
        },
        ChaosLevel {
            label: "loss 1%",
            loss: 0.01,
            duplicate: 0.002,
            jitter_window_fraction: 0.05,
        },
        ChaosLevel {
            label: "loss 5%",
            loss: 0.05,
            duplicate: 0.01,
            jitter_window_fraction: 0.075,
        },
        ChaosLevel {
            label: "loss 10%",
            loss: 0.10,
            duplicate: 0.02,
            jitter_window_fraction: 0.10,
        },
    ]
}

/// The sampling fractions of the error-vs-cost matrix (the ROADMAP sweep:
/// 10% and 20% end to end).
pub const MATRIX_FRACTIONS: [f64; 2] = [0.10, 0.20];

/// The §III-E edge worker-shard counts of the thread-scaling matrix.
pub const MATRIX_WORKERS: [usize; 3] = [1, 2, 4];

/// The chaos sweep of the loss-vs-error experiments: a perfect network
/// (the control — must reproduce the unimpaired run exactly), 1% loss and
/// 10% loss, each with proportional jitter and light duplication. A
/// subset of [`matrix_levels`] (which adds the 5% midpoint).
pub fn chaos_levels() -> [ChaosLevel; 3] {
    let [control, low, _, high] = matrix_levels();
    [control, low, high]
}

/// The chaos-sweep workload: the Figure 5(a) Gaussian mix — four strata
/// whose scales span four orders of magnitude, so uncorrected loss shows
/// up immediately in the SUM estimate.
pub fn chaos_mix(total_rate: f64, interval: Duration) -> StreamMix {
    gaussian_mix(total_rate, interval)
}

/// Prepares one interval batch for a multi-source topology: remaps every
/// timestamp strictly inside window `t` (never on the boundary, so each
/// interval closes exactly one window) and splits the items over
/// `sources` per-source batches with a rotating round-robin — the
/// rotation advances one slot per full cycle, so periodic structure in
/// the mix (the four equal-rate strata interleave item by item) does not
/// lock a stratum onto a fixed subset of sources. The split stays
/// balanced to within one item, and every stratum reaches every source —
/// which is what lets the node-level Horvitz–Thompson rescale recover a
/// stratum when churn takes some (not all) of its sources dark.
///
/// This is the fixed-seed interval shape shared by the chaos and churn
/// examples and the bench harness's scenario matrix — one implementation,
/// so the examples' zero-impairment controls validate exactly the
/// workload the harness measures.
pub fn split_interval(mut batch: Batch, t: u64, window: Duration, sources: usize) -> Vec<Batch> {
    let window_nanos = window.as_nanos() as u64;
    for item in &mut batch.items {
        item.source_ts = t * window_nanos + 1 + item.source_ts % (window_nanos - 1);
    }
    let mut per_source: Vec<Batch> = (0..sources).map(|_| Batch::new()).collect();
    for (k, item) in batch.items.into_iter().enumerate() {
        per_source[(k + k / sources) % sources].items.push(item);
    }
    per_source
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chaos_levels_start_with_the_control() {
        let levels = chaos_levels();
        assert_eq!(levels[0].loss, 0.0, "level 0 is the unimpaired control");
        assert_eq!(levels[0].duplicate, 0.0);
        assert_eq!(levels[0].jitter_window_fraction, 0.0);
        assert_eq!(levels[1].loss, 0.01);
        assert_eq!(levels[2].loss, 0.10);
        assert!(levels.windows(2).all(|w| w[0].loss < w[1].loss));
        let mix = chaos_mix(1000.0, Duration::from_secs(1));
        assert_eq!(mix.strata().len(), 4);
    }

    #[test]
    fn matrix_levels_cover_the_roadmap_grid() {
        let levels = matrix_levels();
        assert_eq!(
            levels.map(|l| l.loss_pct()),
            [0, 1, 5, 10],
            "the ROADMAP sweep grid"
        );
        assert!(levels.windows(2).all(|w| w[0].loss < w[1].loss));
        // Jitter and duplication scale with loss (zero only at the control).
        assert!(levels[1..]
            .iter()
            .all(|l| l.duplicate > 0.0 && l.jitter_window_fraction > 0.0));
        // The chaos example's three levels are a strict subset.
        let chaos = chaos_levels();
        assert_eq!(chaos[0], levels[0]);
        assert_eq!(chaos[1], levels[1]);
        assert_eq!(chaos[2], levels[3]);
        assert_eq!(MATRIX_FRACTIONS, [0.10, 0.20]);
        assert_eq!(MATRIX_WORKERS, [1, 2, 4]);
    }

    #[test]
    fn split_interval_remaps_into_the_window_and_splits_round_robin() {
        let mut rng = StdRng::seed_from_u64(7);
        let window = Duration::from_secs(1);
        let nanos = window.as_nanos() as u64;
        let batch = chaos_mix(800.0, window).next_interval(&mut rng);
        let total = batch.len();
        let values: f64 = batch.value_sum();
        let parts = split_interval(batch, 3, window, 8);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts.iter().map(Batch::len).sum::<usize>(), total);
        // Rotating round-robin split is balanced to within one item...
        assert!(parts.iter().all(|p| p.len().abs_diff(total / 8) <= 1));
        // ...and de-correlates the mix's stratum interleaving from the
        // source index: every stratum reaches every source.
        for part in &parts {
            assert_eq!(part.strata().len(), 4, "stratum locked onto a source");
        }
        // Every timestamp lands strictly inside window 3.
        assert!(parts
            .iter()
            .flat_map(|p| &p.items)
            .all(|i| i.source_ts > 3 * nanos && i.source_ts < 4 * nanos));
        // Splitting moves items, never makes or loses value.
        let sum: f64 = parts.iter().map(Batch::value_sum).sum();
        assert!((sum - values).abs() < 1e-6);
    }

    #[test]
    fn gaussian_mix_has_four_strata() {
        let mix = gaussian_mix(1000.0, Duration::from_secs(1));
        assert_eq!(mix.strata().len(), 4);
        assert_eq!(mix.expected_items_per_interval(), 1000.0);
    }

    #[test]
    fn rate_settings_match_paper() {
        assert_eq!(
            RateSetting::Setting1.rates(),
            [50_000.0, 25_000.0, 12_500.0, 625.0]
        );
        assert_eq!(RateSetting::Setting2.rates(), [25_000.0; 4]);
        assert_eq!(
            RateSetting::Setting3.rates(),
            [625.0, 12_500.0, 25_000.0, 50_000.0]
        );
        assert_eq!(RateSetting::all().len(), 3);
        assert_eq!(RateSetting::Setting1.label(), "Setting1");
    }

    #[test]
    fn skewed_mix_shares_match_paper() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mix = skewed_mix(100_000.0, Duration::from_secs(1));
        let batch = mix.next_interval(&mut rng);
        let strata = batch.split_by_stratum();
        assert_eq!(strata.len(), 4);
        let total = batch.len() as f64;
        let share_a = strata[0].len() as f64 / total;
        let share_d = strata[3].len() as f64 / total;
        assert!((share_a - 0.80).abs() < 0.01, "A share {share_a}");
        assert!((share_d - 0.0001).abs() < 0.0001, "D share {share_d}");
    }

    #[test]
    fn skewed_mix_d_values_dominate() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mix = skewed_mix(100_000.0, Duration::from_secs(1));
        let batch = mix.next_interval(&mut rng);
        let strata = batch.split_by_stratum();
        assert_eq!(strata.len(), 4);
        let sum_d: f64 = strata[3].items.iter().map(|i| i.value).sum();
        let sum_a: f64 = strata[0].items.iter().map(|i| i.value).sum();
        assert!(sum_d > 50.0 * sum_a, "D should dwarf A: {sum_d} vs {sum_a}");
    }

    #[test]
    fn poisson_mix_values_are_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mix = poisson_mix(4_000.0, Duration::from_secs(1));
        let batch = mix.next_interval(&mut rng);
        assert!(batch
            .items
            .iter()
            .all(|i| i.value >= 0.0 && i.value.fract() == 0.0));
    }

    #[test]
    fn gaussian_rate_mix_uses_setting() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mix = gaussian_rate_mix(RateSetting::Setting1, Duration::from_millis(100));
        let batch = mix.next_interval(&mut rng);
        let strata = batch.split_by_stratum();
        assert_eq!(strata.len(), 4);
        assert_eq!(strata[0].len(), 5_000); // 50k * 0.1s
        assert_eq!(strata[3].len(), 62); // 625 * 0.1s (floor)
    }
}
