//! A trace-shaped stand-in for the DEBS 2015 NYC taxi-ride dataset
//! (paper §VI-A).
//!
//! The real dataset is not redistributable here, so we generate a stream
//! with the statistical features the Figure 11 experiments depend on:
//!
//! * **Strata = boroughs** (pickup regions), with very different ride
//!   volumes (Manhattan dominates, Staten Island is rare) — the stratified
//!   structure WHS exploits.
//! * **Fare values** are log-normal (heavy right tail: a few airport runs
//!   among many short hops), with per-borough means — the high value
//!   dispersion that makes this dataset *harder* than the pollution one
//!   (the paper's explanation of Figure 11(a)).
//! * **Diurnal rate modulation**: arrival rates swing over a simulated day
//!   (rush-hour peaks), so windows see fluctuating volumes.
//!
//! The query reproduced against this trace is the paper's: *total taxi fare
//! per time window*.

use crate::dist::LogNormal;
use approxiot_core::{Batch, StratumId, StreamItem};
use rand::Rng;
use std::time::Duration;

/// One borough's ride profile.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Borough {
    name: &'static str,
    /// Share of the total ride volume.
    volume_share: f64,
    /// Mean fare (USD).
    mean_fare: f64,
    /// Fare standard deviation (USD).
    std_fare: f64,
}

const BOROUGHS: [Borough; 5] = [
    Borough {
        name: "manhattan",
        volume_share: 0.70,
        mean_fare: 11.5,
        std_fare: 8.0,
    },
    Borough {
        name: "brooklyn",
        volume_share: 0.14,
        mean_fare: 14.0,
        std_fare: 10.0,
    },
    Borough {
        name: "queens",
        volume_share: 0.11,
        mean_fare: 24.0,
        std_fare: 16.0,
    },
    Borough {
        name: "bronx",
        volume_share: 0.04,
        mean_fare: 15.0,
        std_fare: 9.0,
    },
    Borough {
        name: "staten_island",
        volume_share: 0.01,
        mean_fare: 30.0,
        std_fare: 18.0,
    },
];

/// Generator for the taxi-shaped trace.
///
/// # Examples
///
/// ```
/// use approxiot_workload::TaxiTrace;
/// use rand::SeedableRng;
/// use std::time::Duration;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut trace = TaxiTrace::new(10_000.0, Duration::from_secs(1));
/// let batch = trace.next_interval(&mut rng);
/// assert!(!batch.is_empty());
/// assert!(batch.items.iter().all(|i| i.value > 0.0)); // fares are positive
/// ```
#[derive(Debug, Clone)]
pub struct TaxiTrace {
    base_rate_per_sec: f64,
    interval: Duration,
    now_nanos: u64,
    next_seq: [u64; BOROUGHS.len()],
    carry: [f64; BOROUGHS.len()],
    /// Simulated seconds per real second (compresses a day into a short
    /// run).
    time_compression: f64,
}

impl TaxiTrace {
    /// Nanoseconds per simulated day.
    const DAY_NANOS: f64 = 86_400.0 * 1e9;

    /// Creates a trace averaging `rate_per_sec` rides/s in batches of
    /// `interval`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate or zero interval.
    pub fn new(rate_per_sec: f64, interval: Duration) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        assert!(!interval.is_zero(), "interval must be positive");
        TaxiTrace {
            base_rate_per_sec: rate_per_sec,
            interval,
            now_nanos: 0,
            next_seq: [0; BOROUGHS.len()],
            carry: [0.0; BOROUGHS.len()],
            time_compression: 3600.0, // one simulated day ≈ 24 s of stream
        }
    }

    /// Changes how many simulated seconds pass per stream second (default
    /// 3600: a day in 24 s).
    pub fn with_time_compression(mut self, factor: f64) -> Self {
        self.time_compression = factor.max(1.0);
        self
    }

    /// Names of the strata, index-aligned with [`StratumId`]s.
    pub fn stratum_names() -> Vec<&'static str> {
        BOROUGHS.iter().map(|b| b.name).collect()
    }

    /// The strata produced by this trace.
    pub fn strata(&self) -> Vec<StratumId> {
        let mut ids = Vec::new();
        self.strata_into(&mut ids);
        ids
    }

    /// Fills `out` with the strata of this trace, ascending — the
    /// reused-buffer variant of [`TaxiTrace::strata`] (the
    /// [`approxiot_core::distinct_strata_into`] pattern), for callers
    /// polling per interval.
    pub fn strata_into(&self, out: &mut Vec<StratumId>) {
        out.clear();
        out.extend((0..BOROUGHS.len() as u32).map(StratumId::new));
    }

    /// Diurnal demand multiplier at a simulated time-of-day (double-peaked:
    /// morning and evening rush).
    fn diurnal(&self, nanos: u64) -> f64 {
        let sim_nanos = nanos as f64 * self.time_compression;
        let day_frac = (sim_nanos % Self::DAY_NANOS) / Self::DAY_NANOS;
        // Base load + morning peak (~8h) + taller evening peak (~19h).
        let gauss = |centre: f64, width: f64| {
            let d = (day_frac - centre)
                .abs()
                .min(1.0 - (day_frac - centre).abs());
            (-0.5 * (d / width).powi(2)).exp()
        };
        0.5 + 0.8 * gauss(8.0 / 24.0, 0.06) + 1.2 * gauss(19.0 / 24.0, 0.08)
    }

    /// Generates the next interval's rides.
    pub fn next_interval<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Batch {
        let interval_nanos = self.interval.as_nanos() as u64;
        let secs = self.interval.as_secs_f64();
        let demand = self.diurnal(self.now_nanos);
        let mut items = Vec::new();
        for (idx, borough) in BOROUGHS.iter().enumerate() {
            let exact =
                self.base_rate_per_sec * borough.volume_share * demand * secs + self.carry[idx];
            let count = exact.floor() as u64;
            self.carry[idx] = exact - count as f64;
            if count == 0 {
                continue;
            }
            let fares = LogNormal::from_mean_std(borough.mean_fare, borough.std_fare);
            let step = interval_nanos / count;
            for k in 0..count {
                items.push(StreamItem::with_meta(
                    StratumId::new(idx as u32),
                    fares.sample(rng),
                    self.next_seq[idx],
                    self.now_nanos + k * step,
                ));
                self.next_seq[idx] += 1;
            }
        }
        items.sort_by_key(|i| i.source_ts);
        self.now_nanos += interval_nanos;
        Batch::from_items(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn volume_shares_sum_to_one() {
        let total: f64 = BOROUGHS.iter().map(|b| b.volume_share).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_dominates_staten_island() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut trace = TaxiTrace::new(50_000.0, Duration::from_secs(1));
        let batch = trace.next_interval(&mut rng);
        let strata = batch.split_by_stratum();
        assert_eq!(strata[0].items[0].stratum, StratumId::new(0));
        let manhattan = strata[0].len();
        let staten = strata
            .iter()
            .find(|sub| sub.items[0].stratum == StratumId::new(4))
            .map_or(0, |sub| sub.len());
        assert!(manhattan > 30 * staten.max(1), "{manhattan} vs {staten}");
    }

    #[test]
    fn fares_are_positive_and_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut trace = TaxiTrace::new(20_000.0, Duration::from_secs(1));
        let batch = trace.next_interval(&mut rng);
        assert!(batch.items.iter().all(|i| i.value > 0.0));
        // Heavy tail: the max fare should far exceed the mean fare.
        let mean = batch.value_sum() / batch.len() as f64;
        let max = batch.items.iter().map(|i| i.value).fold(0.0, f64::max);
        assert!(max > 4.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn diurnal_rate_varies_over_the_day() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut trace = TaxiTrace::new(10_000.0, Duration::from_secs(1));
        let sizes: Vec<usize> = (0..24)
            .map(|_| trace.next_interval(&mut rng).len())
            .collect();
        let min = *sizes.iter().min().expect("nonempty");
        let max = *sizes.iter().max().expect("nonempty");
        assert!(
            max as f64 > 1.5 * min as f64,
            "rates flat: min {min}, max {max}"
        );
    }

    #[test]
    fn five_strata_are_named() {
        assert_eq!(TaxiTrace::stratum_names().len(), 5);
        let trace = TaxiTrace::new(1.0, Duration::from_secs(1));
        assert_eq!(trace.strata().len(), 5);
    }

    #[test]
    fn timestamps_advance_across_intervals() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut trace = TaxiTrace::new(1_000.0, Duration::from_millis(500));
        let b1 = trace.next_interval(&mut rng);
        let b2 = trace.next_interval(&mut rng);
        let max1 = b1.items.iter().map(|i| i.source_ts).max().expect("items");
        let min2 = b2.items.iter().map(|i| i.source_ts).min().expect("items");
        assert!(min2 > max1);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        TaxiTrace::new(0.0, Duration::from_secs(1));
    }
}
