//! Sub-stream sources and mixes: turn per-stratum specs into timestamped
//! item batches, one batch per time interval.

use crate::dist::{LogNormal, Normal, Poisson};
use approxiot_core::{Batch, StratumId, StreamItem};
use rand::Rng;
use std::time::Duration;

/// The value distribution of a sub-stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueDist {
    /// Gaussian values (the paper's §V Gaussian sub-streams).
    Gaussian {
        /// Mean.
        mu: f64,
        /// Standard deviation.
        sigma: f64,
    },
    /// Poisson-distributed values (the paper's §V Poisson sub-streams).
    Poisson {
        /// Mean.
        lambda: f64,
    },
    /// Log-normal values (taxi fares).
    LogNormal {
        /// Target mean of the variate.
        mean: f64,
        /// Target standard deviation of the variate.
        std_dev: f64,
    },
    /// A constant value (tests and calibration).
    Constant(f64),
}

impl ValueDist {
    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ValueDist::Gaussian { mu, sigma } => Normal::new(mu, sigma).sample(rng),
            ValueDist::Poisson { lambda } => Poisson::new(lambda).sample(rng),
            ValueDist::LogNormal { mean, std_dev } => {
                LogNormal::from_mean_std(mean, std_dev).sample(rng)
            }
            ValueDist::Constant(v) => v,
        }
    }

    /// The distribution's expected value (used by tests and by benches to
    /// compute analytic ground truths).
    pub fn mean(&self) -> f64 {
        match *self {
            ValueDist::Gaussian { mu, .. } => mu,
            ValueDist::Poisson { lambda } => lambda,
            ValueDist::LogNormal { mean, .. } => mean,
            ValueDist::Constant(v) => v,
        }
    }
}

/// Specification of one sub-stream: a stratum, an arrival rate and a value
/// distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubStreamSpec {
    /// Stratum identity.
    pub stratum: StratumId,
    /// Arrival rate in items per second.
    pub rate_per_sec: f64,
    /// Distribution of item values.
    pub values: ValueDist,
}

impl SubStreamSpec {
    /// Creates a spec.
    pub fn new(stratum: StratumId, rate_per_sec: f64, values: ValueDist) -> Self {
        SubStreamSpec {
            stratum,
            rate_per_sec,
            values,
        }
    }
}

/// A running sub-stream: spec plus sequence/time cursors.
#[derive(Debug, Clone)]
struct SubStreamState {
    spec: SubStreamSpec,
    next_seq: u64,
    /// Fractional item carry between intervals so rates below one
    /// item/interval still emit over time.
    carry: f64,
}

/// A set of sub-streams generating one [`Batch`] per interval.
///
/// Items within an interval are spread uniformly over the interval's time
/// span and interleaved across sub-streams in timestamp order — the shape a
/// leaf edge node would see from its sources.
///
/// # Examples
///
/// ```
/// use approxiot_core::StratumId;
/// use approxiot_workload::{StreamMix, SubStreamSpec, ValueDist};
/// use rand::SeedableRng;
/// use std::time::Duration;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut mix = StreamMix::new(
///     vec![SubStreamSpec::new(StratumId::new(0), 1000.0, ValueDist::Constant(1.0))],
///     Duration::from_secs(1),
/// );
/// let batch = mix.next_interval(&mut rng);
/// assert_eq!(batch.len(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct StreamMix {
    streams: Vec<SubStreamState>,
    interval: Duration,
    /// Start time of the next interval (nanoseconds).
    now_nanos: u64,
}

impl StreamMix {
    /// Creates a mix emitting one batch per `interval`.
    ///
    /// # Panics
    ///
    /// Panics on a zero interval or an empty spec list.
    pub fn new(specs: Vec<SubStreamSpec>, interval: Duration) -> Self {
        assert!(!specs.is_empty(), "a mix needs at least one sub-stream");
        assert!(!interval.is_zero(), "interval must be positive");
        StreamMix {
            streams: specs
                .into_iter()
                .map(|spec| SubStreamState {
                    spec,
                    next_seq: 0,
                    carry: 0.0,
                })
                .collect(),
            interval,
            now_nanos: 0,
        }
    }

    /// The interval length.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// The strata in this mix.
    pub fn strata(&self) -> Vec<StratumId> {
        let mut ids = Vec::new();
        self.strata_into(&mut ids);
        ids
    }

    /// Fills `out` with the distinct strata of this mix, ascending —
    /// the reused-buffer variant of [`StreamMix::strata`], following the
    /// same pattern as [`approxiot_core::distinct_strata_into`]: callers
    /// polling per interval keep one buffer alive instead of allocating a
    /// fresh vector per call.
    pub fn strata_into(&self, out: &mut Vec<StratumId>) {
        out.clear();
        out.extend(self.streams.iter().map(|s| s.spec.stratum));
        out.sort_unstable();
        out.dedup();
    }

    /// The sub-stream specs.
    pub fn specs(&self) -> Vec<SubStreamSpec> {
        self.streams.iter().map(|s| s.spec).collect()
    }

    /// Expected total items per interval (sum of rates × interval).
    pub fn expected_items_per_interval(&self) -> f64 {
        let secs = self.interval.as_secs_f64();
        self.streams
            .iter()
            .map(|s| s.spec.rate_per_sec * secs)
            .sum()
    }

    /// Replaces the arrival rate of `stratum`, returning `true` when the
    /// stratum exists (used by the fluctuating-rate experiments).
    pub fn set_rate(&mut self, stratum: StratumId, rate_per_sec: f64) -> bool {
        for s in &mut self.streams {
            if s.spec.stratum == stratum {
                s.spec.rate_per_sec = rate_per_sec;
                return true;
            }
        }
        false
    }

    /// Generates the next interval's batch; timestamps advance by one
    /// interval per call.
    pub fn next_interval<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Batch {
        let interval_nanos = self.interval.as_nanos() as u64;
        let base = self.now_nanos;
        let secs = self.interval.as_secs_f64();
        let mut items = Vec::new();
        for s in &mut self.streams {
            let exact = s.spec.rate_per_sec * secs + s.carry;
            let count = exact.floor() as u64;
            s.carry = exact - count as f64;
            if count == 0 {
                continue;
            }
            let step = interval_nanos / count.max(1);
            for k in 0..count {
                let ts = base + k * step;
                items.push(StreamItem::with_meta(
                    s.spec.stratum,
                    s.spec.values.sample(rng),
                    s.next_seq,
                    ts,
                ));
                s.next_seq += 1;
            }
        }
        items.sort_by_key(|i| i.source_ts);
        self.now_nanos = base + interval_nanos;
        Batch::from_items(items)
    }

    /// Current virtual time (start of the next interval), in nanoseconds.
    pub fn now_nanos(&self) -> u64 {
        self.now_nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn s(i: u32) -> StratumId {
        StratumId::new(i)
    }

    #[test]
    #[should_panic(expected = "at least one sub-stream")]
    fn empty_mix_rejected() {
        StreamMix::new(vec![], Duration::from_secs(1));
    }

    #[test]
    fn item_counts_match_rates() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mix = StreamMix::new(
            vec![
                SubStreamSpec::new(s(0), 100.0, ValueDist::Constant(1.0)),
                SubStreamSpec::new(s(1), 50.0, ValueDist::Constant(2.0)),
            ],
            Duration::from_secs(1),
        );
        let batch = mix.next_interval(&mut rng);
        let strata = batch.split_by_stratum();
        assert_eq!(strata.len(), 2);
        assert_eq!(strata[0].len(), 100);
        assert_eq!(strata[1].len(), 50);
        assert_eq!(mix.expected_items_per_interval(), 150.0);
    }

    #[test]
    fn strata_into_dedupes_and_reuses_the_buffer() {
        // Two specs sharing a stratum: the distinct set has two entries.
        let mix = StreamMix::new(
            vec![
                SubStreamSpec::new(s(3), 10.0, ValueDist::Constant(1.0)),
                SubStreamSpec::new(s(0), 10.0, ValueDist::Constant(1.0)),
                SubStreamSpec::new(s(3), 10.0, ValueDist::Constant(2.0)),
            ],
            Duration::from_secs(1),
        );
        let mut ids = Vec::with_capacity(8);
        let warm = ids.capacity();
        mix.strata_into(&mut ids);
        assert_eq!(ids, vec![s(0), s(3)], "sorted and deduped");
        mix.strata_into(&mut ids);
        assert_eq!(ids.capacity(), warm, "buffer reused across calls");
        assert_eq!(mix.strata(), vec![s(0), s(3)]);
    }

    #[test]
    fn fractional_rates_accumulate_via_carry() {
        let mut rng = StdRng::seed_from_u64(2);
        // 0.5 items/sec with 1-second intervals: one item every two calls.
        let mut mix = StreamMix::new(
            vec![SubStreamSpec::new(s(0), 0.5, ValueDist::Constant(1.0))],
            Duration::from_secs(1),
        );
        let counts: Vec<usize> = (0..6).map(|_| mix.next_interval(&mut rng).len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 3);
    }

    #[test]
    fn timestamps_fall_inside_interval_and_advance() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mix = StreamMix::new(
            vec![SubStreamSpec::new(s(0), 10.0, ValueDist::Constant(1.0))],
            Duration::from_secs(1),
        );
        let first = mix.next_interval(&mut rng);
        assert!(first.items.iter().all(|i| i.source_ts < 1_000_000_000));
        let second = mix.next_interval(&mut rng);
        assert!(second
            .items
            .iter()
            .all(|i| (1_000_000_000..2_000_000_000).contains(&i.source_ts)));
        assert_eq!(mix.now_nanos(), 2_000_000_000);
    }

    #[test]
    fn sequences_are_dense_per_stratum() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mix = StreamMix::new(
            vec![SubStreamSpec::new(s(0), 20.0, ValueDist::Constant(1.0))],
            Duration::from_secs(1),
        );
        let b1 = mix.next_interval(&mut rng);
        let b2 = mix.next_interval(&mut rng);
        let mut seqs: Vec<u64> = b1
            .items
            .iter()
            .chain(b2.items.iter())
            .map(|i| i.seq)
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..40).collect::<Vec<u64>>());
    }

    #[test]
    fn set_rate_changes_future_intervals() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mix = StreamMix::new(
            vec![SubStreamSpec::new(s(0), 10.0, ValueDist::Constant(1.0))],
            Duration::from_secs(1),
        );
        assert!(mix.set_rate(s(0), 30.0));
        assert!(!mix.set_rate(s(9), 1.0));
        assert_eq!(mix.next_interval(&mut rng).len(), 30);
    }

    #[test]
    fn batch_is_sorted_by_timestamp() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut mix = StreamMix::new(
            vec![
                SubStreamSpec::new(s(0), 500.0, ValueDist::Constant(1.0)),
                SubStreamSpec::new(s(1), 300.0, ValueDist::Constant(1.0)),
            ],
            Duration::from_secs(1),
        );
        let batch = mix.next_interval(&mut rng);
        assert!(batch
            .items
            .windows(2)
            .all(|w| w[0].source_ts <= w[1].source_ts));
    }

    #[test]
    fn gaussian_values_have_right_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let dist = ValueDist::Gaussian {
            mu: 1000.0,
            sigma: 50.0,
        };
        let mut mix = StreamMix::new(
            vec![SubStreamSpec::new(s(0), 20_000.0, dist)],
            Duration::from_secs(1),
        );
        let batch = mix.next_interval(&mut rng);
        let mean = batch.value_sum() / batch.len() as f64;
        assert!((mean - 1000.0).abs() < 2.0, "mean {mean}");
        assert_eq!(dist.mean(), 1000.0);
    }

    #[test]
    fn value_dist_means() {
        assert_eq!(ValueDist::Poisson { lambda: 5.0 }.mean(), 5.0);
        assert_eq!(
            ValueDist::LogNormal {
                mean: 12.0,
                std_dev: 3.0
            }
            .mean(),
            12.0
        );
        assert_eq!(ValueDist::Constant(9.0).mean(), 9.0);
    }
}
