//! Replaying real trace files.
//!
//! The evaluation's generators ([`crate::TaxiTrace`], [`crate::PollutionTrace`])
//! are trace-*shaped* stand-ins because the DEBS'15 and CityBench datasets
//! are not redistributable. Users who have the original CSVs can replay
//! them through this module instead: [`CsvTraceReader`] parses delimited
//! records into [`StreamItem`]s and groups them into interval batches,
//! ready for `SimTree::push_interval` or the threaded pipeline.
//!
//! The parser handles plain delimited text (no quoted-field escapes — the
//! DEBS taxi dump uses none) and is configured by column indices, so it
//! also covers the CityBench pollution CSVs and similar sensor logs.

use approxiot_core::{Batch, StratumId, StreamItem};
use std::collections::BTreeMap;
use std::fmt;
use std::io::BufRead;

/// Which columns of a delimited record to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsvSchema {
    /// Column holding the numeric value the query aggregates
    /// (e.g. `total_amount`, column 16, in the DEBS taxi dump).
    pub value_column: usize,
    /// Column whose contents identify the stratum (e.g. `medallion`,
    /// column 0). Distinct strings map to distinct dense [`StratumId`]s.
    pub stratum_column: usize,
    /// Optional column holding a timestamp in seconds (fractions allowed).
    /// When `None`, records are stamped by their position at replay rate.
    pub timestamp_column: Option<usize>,
    /// Field delimiter.
    pub delimiter: char,
    /// Skip the first line (header row).
    pub has_header: bool,
}

impl CsvSchema {
    /// The DEBS 2015 taxi-trip layout: stratum = medallion (column 0),
    /// value = total_amount (column 16), event time = pickup_datetime is
    /// textual so positional stamping is used.
    pub fn debs_taxi() -> Self {
        CsvSchema {
            value_column: 16,
            stratum_column: 0,
            timestamp_column: None,
            delimiter: ',',
            has_header: false,
        }
    }

    /// A generic `stratum,value` two-column layout (handy for tests and
    /// quick experiments).
    pub fn two_column() -> Self {
        CsvSchema {
            value_column: 1,
            stratum_column: 0,
            timestamp_column: None,
            delimiter: ',',
            has_header: false,
        }
    }
}

/// A parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

/// Reads delimited trace records into [`StreamItem`]s.
///
/// Stratum strings are interned to dense ids in first-seen order;
/// [`CsvTraceReader::stratum_names`] recovers the mapping for reporting.
///
/// # Examples
///
/// ```
/// use approxiot_workload::replay::{CsvSchema, CsvTraceReader};
///
/// let csv = "sensorA,1.5\nsensorB,2.0\nsensorA,3.0\n";
/// let mut reader = CsvTraceReader::new(CsvSchema::two_column());
/// let items = reader.read_items(csv.as_bytes())?;
/// assert_eq!(items.len(), 3);
/// assert_eq!(reader.stratum_names(), vec!["sensorA", "sensorB"]);
/// assert_eq!(items[0].stratum, items[2].stratum);
/// # Ok::<(), approxiot_workload::replay::ParseTraceError>(())
/// ```
#[derive(Debug)]
pub struct CsvTraceReader {
    schema: CsvSchema,
    strata: BTreeMap<String, StratumId>,
    names: Vec<String>,
    next_seq: BTreeMap<StratumId, u64>,
    position: u64,
}

impl CsvTraceReader {
    /// Creates a reader for the given schema.
    pub fn new(schema: CsvSchema) -> Self {
        CsvTraceReader {
            schema,
            strata: BTreeMap::new(),
            names: Vec::new(),
            next_seq: BTreeMap::new(),
            position: 0,
        }
    }

    /// The schema in use.
    pub fn schema(&self) -> CsvSchema {
        self.schema
    }

    /// Stratum names in id order (index = `StratumId::index()`).
    pub fn stratum_names(&self) -> Vec<&str> {
        self.names.iter().map(String::as_str).collect()
    }

    fn intern(&mut self, name: &str) -> StratumId {
        if let Some(&id) = self.strata.get(name) {
            return id;
        }
        let id = StratumId::new(self.names.len() as u32);
        self.strata.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    /// Parses every record of `input` into items. Positional timestamps
    /// advance by one microsecond per record unless the schema names a
    /// timestamp column.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] for short rows, unparsable numbers or
    /// I/O failures.
    pub fn read_items<R: BufRead>(&mut self, input: R) -> Result<Vec<StreamItem>, ParseTraceError> {
        let mut items = Vec::new();
        for (idx, line) in input.lines().enumerate() {
            let line_no = idx + 1;
            let line = line.map_err(|e| ParseTraceError {
                line: line_no,
                reason: format!("read error: {e}"),
            })?;
            if idx == 0 && self.schema.has_header {
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(self.schema.delimiter).collect();
            let need = self
                .schema
                .value_column
                .max(self.schema.stratum_column)
                .max(self.schema.timestamp_column.unwrap_or(0));
            if fields.len() <= need {
                return Err(ParseTraceError {
                    line: line_no,
                    reason: format!(
                        "expected at least {} fields, found {}",
                        need + 1,
                        fields.len()
                    ),
                });
            }
            let value: f64 = fields[self.schema.value_column]
                .trim()
                .parse()
                .map_err(|_| ParseTraceError {
                    line: line_no,
                    reason: format!("bad value {:?}", fields[self.schema.value_column]),
                })?;
            let stratum = self.intern(fields[self.schema.stratum_column].trim());
            let ts = match self.schema.timestamp_column {
                Some(col) => {
                    let secs: f64 = fields[col].trim().parse().map_err(|_| ParseTraceError {
                        line: line_no,
                        reason: format!("bad timestamp {:?}", fields[col]),
                    })?;
                    (secs * 1e9) as u64
                }
                None => {
                    let ts = self.position * 1_000; // 1 µs per record
                    self.position += 1;
                    ts
                }
            };
            let seq = self.next_seq.entry(stratum).or_insert(0);
            items.push(StreamItem::with_meta(stratum, value, *seq, ts));
            *seq += 1;
        }
        Ok(items)
    }

    /// Parses `input` and groups the items into batches of
    /// `interval_nanos` by timestamp — the shape `SimTree::push_interval`
    /// and the pipeline expect.
    ///
    /// # Errors
    ///
    /// Propagates [`ParseTraceError`] from [`CsvTraceReader::read_items`].
    ///
    /// # Panics
    ///
    /// Panics if `interval_nanos` is zero.
    pub fn read_batches<R: BufRead>(
        &mut self,
        input: R,
        interval_nanos: u64,
    ) -> Result<Vec<Batch>, ParseTraceError> {
        assert!(interval_nanos > 0, "interval must be positive");
        let items = self.read_items(input)?;
        let mut per_interval: BTreeMap<u64, Vec<StreamItem>> = BTreeMap::new();
        for item in items {
            per_interval
                .entry(item.source_ts / interval_nanos)
                .or_default()
                .push(item);
        }
        Ok(per_interval.into_values().map(Batch::from_items).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_column_roundtrip() {
        let csv = "a,1.0\nb,2.5\na,-3.0\n";
        let mut reader = CsvTraceReader::new(CsvSchema::two_column());
        let items = reader.read_items(csv.as_bytes()).expect("parses");
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].value, 1.0);
        assert_eq!(items[2].value, -3.0);
        assert_eq!(items[0].stratum, items[2].stratum);
        assert_ne!(items[0].stratum, items[1].stratum);
        // Per-stratum sequences are dense.
        assert_eq!(items[0].seq, 0);
        assert_eq!(items[2].seq, 1);
    }

    #[test]
    fn header_is_skipped() {
        let csv = "sensor,value\na,1.0\n";
        let schema = CsvSchema {
            has_header: true,
            ..CsvSchema::two_column()
        };
        let mut reader = CsvTraceReader::new(schema);
        let items = reader.read_items(csv.as_bytes()).expect("parses");
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn blank_lines_are_ignored() {
        let csv = "a,1.0\n\n  \nb,2.0\n";
        let mut reader = CsvTraceReader::new(CsvSchema::two_column());
        assert_eq!(reader.read_items(csv.as_bytes()).expect("parses").len(), 2);
    }

    #[test]
    fn short_rows_error_with_line_number() {
        let csv = "a,1.0\nbad-row\n";
        let mut reader = CsvTraceReader::new(CsvSchema::two_column());
        let err = reader.read_items(csv.as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("fields"));
    }

    #[test]
    fn bad_numbers_error() {
        let csv = "a,not-a-number\n";
        let mut reader = CsvTraceReader::new(CsvSchema::two_column());
        let err = reader.read_items(csv.as_bytes()).unwrap_err();
        assert!(err.reason.contains("bad value"));
    }

    #[test]
    fn timestamp_column_drives_batching() {
        let csv = "a,1.0,0.05\na,2.0,0.15\na,3.0,0.16\n";
        let schema = CsvSchema {
            value_column: 1,
            stratum_column: 0,
            timestamp_column: Some(2),
            delimiter: ',',
            has_header: false,
        };
        let mut reader = CsvTraceReader::new(schema);
        let batches = reader
            .read_batches(csv.as_bytes(), 100_000_000)
            .expect("parses");
        assert_eq!(batches.len(), 2, "0.05 s | 0.15+0.16 s");
        assert_eq!(batches[0].len(), 1);
        assert_eq!(batches[1].len(), 2);
    }

    #[test]
    fn debs_taxi_layout_parses_a_realistic_row() {
        // A row in the DEBS 2015 dump's 17-column layout.
        let row = "07290D3599E7A0D62097A346EFCC1FB5,E7750A37CAB07D0DFF0AF7E3573AC141,\
                   2013-01-01 00:00:00,2013-01-01 00:02:00,120,0.44,-73.956528,40.716976,\
                   -73.962440,40.715008,CSH,3.50,0.50,0.50,0.00,0.00,4.50\n";
        let mut reader = CsvTraceReader::new(CsvSchema::debs_taxi());
        let items = reader.read_items(row.as_bytes()).expect("parses");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].value, 4.50, "total_amount column");
        assert_eq!(
            reader.stratum_names().len(),
            1,
            "medallion interned as stratum"
        );
    }

    #[test]
    fn replayed_batches_flow_through_whs() {
        use approxiot_core::{whs_sample, Allocation, ThetaStore, WeightMap};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let csv: String = (0..500)
            .map(|i| format!("s{},{}\n", i % 3, (i % 7) as f64))
            .collect();
        let mut reader = CsvTraceReader::new(CsvSchema::two_column());
        let batches = reader
            .read_batches(csv.as_bytes(), 100_000)
            .expect("parses");
        let mut rng = StdRng::seed_from_u64(1);
        let mut theta = ThetaStore::new();
        let mut truth = 0.0;
        for batch in &batches {
            truth += batch.value_sum();
            theta.push(whs_sample(
                batch,
                20,
                &WeightMap::new(),
                Allocation::Uniform,
                &mut rng,
            ));
        }
        // Count reconstruction is exact even on replayed data.
        assert!((theta.count_estimate() - 500.0).abs() < 1e-9);
        let est = theta.sum_estimate().value;
        assert!((est - truth).abs() / truth < 0.25);
    }
}
