//! Random-variate sampling implemented from first principles.
//!
//! The approved offline dependency set includes `rand` but not `rand_distr`,
//! so the distributions the paper's workloads need are implemented here:
//!
//! * [`Normal`] — Box–Muller transform.
//! * [`Poisson`] — Knuth's product method for small `λ`, normal
//!   approximation for large `λ` (the evaluation's skew experiment uses
//!   `λ = 10⁷`, far inside the approximation's comfort zone).
//! * [`LogNormal`] — exponentiated normal (used by the taxi-fare model).
//! * [`Exponential`] — inverse transform (inter-arrival gaps).

use rand::Rng;

/// Gaussian distribution sampled with the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use approxiot_workload::Normal;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let n = Normal::new(10.0, 5.0);
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite(),
            "invalid normal parameters mean={mean} std_dev={std_dev}"
        );
        Normal { mean, std_dev }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Draws a standard-normal variate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to keep ln() finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Poisson distribution.
///
/// Small means use Knuth's exact product method; means above
/// [`Poisson::NORMAL_APPROX_THRESHOLD`] use the normal approximation
/// `N(λ, λ)` rounded and clamped at zero, whose relative error is
/// negligible there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Mean above which the normal approximation is used.
    pub const NORMAL_APPROX_THRESHOLD: f64 = 64.0;

    /// Creates a Poisson distribution with mean `lambda`.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda` is positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "invalid poisson lambda {lambda}"
        );
        Poisson { lambda }
    }

    /// The mean.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda <= Self::NORMAL_APPROX_THRESHOLD {
            // Knuth: count multiplications until the product drops below
            // e^-λ.
            let limit = (-self.lambda).exp();
            let mut product: f64 = rng.random();
            let mut count = 0u64;
            while product > limit {
                product *= rng.random::<f64>();
                count += 1;
            }
            count as f64
        } else {
            let approx = self.lambda + self.lambda.sqrt() * standard_normal(rng);
            approx.round().max(0.0)
        }
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))` of the underlying normal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    underlying: Normal,
}

impl LogNormal {
    /// Creates a log-normal from the *underlying normal's* parameters.
    ///
    /// # Panics
    ///
    /// Panics on invalid underlying parameters (see [`Normal::new`]).
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            underlying: Normal::new(mu, sigma),
        }
    }

    /// Creates a log-normal whose *own* mean and standard deviation match
    /// the given values (solves for the underlying parameters).
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `std_dev >= 0`.
    pub fn from_mean_std(mean: f64, std_dev: f64) -> Self {
        assert!(mean > 0.0, "log-normal mean must be positive, got {mean}");
        assert!(
            std_dev >= 0.0,
            "std_dev must be non-negative, got {std_dev}"
        );
        let cv2 = (std_dev / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt())
    }

    /// Draws one variate (always positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.underlying.sample(rng).exp()
    }
}

/// Exponential distribution via inverse transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate (`1/mean`).
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "invalid exponential rate {rate}"
        );
        Exponential { rate }
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>();
        -u.ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(100.0, 15.0);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 15.0).abs() < 0.5, "std {}", var.sqrt());
        assert_eq!(d.mean(), 100.0);
        assert_eq!(d.std_dev(), 15.0);
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Normal::new(7.0, 0.0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 7.0);
        }
    }

    #[test]
    #[should_panic(expected = "invalid normal parameters")]
    fn normal_rejects_negative_std() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Poisson::new(4.0);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
        // Integer-valued and non-negative.
        assert!(samples.iter().all(|&x| x >= 0.0 && x.fract() == 0.0));
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approx() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Poisson::new(10_000_000.0);
        let samples: Vec<f64> = (0..5_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean / 1e7 - 1.0).abs() < 0.001, "mean {mean}");
        assert!((var / 1e7 - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson_threshold_continuity() {
        // Means just below and above the threshold should produce similar
        // moments (no discontinuity at the switch).
        let mut rng = StdRng::seed_from_u64(5);
        let below = Poisson::new(Poisson::NORMAL_APPROX_THRESHOLD - 1.0);
        let above = Poisson::new(Poisson::NORMAL_APPROX_THRESHOLD + 1.0);
        let mb = moments(
            &(0..30_000)
                .map(|_| below.sample(&mut rng))
                .collect::<Vec<_>>(),
        )
        .0;
        let ma = moments(
            &(0..30_000)
                .map(|_| above.sample(&mut rng))
                .collect::<Vec<_>>(),
        )
        .0;
        assert!((ma - mb - 2.0).abs() < 0.5, "means {mb} vs {ma}");
    }

    #[test]
    #[should_panic(expected = "invalid poisson lambda")]
    fn poisson_rejects_zero_lambda() {
        Poisson::new(0.0);
    }

    #[test]
    fn lognormal_is_positive_and_matches_target_moments() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = LogNormal::from_mean_std(12.5, 9.0);
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let (mean, var) = moments(&samples);
        assert!((mean - 12.5).abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - 9.0).abs() < 0.4, "std {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "log-normal mean must be positive")]
    fn lognormal_rejects_nonpositive_mean() {
        LogNormal::from_mean_std(0.0, 1.0);
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Exponential::new(2.0);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, _) = moments(&samples);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn standard_normal_symmetry() {
        let mut rng = StdRng::seed_from_u64(8);
        let positive = (0..50_000)
            .filter(|_| standard_normal(&mut rng) > 0.0)
            .count();
        let frac = positive as f64 / 50_000.0;
        assert!((frac - 0.5).abs() < 0.02, "positive fraction {frac}");
    }
}
