//! # approxiot-workload
//!
//! Workload generators for the ApproxIoT reproduction: the synthetic
//! sub-stream mixes of the paper's microbenchmarks (§V) and trace-shaped
//! stand-ins for its two real-world datasets (§VI).
//!
//! * [`StreamMix`] — general sub-stream mixer: per-stratum rates and value
//!   distributions, one [`approxiot_core::Batch`] per interval.
//! * [`scenarios`] — the paper's exact configurations: Gaussian/Poisson
//!   A–D mixes (Figure 5), fluctuating rate settings (Figure 10(a,b)) and
//!   the extreme-skew mix (Figure 10(c)).
//! * [`TaxiTrace`] — NYC-taxi-shaped stream: borough strata, log-normal
//!   fares, diurnal demand (Figure 11, "NYC Taxi").
//! * [`PollutionTrace`] — Brasov-pollution-shaped stream: four pollutant
//!   strata with mean-reverting, low-variance readings (Figure 11,
//!   "Brasov Pollution").
//! * [`dist`] — Normal/Poisson/LogNormal/Exponential variate generation
//!   implemented from scratch (the offline dependency set has no
//!   `rand_distr`).
//!
//! ## Example
//!
//! ```
//! use approxiot_workload::scenarios;
//! use rand::SeedableRng;
//! use std::time::Duration;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut mix = scenarios::gaussian_mix(10_000.0, Duration::from_secs(1));
//! let batch = mix.next_interval(&mut rng);
//! assert_eq!(batch.strata().len(), 4); // sub-streams A–D
//! ```

#![forbid(unsafe_code)]

pub mod dist;
pub mod pollution;
pub mod replay;
pub mod scenarios;
pub mod source;
pub mod taxi;

pub use dist::{standard_normal, Exponential, LogNormal, Normal, Poisson};
pub use pollution::PollutionTrace;
pub use replay::{CsvSchema, CsvTraceReader, ParseTraceError};
pub use scenarios::RateSetting;
pub use source::{StreamMix, SubStreamSpec, ValueDist};
pub use taxi::TaxiTrace;
