//! A trace-shaped stand-in for the Brasov pollution dataset (CityBench,
//! paper §VI-B).
//!
//! The real dataset: pollution sensors around Brasov, Romania reporting
//! particulate matter, carbon monoxide, sulfur dioxide and nitrogen dioxide
//! every five minutes over three months. Its key property for the Figure 11
//! experiments is that values are **much more stable** than taxi fares —
//! which is why the paper sees a "similar but lower" accuracy-loss curve.
//!
//! We reproduce that with four pollutant strata whose readings follow an
//! AR(1) (mean-reverting) process around a fixed baseline with small noise,
//! reported by a configurable fleet of sensors.

use crate::dist::standard_normal;
use approxiot_core::{Batch, StratumId, StreamItem};
use rand::Rng;
use std::time::Duration;

/// One pollutant channel.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Pollutant {
    name: &'static str,
    /// Long-run mean of the air-quality reading.
    baseline: f64,
    /// Noise per step (small relative to baseline → stable values).
    noise: f64,
    /// Mean-reversion coefficient of the AR(1) process.
    reversion: f64,
}

const POLLUTANTS: [Pollutant; 4] = [
    Pollutant {
        name: "particulate_matter",
        baseline: 35.0,
        noise: 1.5,
        reversion: 0.92,
    },
    Pollutant {
        name: "carbon_monoxide",
        baseline: 4.5,
        noise: 0.15,
        reversion: 0.95,
    },
    Pollutant {
        name: "sulfur_dioxide",
        baseline: 12.0,
        noise: 0.5,
        reversion: 0.9,
    },
    Pollutant {
        name: "nitrogen_dioxide",
        baseline: 28.0,
        noise: 1.0,
        reversion: 0.93,
    },
];

/// Generator for the pollution-shaped trace.
///
/// Each of `sensors` stations reports one reading per pollutant per
/// reporting period (5 minutes in the real dataset, compressed here so a
/// run exercises many periods). Strata are pollutants, matching the paper's
/// query: *total pollution value per pollutant per window*.
///
/// # Examples
///
/// ```
/// use approxiot_workload::PollutionTrace;
/// use rand::SeedableRng;
/// use std::time::Duration;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut trace = PollutionTrace::new(500, Duration::from_secs(1));
/// let batch = trace.next_interval(&mut rng);
/// assert_eq!(batch.len(), 500 * 4); // every sensor reports every pollutant
/// ```
#[derive(Debug, Clone)]
pub struct PollutionTrace {
    sensors: usize,
    interval: Duration,
    now_nanos: u64,
    next_seq: [u64; POLLUTANTS.len()],
    /// AR(1) state per pollutant per sensor, flattened
    /// `[pollutant * sensors + sensor]`.
    state: Vec<f64>,
}

impl PollutionTrace {
    /// Creates a trace with `sensors` stations reporting once per
    /// `interval`.
    ///
    /// # Panics
    ///
    /// Panics on zero sensors or a zero interval.
    pub fn new(sensors: usize, interval: Duration) -> Self {
        assert!(sensors > 0, "need at least one sensor");
        assert!(!interval.is_zero(), "interval must be positive");
        let state = POLLUTANTS
            .iter()
            .flat_map(|p| std::iter::repeat(p.baseline).take(sensors))
            .collect();
        PollutionTrace {
            sensors,
            interval,
            now_nanos: 0,
            next_seq: [0; POLLUTANTS.len()],
            state,
        }
    }

    /// Names of the strata, index-aligned with [`StratumId`]s.
    pub fn stratum_names() -> Vec<&'static str> {
        POLLUTANTS.iter().map(|p| p.name).collect()
    }

    /// The strata produced by this trace.
    pub fn strata(&self) -> Vec<StratumId> {
        let mut ids = Vec::new();
        self.strata_into(&mut ids);
        ids
    }

    /// Fills `out` with the strata of this trace, ascending — the
    /// reused-buffer variant of [`PollutionTrace::strata`] (the
    /// [`approxiot_core::distinct_strata_into`] pattern), for callers
    /// polling per interval.
    pub fn strata_into(&self, out: &mut Vec<StratumId>) {
        out.clear();
        out.extend((0..POLLUTANTS.len() as u32).map(StratumId::new));
    }

    /// Number of sensor stations.
    pub fn sensors(&self) -> usize {
        self.sensors
    }

    /// Generates the next reporting period's readings.
    pub fn next_interval<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Batch {
        let interval_nanos = self.interval.as_nanos() as u64;
        let step = interval_nanos / (self.sensors as u64).max(1);
        let mut items = Vec::with_capacity(self.sensors * POLLUTANTS.len());
        for (p_idx, pollutant) in POLLUTANTS.iter().enumerate() {
            for sensor in 0..self.sensors {
                let idx = p_idx * self.sensors + sensor;
                // AR(1): x' = baseline + r (x − baseline) + noise.
                let x = self.state[idx];
                let next = pollutant.baseline
                    + pollutant.reversion * (x - pollutant.baseline)
                    + pollutant.noise * standard_normal(rng);
                self.state[idx] = next.max(0.0); // readings cannot go negative
                items.push(StreamItem::with_meta(
                    StratumId::new(p_idx as u32),
                    self.state[idx],
                    self.next_seq[p_idx],
                    self.now_nanos + sensor as u64 * step,
                ));
                self.next_seq[p_idx] += 1;
            }
        }
        items.sort_by_key(|i| i.source_ts);
        self.now_nanos += interval_nanos;
        Batch::from_items(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_sensor_reports_every_pollutant() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut trace = PollutionTrace::new(50, Duration::from_secs(1));
        let batch = trace.next_interval(&mut rng);
        let strata = batch.split_by_stratum();
        assert_eq!(strata.len(), 4);
        for sub in &strata {
            assert_eq!(sub.len(), 50);
        }
    }

    #[test]
    fn readings_stay_near_baselines() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut trace = PollutionTrace::new(100, Duration::from_secs(1));
        // Let the AR(1) processes mix.
        for _ in 0..50 {
            trace.next_interval(&mut rng);
        }
        let batch = trace.next_interval(&mut rng);
        let strata = batch.split_by_stratum();
        for (p_idx, pollutant) in POLLUTANTS.iter().enumerate() {
            assert_eq!(strata[p_idx].items[0].stratum, StratumId::new(p_idx as u32));
            let items = &strata[p_idx].items;
            let mean: f64 = items.iter().map(|i| i.value).sum::<f64>() / items.len() as f64;
            let rel = (mean - pollutant.baseline).abs() / pollutant.baseline;
            assert!(
                rel < 0.25,
                "{}: mean {mean} vs baseline {}",
                pollutant.name,
                pollutant.baseline
            );
        }
    }

    #[test]
    fn pollution_values_are_stabler_than_taxi_fares() {
        // The property behind Figure 11(a)'s "similar but lower" curve:
        // coefficient of variation of pollution readings ≪ taxi fares.
        let mut rng = StdRng::seed_from_u64(3);
        let mut trace = PollutionTrace::new(200, Duration::from_secs(1));
        for _ in 0..20 {
            trace.next_interval(&mut rng);
        }
        let batch = trace.next_interval(&mut rng);
        let values: Vec<f64> = batch.items.iter().map(|i| i.value).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        let cv_per_stratum: Vec<f64> = batch
            .split_by_stratum()
            .iter()
            .map(|sub| {
                let items = &sub.items;
                let m: f64 = items.iter().map(|i| i.value).sum::<f64>() / items.len() as f64;
                let v: f64 =
                    items.iter().map(|i| (i.value - m).powi(2)).sum::<f64>() / items.len() as f64;
                v.sqrt() / m
            })
            .collect();
        // Within-stratum CV is small (stable sensors).
        assert!(
            cv_per_stratum.iter().all(|&cv| cv < 0.35),
            "CVs {cv_per_stratum:?}"
        );
        let _ = var; // overall dispersion dominated by stratum baselines
    }

    #[test]
    fn readings_never_negative() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut trace = PollutionTrace::new(20, Duration::from_secs(1));
        for _ in 0..100 {
            let batch = trace.next_interval(&mut rng);
            assert!(batch.items.iter().all(|i| i.value >= 0.0));
        }
    }

    #[test]
    fn names_and_strata_align() {
        assert_eq!(
            PollutionTrace::stratum_names(),
            vec![
                "particulate_matter",
                "carbon_monoxide",
                "sulfur_dioxide",
                "nitrogen_dioxide"
            ]
        );
        let trace = PollutionTrace::new(1, Duration::from_secs(1));
        assert_eq!(trace.strata().len(), 4);
        assert_eq!(trace.sensors(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one sensor")]
    fn rejects_zero_sensors() {
        PollutionTrace::new(0, Duration::from_secs(1));
    }
}
