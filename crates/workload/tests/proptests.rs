//! Property-based tests on the workload generators.

use approxiot_core::StratumId;
use approxiot_workload::{
    Exponential, LogNormal, Normal, Poisson, PollutionTrace, StreamMix, SubStreamSpec, TaxiTrace,
    ValueDist,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The mix's long-run item count per stratum tracks its configured rate
    /// exactly (the fractional carry loses nothing).
    #[test]
    fn mix_item_counts_track_rates(
        rates in proptest::collection::vec(0.5f64..500.0, 1..5),
        intervals in 1usize..40,
        seed in 0u64..500,
    ) {
        let specs: Vec<SubStreamSpec> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| SubStreamSpec::new(StratumId::new(i as u32), r, ValueDist::Constant(1.0)))
            .collect();
        let mut mix = StreamMix::new(specs, Duration::from_millis(100));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; rates.len()];
        for _ in 0..intervals {
            for item in mix.next_interval(&mut rng).items {
                counts[item.stratum.index() as usize] += 1;
            }
        }
        for (i, &rate) in rates.iter().enumerate() {
            let expected = rate * 0.1 * intervals as f64;
            // The carry keeps the error under one item overall.
            prop_assert!(
                (counts[i] as f64 - expected).abs() <= 1.0,
                "stratum {i}: {} vs {expected}",
                counts[i]
            );
        }
    }

    /// Timestamps are non-decreasing within a batch and strictly advance
    /// across intervals.
    #[test]
    fn mix_timestamps_are_ordered(seed in 0u64..500) {
        let mut mix = StreamMix::new(
            vec![
                SubStreamSpec::new(StratumId::new(0), 200.0, ValueDist::Constant(1.0)),
                SubStreamSpec::new(StratumId::new(1), 100.0, ValueDist::Constant(1.0)),
            ],
            Duration::from_millis(50),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut last_max = 0u64;
        for _ in 0..5 {
            let batch = mix.next_interval(&mut rng);
            prop_assert!(batch.items.windows(2).all(|w| w[0].source_ts <= w[1].source_ts));
            if let (Some(first), Some(last)) = (batch.items.first(), batch.items.last()) {
                prop_assert!(first.source_ts >= last_max);
                last_max = last.source_ts;
            }
        }
    }

    /// Normal sampling respects mean ± a generous tolerance for any
    /// parameters.
    #[test]
    fn normal_mean_tracks_parameter(mu in -1e3f64..1e3, sigma in 0.0f64..100.0, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = Normal::new(mu, sigma);
        let mean: f64 = (0..4000).map(|_| d.sample(&mut rng)).sum::<f64>() / 4000.0;
        prop_assert!((mean - mu).abs() < 5.0 * (sigma / (4000f64).sqrt()) + 1e-9);
    }

    /// Poisson samples are non-negative integers with roughly the right
    /// mean across the Knuth/normal-approximation boundary.
    #[test]
    fn poisson_samples_are_counts(lambda in 0.5f64..500.0, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = Poisson::new(lambda);
        let samples: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        prop_assert!(samples.iter().all(|&x| x >= 0.0 && x.fract() == 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let tolerance = 5.0 * (lambda / 2000.0).sqrt() + 0.5;
        prop_assert!((mean - lambda).abs() < tolerance, "mean {mean} vs λ {lambda}");
    }

    /// Log-normal samples are strictly positive for any parameterisation.
    #[test]
    fn lognormal_is_positive(mean in 0.1f64..1e4, cv in 0.01f64..3.0, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = LogNormal::from_mean_std(mean, mean * cv);
        for _ in 0..200 {
            prop_assert!(d.sample(&mut rng) > 0.0);
        }
    }

    /// Exponential samples are non-negative with mean ~1/rate.
    #[test]
    fn exponential_mean(rate in 0.01f64..100.0, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = Exponential::new(rate);
        let samples: Vec<f64> = (0..4000).map(|_| d.sample(&mut rng)).collect();
        prop_assert!(samples.iter().all(|&x| x >= 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((mean * rate - 1.0).abs() < 0.2, "normalised mean {}", mean * rate);
    }

    /// The taxi trace always emits positive fares from its five boroughs
    /// with Manhattan dominant.
    #[test]
    fn taxi_trace_invariants(rate in 1_000.0f64..50_000.0, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = TaxiTrace::new(rate, Duration::from_millis(100));
        let batch = trace.next_interval(&mut rng);
        prop_assert!(batch.items.iter().all(|i| i.value > 0.0));
        prop_assert!(batch.items.iter().all(|i| i.stratum.index() < 5));
        let strata = batch.split_by_stratum();
        if let Some(manhattan) = strata
            .iter()
            .find(|sub| sub.items[0].stratum == StratumId::new(0))
        {
            for sub in &strata {
                let s = sub.items[0].stratum;
                if s.index() != 0 {
                    prop_assert!(manhattan.len() >= sub.len(),
                        "manhattan must dominate {s}");
                }
            }
        }
    }

    /// The pollution trace reports exactly sensors × 4 readings, all
    /// non-negative.
    #[test]
    fn pollution_trace_invariants(sensors in 1usize..200, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = PollutionTrace::new(sensors, Duration::from_millis(100));
        for _ in 0..3 {
            let batch = trace.next_interval(&mut rng);
            prop_assert_eq!(batch.len(), sensors * 4);
            prop_assert!(batch.items.iter().all(|i| i.value >= 0.0));
        }
    }
}
