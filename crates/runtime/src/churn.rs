//! Deterministic fleet churn: seeded node outage schedules, the per-node
//! state machine both engines honour, and the per-window inclusion
//! accounting behind the node-level Horvitz–Thompson rescale.
//!
//! The paper's tree is always-on; a real edge fleet is not. A
//! [`ChurnSchedule`] attaches per-node events to the virtual timeline
//! (the driver's pushed-interval index):
//!
//! * **down/up** — the node is dark for a half-open interval range
//!   `[from, until)`: it processes nothing, and frames delivered to it
//!   are lost at its doorstep (the sender still transmits, so wire bytes
//!   and fault streams are unaffected);
//! * **crash** — a mid-window failure at one interval: the node processes
//!   its input (its sampler RNG advances exactly as if it were healthy)
//!   but its buffered sampled output for that interval is lost before it
//!   can be forwarded;
//! * **replace** — a fresh node takes over the failed node's slot from
//!   that interval on, with a brand-new sampler seeded by
//!   [`crate::Topology::replacement_seed`] (routing is unchanged — the
//!   replacement inherits the slot, not the RNG);
//! * **degradation** — [`DegradedMode::LowPower`] shrinks the node's
//!   sampling fraction by a scale factor (battery-saving duty cycle)
//!   while [`DegradedMode::Silent`] is the precursor to going dark: the
//!   node stops processing entirely, indistinguishable from down.
//!
//! Every event resolves to one [`NodeDisposition`] per (node, interval):
//! down wins over crash wins over silent wins over low-power. An empty
//! schedule ([`ChurnSchedule::is_noop`]) is a **strict no-op** — both
//! engines skip every piece of churn machinery, so the run is
//! bit-identical to an unchurned one.
//!
//! On the analytics side the run-global per-hop
//! [`crate::Topology::delivery_factor`] generalizes to **per-window,
//! per-stratum** inclusion factors: at push time the driver tallies, for
//! every `(window, stratum)`, how many items were pushed and how much
//! delivery weight their leaf paths were actually worth (the per-sender
//! path delivery factor for items whose whole path was alive, zero for
//! items bound for a dark subtree). At answer time the root rescales each
//! stratum by the inverse of that factor, keeping SUM/COUNT unbiased (and
//! MEAN consistent) while nodes are down, and `WindowResult::completeness`
//! reflects outages, not just packet loss.

use crate::node::{SamplingNode, Strategy};
use crate::root::WindowResult;
use crate::topology::Topology;
use approxiot_core::{Batch, StratumId};
use approxiot_streams::{TumblingWindow, WindowId};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// SplitMix64 finalizer: the same mixer
/// [`approxiot_net::Impairment`](approxiot_net) seeds through, reused here
/// so replacement-node seeds decorrelate even for adjacent generations.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The sampler seed of the `generation`-th replacement in a slot whose
/// churn seed is `churn_seed` (generation 0 is the original node, which
/// keeps its [`crate::Topology::node_seed`]).
pub(crate) fn replacement_seed(churn_seed: u64, generation: u64) -> u64 {
    splitmix64(churn_seed.wrapping_add(generation))
}

/// How a degraded (but not yet dark) node behaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradedMode {
    /// The node keeps processing but shrinks its sampling fraction by
    /// this scale in `(0, 1]` — battery-saving duty cycling.
    LowPower(f64),
    /// The node stops processing entirely (the precursor to going dark);
    /// operationally identical to down.
    Silent,
}

/// What one node is doing during one interval, after every scheduled
/// event is resolved (down beats crash beats silent beats low-power).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeDisposition {
    /// Processing; `fraction_scale` multiplies the node's base sampling
    /// fraction (`1.0` = healthy, below it = low-power).
    Active {
        /// Product of every low-power scale covering the interval.
        fraction_scale: f64,
    },
    /// Processes the interval (the sampler RNG advances), then loses its
    /// buffered output before forwarding.
    Crashed {
        /// Low-power scaling still applies to the doomed processing.
        fraction_scale: f64,
    },
    /// Not processing at all; frames delivered to it are lost.
    Down,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Outage {
    layer: usize,
    index: usize,
    from: u64,
    until: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Crash {
    layer: usize,
    index: usize,
    interval: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Replacement {
    layer: usize,
    index: usize,
    interval: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Degradation {
    layer: usize,
    index: usize,
    from: u64,
    until: u64,
    mode: DegradedMode,
}

/// A deterministic per-node event schedule on the virtual timeline.
///
/// Build one with the chained event methods and attach it via
/// [`crate::TopologyBuilder::churn`]; see the [module docs](self) for the
/// event semantics. `layer`/`index` address edge nodes (layer 0 =
/// leaves); the root is never churned. Interval ranges are half-open
/// `[from, until)` on the driver's pushed-interval index.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChurnSchedule {
    outages: Vec<Outage>,
    crashes: Vec<Crash>,
    replacements: Vec<Replacement>,
    degradations: Vec<Degradation>,
}

impl ChurnSchedule {
    /// An empty schedule (a strict no-op).
    pub fn new() -> Self {
        ChurnSchedule::default()
    }

    /// Node `(layer, index)` is dark for intervals `[from, until)`.
    pub fn down(mut self, layer: usize, index: usize, from: u64, until: u64) -> Self {
        self.outages.push(Outage {
            layer,
            index,
            from,
            until,
        });
        self
    }

    /// Node `(layer, index)` crashes mid-window at `interval`: it
    /// processes the interval, then loses its buffered output.
    pub fn crash(mut self, layer: usize, index: usize, interval: u64) -> Self {
        self.crashes.push(Crash {
            layer,
            index,
            interval,
        });
        self
    }

    /// A replacement node takes over slot `(layer, index)` from
    /// `interval` on, with a fresh sampler seeded per generation.
    pub fn replace(mut self, layer: usize, index: usize, interval: u64) -> Self {
        self.replacements.push(Replacement {
            layer,
            index,
            interval,
        });
        self
    }

    /// Node `(layer, index)` runs low-power for `[from, until)`, scaling
    /// its sampling fraction by `scale` in `(0, 1]`.
    pub fn low_power(
        mut self,
        layer: usize,
        index: usize,
        from: u64,
        until: u64,
        scale: f64,
    ) -> Self {
        self.degradations.push(Degradation {
            layer,
            index,
            from,
            until,
            mode: DegradedMode::LowPower(scale),
        });
        self
    }

    /// Node `(layer, index)` goes silent for `[from, until)` (processes
    /// nothing; the precursor to down).
    pub fn silent(mut self, layer: usize, index: usize, from: u64, until: u64) -> Self {
        self.degradations.push(Degradation {
            layer,
            index,
            from,
            until,
            mode: DegradedMode::Silent,
        });
        self
    }

    /// A seeded random event stream: for each node of `layers` (node
    /// counts per edge layer), splitmix64-driven draws decide a short
    /// outage, a crash + replacement, or a low-power stretch somewhere in
    /// `0..intervals`. `intensity` in `[0, 1]` is the per-node event
    /// probability. Deterministic in `seed`; the same seed builds the
    /// same schedule on every engine.
    pub fn seeded(seed: u64, layers: &[usize], intervals: u64, intensity: f64) -> Self {
        let mut schedule = ChurnSchedule::new();
        if intervals == 0 {
            return schedule;
        }
        let mut state = splitmix64(seed ^ 0xD6E8_FEB8_6659_FD93);
        let mut draw = || {
            state = splitmix64(state);
            state
        };
        for (layer, &nodes) in layers.iter().enumerate() {
            for index in 0..nodes {
                let roll = draw() as f64 / u64::MAX as f64;
                if roll >= intensity {
                    continue;
                }
                let at = draw() % intervals;
                let span = 1 + draw() % 3;
                match draw() % 3 {
                    0 => schedule = schedule.down(layer, index, at, at.saturating_add(span)),
                    1 => {
                        schedule = schedule.crash(layer, index, at).replace(
                            layer,
                            index,
                            at.saturating_add(1),
                        );
                    }
                    _ => {
                        let scale = 0.25 + 0.5 * (draw() % 3) as f64 / 2.0;
                        schedule =
                            schedule.low_power(layer, index, at, at.saturating_add(span), scale);
                    }
                }
            }
        }
        schedule
    }

    /// `true` when the schedule carries no events at all — the strict
    /// no-op contract both engines gate every piece of churn machinery on.
    pub fn is_noop(&self) -> bool {
        self.outages.is_empty()
            && self.crashes.is_empty()
            && self.replacements.is_empty()
            && self.degradations.is_empty()
    }

    /// Resolves every event touching `(layer, index)` at `interval` into
    /// one disposition. Priority: down > crash > silent > low-power >
    /// healthy; overlapping low-power scales multiply.
    pub fn disposition(&self, layer: usize, index: usize, interval: u64) -> NodeDisposition {
        let matches_node = |l: usize, i: usize| l == layer && i == index;
        if self
            .outages
            .iter()
            .any(|o| matches_node(o.layer, o.index) && o.from <= interval && interval < o.until)
        {
            return NodeDisposition::Down;
        }
        let mut silent = false;
        let mut scale = 1.0;
        for d in &self.degradations {
            if matches_node(d.layer, d.index) && d.from <= interval && interval < d.until {
                match d.mode {
                    DegradedMode::Silent => silent = true,
                    DegradedMode::LowPower(s) => scale *= s,
                }
            }
        }
        let crashed = self
            .crashes
            .iter()
            .any(|c| matches_node(c.layer, c.index) && c.interval == interval);
        if crashed {
            return NodeDisposition::Crashed {
                fraction_scale: scale,
            };
        }
        if silent {
            return NodeDisposition::Down;
        }
        NodeDisposition::Active {
            fraction_scale: scale,
        }
    }

    /// How many replacements have taken over slot `(layer, index)` by
    /// `interval` (inclusive) — generation 0 is the original node.
    pub fn generation(&self, layer: usize, index: usize, interval: u64) -> u64 {
        self.replacements
            .iter()
            .filter(|r| r.layer == layer && r.index == index && r.interval <= interval)
            .count() as u64
    }

    /// Replacement events firing exactly at `interval`, fleet-wide.
    pub fn replacements_at(&self, interval: u64) -> u64 {
        self.replacements
            .iter()
            .filter(|r| r.interval == interval)
            .count() as u64
    }

    /// Panics unless every event addresses a node inside `layers` (node
    /// counts per edge layer), ranges are non-empty, and low-power scales
    /// sit in `(0, 1]` — called by [`crate::TopologyBuilder::build`].
    pub(crate) fn validate(&self, layers: &[usize]) {
        let check_node = |what: &str, layer: usize, index: usize| {
            assert!(
                layer < layers.len(),
                "churn {what} addresses layer {layer}, topology has {} edge layers",
                layers.len()
            );
            assert!(
                index < layers[layer],
                "churn {what} addresses node {index} of layer {layer}, which has {} nodes",
                layers[layer]
            );
        };
        for o in &self.outages {
            check_node("outage", o.layer, o.index);
            assert!(
                o.from < o.until,
                "churn outage range [{}, {}) is empty",
                o.from,
                o.until
            );
        }
        for c in &self.crashes {
            check_node("crash", c.layer, c.index);
        }
        for r in &self.replacements {
            check_node("replacement", r.layer, r.index);
        }
        for d in &self.degradations {
            check_node("degradation", d.layer, d.index);
            assert!(
                d.from < d.until,
                "churn degradation range [{}, {}) is empty",
                d.from,
                d.until
            );
            if let DegradedMode::LowPower(scale) = d.mode {
                assert!(
                    scale > 0.0 && scale <= 1.0,
                    "low-power fraction scale must be in (0, 1], got {scale}"
                );
            }
        }
    }
}

/// Deterministic churn accounting for one full run, identical on both
/// engines.
///
/// * `node_downtime` — node-intervals spent dark (down or silent);
/// * `windows_degraded` — pushed intervals where any node was not plainly
///   healthy (dark, crashed, or low-power);
/// * `crashes` — node-intervals that ended in a mid-window crash;
/// * `reboots` — dark→up transitions between consecutively pushed
///   intervals;
/// * `replacements` — replacement nodes that joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChurnStats {
    /// Node-intervals spent dark (down or silent).
    pub node_downtime: u64,
    /// Pushed intervals with at least one non-healthy node.
    pub windows_degraded: u64,
    /// Mid-window crashes that lost a node's buffered output.
    pub crashes: u64,
    /// Dark→up transitions observed across pushed intervals.
    pub reboots: u64,
    /// Replacement nodes that joined a layer.
    pub replacements: u64,
}

/// Per-`(window, stratum)` inclusion tally the driver fills at push time:
/// how many items were pushed and how much delivery weight their leaf
/// paths were worth that window.
#[derive(Debug, Clone, Copy, Default)]
pub struct InclusionTally {
    /// Summed per-sender path delivery factors of items whose whole
    /// source→root path was alive (zero contribution from dark subtrees).
    pub delivered_weight: f64,
    /// Items pushed, alive or not — the ground-truth denominator.
    pub items: u64,
}

impl InclusionTally {
    /// The effective inclusion factor: expected delivered weight per
    /// pushed item (`delivery_factor` when everything is alive, smaller
    /// under outages, `0.0` when the whole window was dark).
    pub fn factor(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.delivered_weight / self.items as f64
        }
    }
}

/// Per-stratum inclusion tallies of one window.
pub type StratumInclusion = BTreeMap<StratumId, InclusionTally>;

/// The shared per-window inclusion map: written by the driver at push
/// time, read by the root at answer time (and by completeness filling).
pub type InclusionHandle = Arc<Mutex<BTreeMap<WindowId, StratumInclusion>>>;

/// The driver-side churn bookkeeper both engines embed: owns the stats,
/// the inclusion map handle (shared with the root) and the previous-state
/// tracking for reboot detection. All accounting runs in push order over
/// the same loops on either engine, so fixed-seed runs accumulate the
/// exact same floats.
#[derive(Debug)]
pub(crate) struct ChurnDriver {
    topology: Topology,
    scheme: TumblingWindow,
    /// Per-source path delivery factors ([`Topology::path_delivery_factor`]).
    pdf: Vec<f64>,
    inclusion: InclusionHandle,
    stats: ChurnStats,
    /// Previous interval's dark flag per node, for reboot counting.
    prev_down: Vec<Vec<bool>>,
    /// Last interval stats were taken for (wall mode can revisit one).
    last_interval: Option<u64>,
}

impl ChurnDriver {
    pub(crate) fn new(topology: &Topology) -> Self {
        let pdf = (0..topology.sources())
            .map(|s| topology.path_delivery_factor(s))
            .collect();
        let prev_down = topology
            .layers()
            .iter()
            .map(|layer| vec![false; layer.nodes])
            .collect();
        ChurnDriver {
            scheme: TumblingWindow::new(topology.window()),
            pdf,
            inclusion: Arc::new(Mutex::new(BTreeMap::new())),
            stats: ChurnStats::default(),
            prev_down,
            last_interval: None,
            topology: topology.clone(),
        }
    }

    /// The inclusion map handle to share with the root.
    pub(crate) fn inclusion(&self) -> InclusionHandle {
        Arc::clone(&self.inclusion)
    }

    pub(crate) fn stats(&self) -> ChurnStats {
        self.stats
    }

    /// Accounts one pushed interval in event time (sim engine and replay
    /// mode): items keep their own timestamps, so tallies land in the
    /// window each item belongs to; aliveness is evaluated at `interval`.
    pub(crate) fn note_interval(&mut self, interval: u64, batches: &[Batch]) {
        self.note_stats(interval);
        let mut map = self
            .inclusion
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (source, batch) in batches.iter().enumerate() {
            let alive = self.topology.source_path_alive(source, interval);
            let pdf = self.pdf[source];
            for item in &batch.items {
                let tally = map
                    .entry(self.scheme.index_of(item.source_ts))
                    .or_default()
                    .entry(item.stratum)
                    .or_default();
                tally.items += 1;
                if alive {
                    tally.delivered_weight += pdf;
                }
            }
        }
    }

    /// Accounts one re-stamped source batch in wall-clock mode: every
    /// item lands in the wall window of `wall_ts`, which also serves as
    /// the schedule interval (the wall engine maps the virtual timeline
    /// onto wall windows).
    pub(crate) fn note_wall(&mut self, source: usize, wall_ts: u64, batch: &Batch) {
        let interval = self.scheme.index_of(wall_ts);
        self.note_stats(interval);
        let alive = self.topology.source_path_alive(source, interval);
        let pdf = self.pdf[source];
        let mut map = self
            .inclusion
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let window = map.entry(interval).or_default();
        for item in &batch.items {
            let tally = window.entry(item.stratum).or_default();
            tally.items += 1;
            if alive {
                tally.delivered_weight += pdf;
            }
        }
    }

    /// Takes the fleet-wide stats of `interval` once (wall mode can call
    /// with the same interval repeatedly; only the first call counts).
    fn note_stats(&mut self, interval: u64) {
        if self.last_interval == Some(interval) {
            return;
        }
        self.last_interval = Some(interval);
        let schedule = self.topology.churn();
        let mut degraded = false;
        for (l, layer) in self.topology.layers().iter().enumerate() {
            for j in 0..layer.nodes {
                let disposition = schedule.disposition(l, j, interval);
                let down = matches!(disposition, NodeDisposition::Down);
                match disposition {
                    NodeDisposition::Down => {
                        self.stats.node_downtime += 1;
                        degraded = true;
                    }
                    NodeDisposition::Crashed { .. } => {
                        self.stats.crashes += 1;
                        degraded = true;
                    }
                    NodeDisposition::Active { fraction_scale } => {
                        if fraction_scale != 1.0 {
                            degraded = true;
                        }
                    }
                }
                if self.prev_down[l][j] && !down {
                    self.stats.reboots += 1;
                }
                self.prev_down[l][j] = down;
            }
        }
        self.stats.replacements += schedule.replacements_at(interval);
        if degraded {
            self.stats.windows_degraded += 1;
        }
    }

    /// Fills each result's completeness from the inclusion tallies: the
    /// delivered (pre-rescale) estimated count over the true pushed
    /// count. `count_hat` carries the node-level Horvitz–Thompson rescale
    /// already, so multiplying the aggregate inclusion factor back out
    /// recovers what actually survived churn *and* packet loss.
    pub(crate) fn fill_completeness(&self, results: &mut [WindowResult]) {
        let map = self
            .inclusion
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for result in results {
            let Some(window) = map.get(&result.window) else {
                result.completeness = 1.0;
                continue;
            };
            let actual: u64 = window.values().map(|t| t.items).sum();
            if actual == 0 {
                result.completeness = 1.0;
                continue;
            }
            let delivered: f64 = window.values().map(|t| t.delivered_weight).sum();
            let factor = delivered / actual as f64;
            result.completeness = ((result.count_hat * factor) / actual as f64).clamp(0.0, 1.0);
        }
    }
}

/// Everything an edge node needs to apply its scheduled churn state
/// lazily, just before processing a frame: who it is, how to rebuild
/// itself on replacement, and how to rescale its fraction.
#[derive(Debug, Clone)]
pub(crate) struct NodeChurnContext {
    pub(crate) layer: usize,
    pub(crate) index: usize,
    pub(crate) strategy: Strategy,
    pub(crate) base_fraction: f64,
    pub(crate) workers: usize,
    pub(crate) churn_seed: u64,
}

impl NodeChurnContext {
    pub(crate) fn new(topology: &Topology, fractions: &[f64], layer: usize, index: usize) -> Self {
        NodeChurnContext {
            layer,
            index,
            strategy: topology.layer_strategy(layer),
            base_fraction: fractions[layer],
            workers: topology.layers()[layer].workers,
            churn_seed: topology.churn_seed(layer, index),
        }
    }
}

/// One node's lazily-tracked churn state (current replacement generation
/// and fraction scale). State is applied only when the node is about to
/// process data, and only as a diff — [`SamplingNode::set_fraction`]
/// leaves the sampler RNG untouched, so the sim engine's per-interval
/// application and replay mode's per-record application produce identical
/// samplers whenever data flows.
#[derive(Debug, Clone)]
pub(crate) struct NodeChurnState {
    generation: u64,
    scale: f64,
}

impl NodeChurnState {
    pub(crate) fn new() -> Self {
        NodeChurnState {
            generation: 0,
            scale: 1.0,
        }
    }

    /// Brings `node` up to date with the schedule at `interval`:
    /// rebuilds it with a fresh replacement seed when its generation
    /// advanced, then applies the interval's fraction scale.
    pub(crate) fn sync(
        &mut self,
        node: &mut SamplingNode,
        ctx: &NodeChurnContext,
        schedule: &ChurnSchedule,
        interval: u64,
    ) {
        let generation = schedule.generation(ctx.layer, ctx.index, interval);
        if generation != self.generation {
            self.generation = generation;
            self.scale = 1.0;
            *node = SamplingNode::with_workers(
                ctx.strategy,
                ctx.base_fraction,
                replacement_seed(ctx.churn_seed, generation),
                ctx.workers,
            )
            // analysis: allow(P1, reason = "rebuilding with the same base fraction the builder already validated")
            .expect("base fraction validated at build time");
        }
        let scale = match schedule.disposition(ctx.layer, ctx.index, interval) {
            NodeDisposition::Down => return,
            NodeDisposition::Active { fraction_scale }
            | NodeDisposition::Crashed { fraction_scale } => fraction_scale,
        };
        if scale != self.scale {
            self.scale = scale;
            node.set_fraction((ctx.base_fraction * scale).min(1.0))
                // analysis: allow(P1, reason = "schedule builder clamps fraction_scale to (0, 1]")
                .expect("scale validated in (0, 1] at build time");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_noop_and_healthy_everywhere() {
        let s = ChurnSchedule::new();
        assert!(s.is_noop());
        for interval in 0..4 {
            assert_eq!(
                s.disposition(0, 0, interval),
                NodeDisposition::Active {
                    fraction_scale: 1.0
                }
            );
        }
        assert_eq!(s.generation(0, 0, 100), 0);
    }

    #[test]
    fn disposition_priority_down_beats_crash_beats_silent_beats_low_power() {
        let s = ChurnSchedule::new()
            .down(0, 0, 2, 4)
            .crash(0, 0, 2)
            .crash(0, 0, 5)
            .silent(0, 0, 5, 7)
            .low_power(0, 0, 0, 10, 0.5);
        // Down wins over a same-interval crash.
        assert_eq!(s.disposition(0, 0, 2), NodeDisposition::Down);
        assert_eq!(s.disposition(0, 0, 3), NodeDisposition::Down);
        // Crash wins over silent, and carries the low-power scale.
        assert_eq!(
            s.disposition(0, 0, 5),
            NodeDisposition::Crashed {
                fraction_scale: 0.5
            }
        );
        // Silent resolves to down.
        assert_eq!(s.disposition(0, 0, 6), NodeDisposition::Down);
        // Low-power alone.
        assert_eq!(
            s.disposition(0, 0, 8),
            NodeDisposition::Active {
                fraction_scale: 0.5
            }
        );
        // Other nodes are untouched.
        assert_eq!(
            s.disposition(0, 1, 2),
            NodeDisposition::Active {
                fraction_scale: 1.0
            }
        );
    }

    #[test]
    fn overlapping_low_power_scales_multiply() {
        let s = ChurnSchedule::new()
            .low_power(1, 0, 0, 10, 0.5)
            .low_power(1, 0, 5, 10, 0.5);
        assert_eq!(
            s.disposition(1, 0, 7),
            NodeDisposition::Active {
                fraction_scale: 0.25
            }
        );
    }

    #[test]
    fn generations_count_replacements_up_to_the_interval() {
        let s = ChurnSchedule::new().replace(0, 1, 3).replace(0, 1, 7);
        assert_eq!(s.generation(0, 1, 2), 0);
        assert_eq!(s.generation(0, 1, 3), 1);
        assert_eq!(s.generation(0, 1, 6), 1);
        assert_eq!(s.generation(0, 1, 7), 2);
        assert_eq!(s.generation(0, 0, 7), 0, "other slots unaffected");
        assert_eq!(s.replacements_at(3), 1);
        assert_eq!(s.replacements_at(4), 0);
    }

    #[test]
    fn replacement_seeds_differ_per_generation_and_slot() {
        let a1 = replacement_seed(1, 1);
        let a2 = replacement_seed(1, 2);
        let b1 = replacement_seed(2, 1);
        assert_ne!(a1, a2);
        assert_ne!(a1, b1);
    }

    #[test]
    fn seeded_schedule_is_deterministic_and_bounded() {
        let layers = [4, 2];
        let a = ChurnSchedule::seeded(0xFEED, &layers, 8, 0.8);
        let b = ChurnSchedule::seeded(0xFEED, &layers, 8, 0.8);
        assert_eq!(a, b, "same seed, same schedule");
        let c = ChurnSchedule::seeded(0xBEEF, &layers, 8, 0.8);
        assert_ne!(a, c, "different seed, different schedule");
        a.validate(&layers); // every event addresses a real node
        assert!(!a.is_noop(), "intensity 0.8 over 6 nodes fires something");
        assert!(
            ChurnSchedule::seeded(0xFEED, &layers, 8, 0.0).is_noop(),
            "zero intensity schedules nothing"
        );
    }

    #[test]
    #[should_panic(expected = "addresses node 9")]
    fn validate_rejects_out_of_range_nodes() {
        ChurnSchedule::new().down(0, 9, 0, 1).validate(&[4, 2]);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn validate_rejects_empty_ranges() {
        ChurnSchedule::new().down(0, 0, 3, 3).validate(&[4, 2]);
    }

    #[test]
    #[should_panic(expected = "low-power fraction scale")]
    fn validate_rejects_bad_low_power_scale() {
        ChurnSchedule::new()
            .low_power(0, 0, 0, 1, 0.0)
            .validate(&[4, 2]);
    }

    #[test]
    fn inclusion_factor_is_delivered_weight_per_item() {
        let tally = InclusionTally {
            delivered_weight: 3.0,
            items: 4,
        };
        assert!((tally.factor() - 0.75).abs() < 1e-12);
        assert_eq!(InclusionTally::default().factor(), 0.0);
    }
}
