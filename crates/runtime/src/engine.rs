//! The one front door: a [`Driver`] runs any [`Topology`] +
//! [`QuerySet`] on either execution [`Engine`].
//!
//! Two engines cover the paper's evaluation from the same description:
//!
//! * [`SimEngine`] ([`EngineKind::Sim`]) — the tree in deterministic
//!   virtual time, used by the accuracy experiments; thousands of windows
//!   run in milliseconds with seeded randomness.
//! * [`crate::pipeline::PipelineEngine`] ([`EngineKind::Pipeline`]) — the
//!   fully threaded pipeline over broker topics with WAN delay/capacity
//!   emulation, used by the wall-clock experiments. Its deterministic
//!   mode replays the exact virtual-time sampling decisions over the real
//!   wire path, so fixed-seed runs produce **identical estimates** on
//!   both engines.
//!
//! ```
//! use approxiot_core::{Batch, StratumId, StreamItem};
//! use approxiot_runtime::{Driver, EngineKind, LayerSpec, QuerySet, QuerySpec, Topology};
//!
//! let topology = Topology::builder()
//!     .sources(4)
//!     .layer(LayerSpec::new(2))
//!     .layer(LayerSpec::new(1))
//!     .overall_fraction(0.5)
//!     .seed(7)
//!     .build()?;
//! let queries = QuerySet::new()
//!     .with(QuerySpec::Sum)
//!     .with(QuerySpec::Quantile(0.5));
//! let mut driver = Driver::new(topology, queries, EngineKind::Sim)?;
//! let interval: Vec<Batch> = (0..4)
//!     .map(|s| {
//!         Batch::from_items(
//!             (0..250).map(|k| StreamItem::with_meta(StratumId::new(s), 1.0, k, 0)).collect(),
//!         )
//!     })
//!     .collect();
//! driver.push_interval(&interval).expect("source count matches");
//! let report = driver.finish();
//! assert!((report.results[0].count_hat - 1000.0).abs() < 1e-6);
//! # Ok::<(), approxiot_runtime::EngineError>(())
//! ```

use crate::churn::{ChurnDriver, ChurnStats, NodeChurnContext, NodeChurnState, NodeDisposition};
use crate::fault::{FaultInjector, HopFaults};
use crate::node::{NodePayload, SamplingNode, Strategy};
use crate::pipeline::{LatencyStats, PipelineEngine, PipelineOptions};
use crate::query::{QuerySet, QuerySpec};
use crate::root::{RootConfig, RootNode, WindowResult};
use crate::topology::{HopBytes, Topology};
use approxiot_core::{Batch, BudgetError};
use approxiot_mq::codec::{encoded_len, encoded_len_summaries};
use approxiot_streams::{TumblingWindow, WindowId};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Errors surfaced by the driver/engine layer.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The sampling fraction was outside `(0, 1]`.
    Budget(BudgetError),
    /// An interval carried the wrong number of per-source batches.
    SourceCount {
        /// Sources the topology declares.
        expected: usize,
        /// Batches the interval carried.
        got: usize,
    },
    /// The engine's transport shut down before the push (threaded engine
    /// only).
    Closed,
    /// A registered query the named strategy cannot answer (e.g.
    /// `Quantile` on a counts-only sketch config). Checked at the driver
    /// front door against every layer strategy and the root strategy.
    UnsupportedQuery {
        /// [`Strategy::label`] of the offending strategy.
        strategy: &'static str,
        /// The query the strategy cannot answer.
        query: QuerySpec,
    },
    /// A sketch strategy was combined with a topology feature it cannot
    /// run under: heterogeneous layers, mismatched sketch configs, fault
    /// impairment, fleet churn, or the wall-clock pipeline.
    SketchTopology {
        /// What was wrong with the combination.
        reason: &'static str,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Budget(e) => write!(f, "{e}"),
            EngineError::SourceCount { expected, got } => {
                write!(
                    f,
                    "interval has {got} source batches, topology declares {expected}"
                )
            }
            EngineError::Closed => write!(f, "engine transport already closed"),
            EngineError::UnsupportedQuery { strategy, query } => {
                write!(f, "the {strategy} strategy cannot answer {query}")
            }
            EngineError::SketchTopology { reason } => {
                write!(f, "invalid sketch topology: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<BudgetError> for EngineError {
    fn from(e: BudgetError) -> Self {
        EngineError::Budget(e)
    }
}

/// Which execution backend a [`Driver`] runs on.
#[derive(Debug, Clone, Default)]
pub enum EngineKind {
    /// Deterministic virtual time ([`SimEngine`]): the accuracy engine.
    #[default]
    Sim,
    /// The threaded pipeline over broker topics with WAN emulation
    /// ([`crate::pipeline::PipelineEngine`]): the wall-clock engine.
    Pipeline(PipelineOptions),
}

impl EngineKind {
    /// The threaded pipeline in wall-clock mode with default options.
    pub fn pipeline() -> Self {
        EngineKind::Pipeline(PipelineOptions::default())
    }

    /// The threaded pipeline in deterministic mode: event time is
    /// preserved and every node processes its input in the canonical
    /// `(interval, child, arrival)` order, so fixed-seed estimates match
    /// [`EngineKind::Sim`] bit for bit.
    pub fn pipeline_deterministic() -> Self {
        EngineKind::Pipeline(PipelineOptions::deterministic())
    }
}

/// The outcome of a full run on either engine.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Every window's result, in window order.
    pub results: Vec<WindowResult>,
    /// Wire bytes per hop (sources-side hop first).
    pub bytes: HopBytes,
    /// Frames/items dropped and duplicated per hop by fault injection
    /// (all-zero on an unimpaired topology).
    pub faults: HopFaults,
    /// Fleet-churn accounting: node downtime, degraded windows, crash /
    /// reboot / replacement counts (all-zero on an unchurned topology).
    pub churn: ChurnStats,
    /// Items pushed by the sources.
    pub source_items: u64,
    /// Wall time from engine start to completion.
    pub elapsed: Duration,
    /// Source items per wall second (only meaningful on the threaded
    /// engine).
    pub throughput_items_per_sec: f64,
    /// End-to-end per-item latency (wall-clock pipeline mode only; empty
    /// on the sim engine and in deterministic mode).
    pub latency: LatencyStats,
}

/// An execution backend: feeds intervals through a topology and answers
/// the query set per closed window.
///
/// Implementations accumulate every emitted window internally, so
/// [`Engine::finish`] always reports the complete run regardless of how
/// often [`Engine::poll`] was called.
pub trait Engine {
    /// Feeds one interval of per-source batches.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Closed`] if the engine's transport already
    /// shut down.
    fn push_interval(&mut self, interval: &[Batch]) -> Result<(), EngineError>;

    /// Drains the window results that have become available since the
    /// last poll.
    fn poll(&mut self) -> Vec<WindowResult>;

    /// Ends the stream: drains everything and reports the full run.
    fn finish(self: Box<Self>) -> RunReport;
}

/// The deterministic virtual-time engine: the generalized N-layer logical
/// tree evaluated synchronously (the engine behind every accuracy
/// experiment — Figures 5, 10 and 11a).
#[derive(Debug)]
pub struct SimEngine {
    topology: Topology,
    /// `nodes[layer][index]`, source side first.
    nodes: Vec<Vec<SamplingNode>>,
    root: RootNode,
    bytes: HopBytes,
    /// `injectors[hop][sender]`: one deterministic fault stream per sender
    /// per hop — `None` everywhere on an unimpaired topology
    /// (`sender` = source index on hop 0, sending node index after that).
    injectors: Vec<Vec<Option<FaultInjector>>>,
    /// True source items pushed per root window — the denominator of each
    /// result's completeness fraction.
    window_items: BTreeMap<WindowId, u64>,
    scheme: TumblingWindow,
    results: Vec<WindowResult>,
    source_items: u64,
    /// High-water event time seen so far — [`Engine::poll`]'s watermark.
    max_event_ts: u64,
    /// Intervals pushed so far — the churn schedule's timeline index.
    intervals_pushed: u64,
    /// Churn bookkeeping (`None` on an unchurned topology: strict no-op).
    churn: Option<ChurnDriver>,
    /// `churn_ctx[layer][index]` / `churn_states[layer][index]`: the
    /// per-node rebuild context and lazily-applied churn state (empty
    /// unless the topology carries churn).
    churn_ctx: Vec<Vec<NodeChurnContext>>,
    churn_states: Vec<Vec<NodeChurnState>>,
    started: Instant,
}

impl SimEngine {
    /// Builds the engine for a topology and query set.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError`] for a fraction outside `(0, 1]`.
    pub fn new(topology: Topology, queries: QuerySet) -> Result<Self, BudgetError> {
        let fractions = topology.stage_fractions();
        let nodes = topology
            .layers()
            .iter()
            .enumerate()
            .map(|(l, layer)| {
                (0..layer.nodes)
                    .map(|j| {
                        let strategy = topology.layer_strategy(l);
                        // Sketch nodes share the tree-wide sketch seed —
                        // summaries only merge when item priorities agree.
                        let seed = match strategy {
                            Strategy::Sketch(_) => topology.sketch_seed(),
                            _ => topology.node_seed(l, j),
                        };
                        SamplingNode::with_workers(strategy, fractions[l], seed, layer.workers)
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        let root_seed = match topology.root_strategy() {
            Strategy::Sketch(_) => topology.sketch_seed(),
            _ => topology.root_seed(),
        };
        let mut root = RootNode::new(RootConfig {
            strategy: topology.root_strategy(),
            // analysis: allow(P1, reason = "TopologyBuilder rejects depth-0 trees, so fractions is non-empty")
            fraction: *fractions.last().expect("depth >= 1"),
            overall_fraction: topology.overall_fraction(),
            window: topology.window(),
            queries,
            seed: root_seed,
            delivery_factor: topology.delivery_factor(),
            allowed_lateness: topology.allowed_lateness(),
        })?;
        let (churn, churn_ctx, churn_states) = if topology.has_churn() {
            let driver = ChurnDriver::new(&topology);
            root.set_inclusion(driver.inclusion());
            let ctx = topology
                .layers()
                .iter()
                .enumerate()
                .map(|(l, layer)| {
                    (0..layer.nodes)
                        .map(|j| NodeChurnContext::new(&topology, &fractions, l, j))
                        .collect()
                })
                .collect();
            let states = topology
                .layers()
                .iter()
                .map(|layer| vec![NodeChurnState::new(); layer.nodes])
                .collect();
            (Some(driver), ctx, states)
        } else {
            (None, Vec::new(), Vec::new())
        };
        let injectors = hop_injectors(&topology);
        let hops = topology.hops();
        let scheme = TumblingWindow::new(topology.window());
        Ok(SimEngine {
            topology,
            nodes,
            root,
            bytes: HopBytes::new(hops),
            injectors,
            window_items: BTreeMap::new(),
            scheme,
            results: Vec::new(),
            source_items: 0,
            max_event_ts: 0,
            intervals_pushed: 0,
            churn,
            churn_ctx,
            churn_states,
            // D1-allowlisted: wall-clock elapsed time is reported, never
            // fed back into the virtual-time run.
            #[allow(clippy::disallowed_methods)]
            started: Instant::now(),
        })
    }

    /// The topology this engine runs.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Pushes one interval of source batches through every layer.
    ///
    /// Source `i` feeds node `i % n` of the first layer; node `j` of each
    /// layer feeds node `j % m` of the next (the root last). Every node
    /// processes its inputs in canonical `(child, arrival)` order — the
    /// same order the deterministic threaded engine reconstructs — and
    /// wire bytes are accounted per hop with real codec frame sizes.
    ///
    /// On an impaired topology every frame additionally passes its
    /// sender's [`FaultInjector`] before crossing the hop: dropped frames
    /// never reach (or bill) the link, duplicated frames arrive — and
    /// bill — twice, and reordered frames swap within their burst (the
    /// outputs a node emits for one input frame).
    pub fn push_interval(&mut self, source_batches: &[Batch]) {
        let interval = self.intervals_pushed;
        self.intervals_pushed += 1;
        let churned = self.churn.is_some();
        let impaired = self.topology.has_impairment();
        for batch in source_batches {
            self.source_items += batch.len() as u64;
            if impaired && !churned {
                // Per-window true counts: the completeness denominator.
                for item in &batch.items {
                    self.max_event_ts = self.max_event_ts.max(item.source_ts);
                    *self
                        .window_items
                        .entry(self.scheme.index_of(item.source_ts))
                        .or_insert(0) += 1;
                }
            } else if let Some(ts) = batch.items.iter().map(|i| i.source_ts).max() {
                // Unimpaired: completeness is 1.0 by definition, so keep
                // the historical single max() pass. (Churned runs track
                // per-window counts in the inclusion map instead.)
                self.max_event_ts = self.max_event_ts.max(ts);
            }
        }
        if self.topology.sketch_config().is_some() {
            // Sketch topologies are homogeneous and unimpaired (the
            // driver validates); churn/impairment state is never built.
            self.push_interval_sketch(source_batches);
        } else if let Some(churn) = self.churn.as_mut() {
            // Inclusion tallies + fleet stats, before the data flows.
            churn.note_interval(interval, source_batches);
            self.push_interval_churned(source_batches, interval);
        } else if impaired {
            self.push_interval_impaired(source_batches);
        } else {
            self.push_interval_clean(source_batches);
        }
    }

    /// The sketch-strategy path: hop 0 ships item frames exactly like the
    /// clean path, the first layer folds them into per-window summaries,
    /// and every hop after that carries **one summary payload per node
    /// per interval** — billed with the real v3 frame size
    /// ([`encoded_len_summaries`]) and merged downstream with no per-item
    /// work. The root answers queries straight from the merged summaries.
    fn push_interval_sketch(&mut self, source_batches: &[Batch]) {
        let scheme = self.scheme;
        // Hop 0: source item frames into the first layer, i % n0 fan-in.
        let n0 = self.topology.layers()[0].nodes;
        for (i, batch) in source_batches.iter().enumerate() {
            self.bytes.add(0, encoded_len(batch) as u64);
            self.nodes[0][i % n0].absorb_batch(batch, scheme);
        }
        // Deeper hops: drain each sender once, bill the v3 frame, merge
        // into node j % n of the next layer (the root last).
        let n_layers = self.nodes.len();
        let root_hop = self.topology.hops() - 1;
        for l in 0..n_layers {
            let n_next = self
                .topology
                .layers()
                .get(l + 1)
                .map_or(0, |layer| layer.nodes);
            for j in 0..self.nodes[l].len() {
                let windows = self.nodes[l][j].take_summaries();
                if windows.is_empty() {
                    continue;
                }
                if l + 1 < n_layers {
                    self.bytes
                        .add(l + 1, encoded_len_summaries(&windows) as u64);
                    let payload = NodePayload::Summaries(windows);
                    self.nodes[l + 1][j % n_next].absorb_payload(&payload, scheme);
                } else {
                    self.bytes
                        .add(root_hop, encoded_len_summaries(&windows) as u64);
                    self.root.ingest_summaries(windows);
                }
            }
        }
    }

    /// The unimpaired fast path: identical to the historical engine (no
    /// frame clones, no injector bookkeeping).
    fn push_interval_clean(&mut self, source_batches: &[Batch]) {
        for batch in source_batches {
            self.bytes.add(0, encoded_len(batch) as u64);
        }
        // First layer: inputs are the source batches themselves.
        let n0 = self.topology.layers()[0].nodes;
        let mut carried: Vec<Vec<Batch>> = vec![Vec::new(); n0];
        for (j, outs) in carried.iter_mut().enumerate() {
            for (i, batch) in source_batches.iter().enumerate() {
                if i % n0 == j {
                    outs.extend(
                        self.nodes[0][j]
                            .process_batch_parallel(batch)
                            .into_iter()
                            .filter(|out| !out.is_empty()),
                    );
                }
            }
        }
        // Deeper layers: child j of the previous layer feeds node
        // j % n, inputs gathered in child order.
        for l in 1..self.nodes.len() {
            let n = self.topology.layers()[l].nodes;
            let mut inputs: Vec<Vec<Batch>> = vec![Vec::new(); n];
            for (child, outs) in carried.into_iter().enumerate() {
                for out in outs {
                    self.bytes.add(l, encoded_len(&out) as u64);
                    inputs[child % n].push(out);
                }
            }
            carried = vec![Vec::new(); n];
            for (j, input) in inputs.into_iter().enumerate() {
                for batch in &input {
                    carried[j].extend(
                        self.nodes[l][j]
                            .process_batch_parallel(batch)
                            .into_iter()
                            .filter(|out| !out.is_empty()),
                    );
                }
            }
        }
        // Root: last-layer nodes in index order.
        let root_hop = self.topology.hops() - 1;
        for outs in carried {
            for out in outs {
                self.bytes.add(root_hop, encoded_len(&out) as u64);
                self.root.ingest(&out);
            }
        }
    }

    /// The fault-injected path. Per-node frame order is exactly the clean
    /// path's canonical `(interval, sender, arrival)` order, minus dropped
    /// frames, plus duplicated copies, with bursts possibly reordered —
    /// the same sequence every sender's injector produces on the threaded
    /// engine, which is what keeps impaired runs engine-identical.
    fn push_interval_impaired(&mut self, source_batches: &[Batch]) {
        let Self {
            topology,
            nodes,
            root,
            bytes,
            injectors,
            ..
        } = self;
        let n_layers = nodes.len();
        // Hop 0: each source frame crosses its injector into node i % n0.
        let n0 = topology.layers()[0].nodes;
        let mut inputs: Vec<Vec<Batch>> = vec![Vec::new(); n0];
        for (i, batch) in source_batches.iter().enumerate() {
            let sink = &mut inputs[i % n0];
            match injectors[0][i].as_mut() {
                Some(injector) => {
                    injector.transmit(std::slice::from_ref(batch), &mut |frame, _| {
                        bytes.add(0, encoded_len(frame) as u64);
                        sink.push(frame.clone());
                        true
                    });
                }
                None => {
                    bytes.add(0, encoded_len(batch) as u64);
                    sink.push(batch.clone());
                }
            }
        }
        // Each layer processes its delivered frames in (sender, arrival)
        // order; the outputs of one input frame form one burst on the next
        // hop, delivered to node j % n_next (or the root).
        for (l, layer_nodes) in nodes.iter_mut().enumerate() {
            let hop = l + 1;
            let n_next = topology.layers().get(l + 1).map_or(0, |layer| layer.nodes);
            let mut next: Vec<Vec<Batch>> = vec![Vec::new(); n_next];
            for (j, frames) in inputs.into_iter().enumerate() {
                for frame in &frames {
                    let mut outs = layer_nodes[j].process_batch_parallel(frame);
                    outs.retain(|out| !out.is_empty());
                    match injectors[hop][j].as_mut() {
                        Some(injector) => {
                            if l + 1 < n_layers {
                                let sink = &mut next[j % n_next];
                                injector.transmit(&outs, &mut |out, _| {
                                    bytes.add(hop, encoded_len(out) as u64);
                                    sink.push(out.clone());
                                    true
                                });
                            } else {
                                injector.transmit(&outs, &mut |out, _| {
                                    bytes.add(hop, encoded_len(out) as u64);
                                    root.ingest(out);
                                    true
                                });
                            }
                        }
                        None => {
                            for out in outs {
                                bytes.add(hop, encoded_len(&out) as u64);
                                if l + 1 < n_layers {
                                    next[j % n_next].push(out);
                                } else {
                                    root.ingest(&out);
                                }
                            }
                        }
                    }
                }
            }
            inputs = next;
        }
    }

    /// The churned path: the impaired path's wire semantics plus the
    /// per-node churn state machine. A dark node's delivered frames are
    /// lost at its doorstep (the sender already transmitted — and billed —
    /// them); a crashed node processes its input (its sampler RNG advances
    /// exactly as if healthy) then loses its buffered output before
    /// forwarding; replacements and fraction scales are applied lazily via
    /// [`NodeChurnState::sync`] only when a node is about to process data,
    /// the same moments replay mode applies them — which is what keeps
    /// fixed-seed churn runs engine-identical.
    fn push_interval_churned(&mut self, source_batches: &[Batch], interval: u64) {
        let Self {
            topology,
            nodes,
            root,
            bytes,
            injectors,
            churn_ctx,
            churn_states,
            ..
        } = self;
        let schedule = topology.churn();
        let n_layers = nodes.len();
        // Hop 0: sources are never churned; identical to the impaired path.
        let n0 = topology.layers()[0].nodes;
        let mut inputs: Vec<Vec<Batch>> = vec![Vec::new(); n0];
        for (i, batch) in source_batches.iter().enumerate() {
            let sink = &mut inputs[i % n0];
            match injectors[0][i].as_mut() {
                Some(injector) => {
                    injector.transmit(std::slice::from_ref(batch), &mut |frame, _| {
                        bytes.add(0, encoded_len(frame) as u64);
                        sink.push(frame.clone());
                        true
                    });
                }
                None => {
                    bytes.add(0, encoded_len(batch) as u64);
                    sink.push(batch.clone());
                }
            }
        }
        for (l, layer_nodes) in nodes.iter_mut().enumerate() {
            let hop = l + 1;
            let n_next = topology.layers().get(l + 1).map_or(0, |layer| layer.nodes);
            let mut next: Vec<Vec<Batch>> = vec![Vec::new(); n_next];
            for (j, frames) in inputs.into_iter().enumerate() {
                if frames.is_empty() {
                    // No deliveries — replay mode has no record to process
                    // here either, so the node's churn state stays lazy.
                    continue;
                }
                let disposition = schedule.disposition(l, j, interval);
                if disposition == NodeDisposition::Down {
                    continue; // dark: deliveries lost at the doorstep
                }
                churn_states[l][j].sync(&mut layer_nodes[j], &churn_ctx[l][j], schedule, interval);
                let crashed = matches!(disposition, NodeDisposition::Crashed { .. });
                for frame in &frames {
                    let mut outs = layer_nodes[j].process_batch_parallel(frame);
                    outs.retain(|out| !out.is_empty());
                    if crashed {
                        continue; // buffered output lost before forwarding
                    }
                    match injectors[hop][j].as_mut() {
                        Some(injector) => {
                            if l + 1 < n_layers {
                                let sink = &mut next[j % n_next];
                                injector.transmit(&outs, &mut |out, _| {
                                    bytes.add(hop, encoded_len(out) as u64);
                                    sink.push(out.clone());
                                    true
                                });
                            } else {
                                injector.transmit(&outs, &mut |out, _| {
                                    bytes.add(hop, encoded_len(out) as u64);
                                    root.ingest(out);
                                    true
                                });
                            }
                        }
                        None => {
                            for out in outs {
                                bytes.add(hop, encoded_len(&out) as u64);
                                if l + 1 < n_layers {
                                    next[j % n_next].push(out);
                                } else {
                                    root.ingest(&out);
                                }
                            }
                        }
                    }
                }
            }
            inputs = next;
        }
    }

    /// Advances the event-time watermark, returning (and recording) the
    /// closed windows' results.
    pub fn advance_watermark(&mut self, watermark_nanos: u64) -> Vec<WindowResult> {
        let mut new = self.root.advance_watermark(watermark_nanos);
        self.annotate(&mut new);
        self.results.extend(new.iter().cloned());
        new
    }

    /// Flushes every open window (end of stream).
    pub fn flush(&mut self) -> Vec<WindowResult> {
        let mut new = self.root.flush();
        self.annotate(&mut new);
        self.results.extend(new.iter().cloned());
        new
    }

    /// Fills in each result's completeness against the true per-window
    /// source counts (only impaired or churned topologies can be
    /// incomplete; churn's per-window inclusion tallies subsume the
    /// run-global impairment factor).
    fn annotate(&self, results: &mut [WindowResult]) {
        if let Some(churn) = &self.churn {
            churn.fill_completeness(results);
        } else if self.topology.has_impairment() {
            fill_completeness(results, &self.window_items, self.topology.delivery_factor());
        }
    }

    /// Wire bytes so far, per hop.
    pub fn bytes(&self) -> &HopBytes {
        &self.bytes
    }

    /// Fault-injection accounting so far, per hop.
    pub fn faults(&self) -> HopFaults {
        collect_faults(&self.injectors)
    }

    /// Total items pushed by sources so far.
    pub fn source_items(&self) -> u64 {
        self.source_items
    }

    /// Items that reached the root (after every edge sampling stage).
    pub fn root_items_in(&self) -> u64 {
        self.root.items_in()
    }
}

impl Engine for SimEngine {
    fn push_interval(&mut self, interval: &[Batch]) -> Result<(), EngineError> {
        SimEngine::push_interval(self, interval);
        Ok(())
    }

    fn poll(&mut self) -> Vec<WindowResult> {
        // A window closes once an event at/past its end has been seen.
        self.advance_watermark(self.max_event_ts)
    }

    fn finish(mut self: Box<Self>) -> RunReport {
        self.flush();
        let mut results = std::mem::take(&mut self.results);
        results.sort_by_key(|r| r.window);
        let elapsed = self.started.elapsed();
        RunReport {
            results,
            bytes: self.bytes,
            faults: collect_faults(&self.injectors),
            churn: self
                .churn
                .as_ref()
                .map(ChurnDriver::stats)
                .unwrap_or_default(),
            source_items: self.source_items,
            elapsed,
            throughput_items_per_sec: self.source_items as f64 / elapsed.as_secs_f64().max(1e-9),
            latency: LatencyStats::default(),
        }
    }
}

/// Builds the per-hop, per-sender injector table for a topology: `None`
/// everywhere a hop's spec is a no-op, so unimpaired paths stay untouched.
pub(crate) fn hop_injectors(topology: &Topology) -> Vec<Vec<Option<FaultInjector>>> {
    (0..topology.hops())
        .map(|hop| {
            let senders = if hop == 0 {
                topology.sources()
            } else {
                topology.layers()[hop - 1].nodes
            };
            let spec = topology.hop_impairment(hop);
            (0..senders)
                .map(|sender| FaultInjector::new(spec, topology.hop_impairment_seed(hop, sender)))
                .collect()
        })
        .collect()
}

/// Aggregates an injector table's counters into per-hop fault accounting.
pub(crate) fn collect_faults(injectors: &[Vec<Option<FaultInjector>>]) -> HopFaults {
    let mut faults = HopFaults::new(injectors.len());
    for (hop, senders) in injectors.iter().enumerate() {
        for injector in senders.iter().flatten() {
            faults.record(hop, injector.stats());
        }
    }
    faults
}

/// Fills each result's completeness fraction: the delivered (pre-rescale)
/// estimated count over the true pushed count, clamped to `[0, 1]`.
/// `count_hat` carries the Horvitz–Thompson rescale (division by the
/// delivery factor), so multiplying it back out recovers what actually
/// arrived.
pub(crate) fn fill_completeness(
    results: &mut [WindowResult],
    window_items: &BTreeMap<WindowId, u64>,
    delivery_factor: f64,
) {
    for result in results {
        let actual = window_items.get(&result.window).copied().unwrap_or(0);
        result.completeness = if actual == 0 {
            1.0
        } else {
            ((result.count_hat * delivery_factor) / actual as f64).clamp(0.0, 1.0)
        };
    }
}

/// The unified front door: one driver, one topology + query set, either
/// engine. See the [module docs](self) for an example.
pub struct Driver {
    topology: Topology,
    engine: Box<dyn Engine>,
}

/// Build-time validation at the driver front door: every layer strategy
/// (and the root's) must be able to answer every registered query, and a
/// sketch strategy anywhere requires a homogeneous, unimpaired,
/// churn-free topology on a deterministic engine — the summary path has
/// no per-item frames for fault injectors to act on, and KLL merges
/// require one tree-wide config and seed.
fn validate(topology: &Topology, queries: &QuerySet, kind: &EngineKind) -> Result<(), EngineError> {
    let mut strategies: Vec<Strategy> = (0..topology.layers().len())
        .map(|l| topology.layer_strategy(l))
        .collect();
    strategies.push(topology.root_strategy());
    for strategy in &strategies {
        for &query in queries.specs() {
            if !strategy.supports(&query) {
                return Err(EngineError::UnsupportedQuery {
                    strategy: strategy.label(),
                    query,
                });
            }
        }
    }
    if !strategies.iter().any(|s| matches!(s, Strategy::Sketch(_))) {
        return Ok(());
    }
    if strategies.iter().any(|s| *s != strategies[0]) {
        return Err(EngineError::SketchTopology {
            reason: "every layer and the root must run the same sketch config \
                     (summaries only merge under one tree-wide config and seed)",
        });
    }
    if topology.has_impairment() {
        return Err(EngineError::SketchTopology {
            reason: "fault impairment is not supported on the summary path",
        });
    }
    if topology.has_churn() {
        return Err(EngineError::SketchTopology {
            reason: "fleet churn is not supported on the summary path",
        });
    }
    if let EngineKind::Pipeline(options) = kind {
        if !options.deterministic {
            return Err(EngineError::SketchTopology {
                reason: "the wall-clock pipeline is not supported; use \
                         EngineKind::pipeline_deterministic()",
            });
        }
    }
    Ok(())
}

impl Driver {
    /// Builds a driver for `topology` + `queries` on the chosen engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Budget`] for an invalid sampling fraction,
    /// [`EngineError::UnsupportedQuery`] when a registered query cannot
    /// be answered by a layer's strategy, and
    /// [`EngineError::SketchTopology`] for invalid sketch combinations.
    pub fn new(
        topology: Topology,
        queries: QuerySet,
        kind: EngineKind,
    ) -> Result<Self, EngineError> {
        validate(&topology, &queries, &kind)?;
        let engine: Box<dyn Engine> = match kind {
            EngineKind::Sim => Box::new(SimEngine::new(topology.clone(), queries)?),
            EngineKind::Pipeline(options) => {
                Box::new(PipelineEngine::new(topology.clone(), queries, options)?)
            }
        };
        Ok(Driver { topology, engine })
    }

    /// A driver on the virtual-time engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Budget`] for an invalid sampling fraction.
    pub fn sim(topology: Topology, queries: QuerySet) -> Result<Self, EngineError> {
        Driver::new(topology, queries, EngineKind::Sim)
    }

    /// A driver on the threaded wall-clock engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Budget`] for an invalid sampling fraction.
    pub fn pipeline(topology: Topology, queries: QuerySet) -> Result<Self, EngineError> {
        Driver::new(topology, queries, EngineKind::pipeline())
    }

    /// The topology this driver runs.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Feeds one interval: exactly one batch per declared source.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::SourceCount`] on an interval whose length
    /// differs from the topology's declared sources, and
    /// [`EngineError::Closed`] if the engine already shut down.
    pub fn push_interval(&mut self, interval: &[Batch]) -> Result<(), EngineError> {
        if interval.len() != self.topology.sources() {
            return Err(EngineError::SourceCount {
                expected: self.topology.sources(),
                got: interval.len(),
            });
        }
        self.engine.push_interval(interval)
    }

    /// Drains the window results that became available since the last
    /// poll. On the sim engine a window closes once an event at/past its
    /// end was pushed; the wall-clock pipeline closes windows as its
    /// watermark advances; the deterministic pipeline reports everything
    /// at [`Driver::finish`].
    pub fn poll(&mut self) -> Vec<WindowResult> {
        self.engine.poll()
    }

    /// Ends the stream and reports the full run.
    pub fn finish(self) -> RunReport {
        self.engine.finish()
    }

    /// Convenience: pushes every interval, then finishes.
    ///
    /// # Errors
    ///
    /// Propagates [`Driver::push_interval`] errors.
    pub fn run(mut self, intervals: &[Vec<Batch>]) -> Result<RunReport, EngineError> {
        for interval in intervals {
            self.push_interval(interval)?;
        }
        Ok(self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QuerySpec;
    use crate::topology::LayerSpec;
    use approxiot_core::{StratumId, StreamItem};

    const SEC: u64 = 1_000_000_000;

    fn interval(sources: usize, n: usize, value: f64, ts: u64) -> Vec<Batch> {
        (0..sources)
            .map(|s| {
                Batch::from_items(
                    (0..n)
                        .map(|k| {
                            StreamItem::with_meta(StratumId::new(s as u32), value, k as u64, ts)
                        })
                        .collect(),
                )
            })
            .collect()
    }

    fn deep_topology(fraction: f64) -> Topology {
        Topology::builder()
            .sources(5)
            .layer(LayerSpec::new(3))
            .layer(LayerSpec::new(2))
            .layer(LayerSpec::new(1))
            .overall_fraction(fraction)
            .seed(11)
            .build()
            .expect("valid")
    }

    #[test]
    fn four_stage_tree_reconstructs_counts() {
        let mut engine = SimEngine::new(deep_topology(0.3), QuerySet::default()).expect("valid");
        engine.push_interval(&interval(5, 400, 1.0, 10));
        let results = engine.flush();
        assert_eq!(results.len(), 1);
        assert!(
            (results[0].count_hat - 2000.0).abs() < 1e-6,
            "count through four sampling stages: {}",
            results[0].count_hat
        );
        assert_eq!(engine.source_items(), 2000);
    }

    #[test]
    fn per_hop_bytes_shrink_down_the_tree() {
        let mut engine = SimEngine::new(deep_topology(0.05), QuerySet::default()).expect("valid");
        engine.push_interval(&interval(5, 1000, 1.0, 10));
        engine.flush();
        let hops = engine.bytes().hops().to_vec();
        assert_eq!(hops.len(), 4);
        for pair in hops.windows(2) {
            assert!(
                pair[1] < pair[0],
                "each hop must carry fewer bytes: {hops:?}"
            );
        }
    }

    #[test]
    fn driver_rejects_wrong_source_count() {
        let mut driver = Driver::sim(deep_topology(0.5), QuerySet::default()).expect("valid");
        assert_eq!(
            driver.push_interval(&interval(3, 10, 1.0, 0)),
            Err(EngineError::SourceCount {
                expected: 5,
                got: 3
            })
        );
        assert!(driver.push_interval(&interval(5, 10, 1.0, 0)).is_ok());
    }

    #[test]
    fn driver_poll_closes_windows_behind_the_event_high_water() {
        let mut driver = Driver::sim(deep_topology(1.0), QuerySet::default()).expect("valid");
        driver
            .push_interval(&interval(5, 10, 1.0, 10))
            .expect("runs");
        assert!(driver.poll().is_empty(), "window 0 still open");
        driver
            .push_interval(&interval(5, 10, 1.0, SEC + 10))
            .expect("runs");
        let closed = driver.poll();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].window, 0);
        // finish still reports every window, polled or not.
        let report = driver.finish();
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.source_items, 100);
    }

    #[test]
    fn driver_runs_multi_query_windows() {
        let queries = QuerySet::new()
            .with(QuerySpec::Sum)
            .with(QuerySpec::Quantile(0.5))
            .with(QuerySpec::TopK(3));
        let driver = Driver::sim(deep_topology(1.0), queries).expect("valid");
        let report = driver.run(&[interval(5, 100, 2.0, 10)]).expect("runs");
        let r = &report.results[0];
        assert_eq!(r.queries.len(), 3);
        assert_eq!(r.estimate.value, 1000.0);
        let median = r
            .queries
            .get(QuerySpec::Quantile(0.5))
            .and_then(crate::query::QueryValue::quantile)
            .expect("non-empty");
        assert_eq!(median.value, 2.0);
        let top = r
            .queries
            .get(QuerySpec::TopK(3))
            .and_then(crate::query::QueryValue::top_k)
            .expect("top-k");
        assert_eq!(top.len(), 3);
    }

    fn sketch_topology(seed: u64) -> Topology {
        Topology::builder()
            .sources(5)
            .layer(LayerSpec::new(3))
            .layer(LayerSpec::new(2))
            .layer(LayerSpec::new(1))
            .strategy(Strategy::sketch())
            .seed(seed)
            .build()
            .expect("valid")
    }

    #[test]
    fn sketch_sim_answers_exact_moments_through_the_tree() {
        let queries = QuerySet::new()
            .with(QuerySpec::Sum)
            .with(QuerySpec::Count)
            .with(QuerySpec::Quantile(0.5))
            .with(QuerySpec::TopK(2));
        let mut driver = Driver::new(sketch_topology(11), queries, EngineKind::Sim).expect("valid");
        driver
            .push_interval(&interval(5, 400, 2.0, 10))
            .expect("runs");
        let report = driver.finish();
        assert_eq!(report.results.len(), 1);
        let r = &report.results[0];
        assert_eq!(r.estimate.value, 4000.0, "moments are exact");
        assert_eq!(r.estimate.variance, 0.0);
        assert_eq!(r.count_hat, 2000.0);
        assert_eq!(r.completeness, 1.0);
        assert!(r.queries.quantile(0.5).is_some());
        assert_eq!(r.queries.top_k(2).map(<[_]>::len), Some(2));
        assert_eq!(report.source_items, 2000);
    }

    #[test]
    fn sketch_hops_bill_summary_frames_not_items() {
        let mut engine = SimEngine::new(sketch_topology(11), QuerySet::default()).expect("valid");
        engine.push_interval(&interval(5, 1000, 1.0, 10));
        engine.flush();
        let hops = engine.bytes().hops().to_vec();
        assert_eq!(hops.len(), 4);
        assert!(hops[0] > 0, "hop 0 ships item frames");
        for &inner in &hops[1..] {
            assert!(inner > 0, "every hop bills its summary frames");
            assert!(
                inner < hops[0] / 4,
                "summary hops must be well below the item hop: {hops:?}"
            );
        }
    }

    #[test]
    fn driver_rejects_queries_the_sketch_cannot_answer() {
        use approxiot_core::SketchConfig;
        let counts_only = Topology::builder()
            .sources(2)
            .layer(LayerSpec::new(1))
            .strategy(Strategy::Sketch(SketchConfig::counts_only()))
            .build()
            .expect("valid");
        let err = Driver::sim(
            counts_only.clone(),
            QuerySet::new().with(QuerySpec::Quantile(0.5)),
        )
        .err()
        .expect("rejected");
        assert_eq!(
            err,
            EngineError::UnsupportedQuery {
                strategy: "sketch",
                query: QuerySpec::Quantile(0.5)
            }
        );
        let err = Driver::sim(counts_only, QuerySet::new().with(QuerySpec::TopK(3)))
            .err()
            .expect("rejected");
        assert!(err.to_string().contains("cannot answer TOP3"), "{err}");
    }

    #[test]
    fn driver_rejects_invalid_sketch_combinations() {
        use approxiot_net::ImpairmentSpec;
        // Heterogeneous: a sketch tree with a non-sketch layer.
        let mixed = Topology::builder()
            .sources(2)
            .layer(LayerSpec::new(2).strategy(Strategy::Native))
            .layer(LayerSpec::new(1))
            .strategy(Strategy::sketch())
            .build()
            .expect("valid");
        assert!(matches!(
            Driver::sim(mixed, QuerySet::default()),
            Err(EngineError::SketchTopology { .. })
        ));
        // Impairment on the summary path.
        let impaired = Topology::builder()
            .sources(2)
            .layer(LayerSpec::new(1))
            .strategy(Strategy::sketch())
            .impair_all_hops(ImpairmentSpec::none().loss(0.5))
            .build()
            .expect("valid");
        assert!(matches!(
            Driver::sim(impaired, QuerySet::default()),
            Err(EngineError::SketchTopology { .. })
        ));
        // The wall-clock pipeline; the deterministic pipeline is fine.
        let sketch = sketch_topology(3);
        assert!(matches!(
            Driver::pipeline(sketch.clone(), QuerySet::default()),
            Err(EngineError::SketchTopology { .. })
        ));
        assert!(Driver::new(
            sketch,
            QuerySet::default(),
            EngineKind::pipeline_deterministic()
        )
        .is_ok());
    }

    #[test]
    fn heterogeneous_layers_run() {
        use crate::node::Strategy;
        // Native first layer (forward everything), WHS mid, at full depth.
        let topology = Topology::builder()
            .sources(4)
            .layer(LayerSpec::new(2).strategy(Strategy::Native))
            .layer(LayerSpec::new(1))
            .overall_fraction(0.5)
            .seed(3)
            .build()
            .expect("valid");
        let driver = Driver::sim(topology, QuerySet::default()).expect("valid");
        let report = driver.run(&[interval(4, 100, 1.0, 10)]).expect("runs");
        assert!((report.results[0].count_hat - 400.0).abs() < 1e-6);
    }
}
