//! Deterministic fault injection: the runtime layer that turns a hop's
//! [`ImpairmentSpec`] into actual dropped, duplicated, reordered and
//! jitter-delayed frames — on **both** execution engines, with identical
//! decisions.
//!
//! ## How determinism is preserved across engines
//!
//! Every sender on an impaired hop owns one [`FaultInjector`]: a seeded
//! decision stream ([`approxiot_net::Impairment`]) plus drop/duplicate
//! accounting. The injector's seed derives from the topology
//! ([`crate::Topology::hop_impairment_seed`]) as a function of `(hop,
//! sender index)` only, and both engines transmit each sender's frames in
//! the same canonical order (the PR-3 engine-equivalence contract), so the
//! *n*-th frame of a given sender meets the same fate everywhere:
//!
//! * the virtual-time [`crate::SimEngine`] passes each node's outputs
//!   through its injector as it routes them to the next layer;
//! * the threaded [`crate::pipeline::PipelineEngine`] wraps each node's
//!   producer the same way, in wall-clock **and** deterministic-replay
//!   mode.
//!
//! Decision draws are strictly ordered per frame — drop, then (for
//! survivors) duplicate, then reorder, then one jitter draw per delivered
//! copy — and every disabled knob short-circuits without consuming
//! randomness, so a zero spec leaves seeded runs bit-identical to an
//! unimpaired topology.
//!
//! ## Semantics of each knob
//!
//! * **Loss** drops a frame before it consumes hop bandwidth (an egress
//!   drop): lost frames appear in [`HopFaults`], not in byte accounting.
//! * **Duplication** delivers a surviving frame twice, back to back (and
//!   pays for both copies on the wire).
//! * **Reorder** swaps a surviving frame with its successor *within one
//!   transmission burst* — the set of frames a node emits for one input
//!   (§III-E sharded nodes emit one frame per worker shard). Bounding the
//!   displacement to the burst keeps replay mode's canonical
//!   `(interval, partition, offset)` sort order aligned with the sim
//!   engine's processing order.
//! * **Jitter** adds uniform extra in-flight delay per delivered copy. It
//!   perturbs wall-clock delivery times (and can push arrivals past the
//!   root's allowed-lateness horizon), but never virtual-time estimates:
//!   in sim and replay mode the draw happens — keeping streams aligned —
//!   and the duration is ignored.

use approxiot_core::{Batch, ColumnarBatch};
use approxiot_net::{Impairment, ImpairmentSpec};
use std::time::Duration;

/// A frame the injector can transmit: anything that knows how many items
/// it carries (for drop/duplicate item accounting). Implemented for both
/// batch layouts so AoS and columnar sends share one decision stream —
/// the injected fates depend only on frame order, never on layout.
pub trait FaultFrame {
    /// Items inside the frame.
    fn item_count(&self) -> usize;
}

impl FaultFrame for Batch {
    fn item_count(&self) -> usize {
        self.len()
    }
}

impl FaultFrame for ColumnarBatch {
    fn item_count(&self) -> usize {
        self.len()
    }
}

/// Drop/duplicate accounting of one injector (or one whole hop, when
/// aggregated into [`HopFaults`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Frames dropped by loss.
    pub dropped_frames: u64,
    /// Items inside dropped frames.
    pub dropped_items: u64,
    /// Frames delivered twice by duplication.
    pub duplicated_frames: u64,
    /// Items inside duplicated frames (counted once per extra copy).
    pub duplicated_items: u64,
}

impl FaultStats {
    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &FaultStats) {
        self.dropped_frames += other.dropped_frames;
        self.dropped_items += other.dropped_items;
        self.duplicated_frames += other.duplicated_frames;
        self.duplicated_items += other.duplicated_items;
    }

    /// Returns `true` when nothing was dropped or duplicated.
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// Per-hop fault accounting for a whole run — the [`crate::HopBytes`]
/// counterpart for impairments. `hops()[0]` is the sources → first-layer
/// hop; the last entry is the hop into the root.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HopFaults {
    hops: Vec<FaultStats>,
}

impl HopFaults {
    /// Zeroed accounting for a tree with `hops` hops.
    pub fn new(hops: usize) -> Self {
        HopFaults {
            hops: vec![FaultStats::default(); hops],
        }
    }

    /// Per-hop fault counters, source-side hop first.
    pub fn hops(&self) -> &[FaultStats] {
        &self.hops
    }

    /// Merges one injector's counters into hop `hop`.
    pub fn record(&mut self, hop: usize, stats: &FaultStats) {
        self.hops[hop].merge(stats);
    }

    /// Items lost in flight across every hop.
    pub fn dropped_items(&self) -> u64 {
        self.hops.iter().map(|h| h.dropped_items).sum()
    }

    /// Extra item copies delivered across every hop.
    pub fn duplicated_items(&self) -> u64 {
        self.hops.iter().map(|h| h.duplicated_items).sum()
    }

    /// Returns `true` when no hop dropped or duplicated anything.
    pub fn is_clean(&self) -> bool {
        self.hops.iter().all(FaultStats::is_clean)
    }
}

impl From<Vec<FaultStats>> for HopFaults {
    fn from(hops: Vec<FaultStats>) -> Self {
        HopFaults { hops }
    }
}

/// One sender's deterministic fault stream on one hop.
///
/// Feed every outgoing burst through [`FaultInjector::transmit`]; the
/// injector decides each frame's fate and invokes the delivery callback
/// for every surviving copy, in final (possibly reordered) order.
///
/// # Examples
///
/// ```
/// use approxiot_core::{Batch, StratumId, StreamItem};
/// use approxiot_net::ImpairmentSpec;
/// use approxiot_runtime::FaultInjector;
///
/// let spec = ImpairmentSpec::none().loss(0.5);
/// let mut injector = FaultInjector::new(spec, 7).expect("spec is not a no-op");
/// let frame = Batch::from_items(vec![StreamItem::new(StratumId::new(0), 1.0)]);
/// let mut delivered = 0;
/// for _ in 0..1000 {
///     injector.transmit(std::slice::from_ref(&frame), &mut |_, _| {
///         delivered += 1;
///         true
///     });
/// }
/// let stats = injector.stats();
/// assert_eq!(delivered + stats.dropped_frames, 1000);
/// assert!(stats.dropped_frames > 350 && stats.dropped_frames < 650);
/// ```
#[derive(Debug)]
pub struct FaultInjector {
    stream: Impairment,
    stats: FaultStats,
    /// Scratch for the per-burst `(frame index, duplicated)` plan.
    plan: Vec<(usize, bool)>,
}

impl FaultInjector {
    /// Builds the injector for one sender, or `None` when the spec is a
    /// no-op — callers keep the unimpaired fast path exactly as it was.
    pub fn new(spec: ImpairmentSpec, seed: u64) -> Option<Self> {
        if spec.is_noop() {
            return None;
        }
        Some(FaultInjector {
            stream: spec.stream(seed),
            stats: FaultStats::default(),
            plan: Vec::new(),
        })
    }

    /// Transmits one burst of frames, invoking `deliver(frame, extra_delay)`
    /// for each delivered copy in final order. A `false` from `deliver`
    /// (transport closed) aborts the burst and is returned.
    ///
    /// Decision order per frame: drop → duplicate → reorder, then one
    /// jitter draw per delivered copy at delivery time. Reorder swaps a
    /// frame with its surviving successor within the burst (adjacent,
    /// non-cascading), so single-frame bursts never reorder.
    ///
    /// Generic over the frame layout ([`FaultFrame`]): the decision
    /// stream consumes randomness identically for [`Batch`] and
    /// [`ColumnarBatch`] bursts, so an engine switching a hop to columnar
    /// frames keeps the exact same fate sequence.
    pub fn transmit<F: FaultFrame>(
        &mut self,
        burst: &[F],
        deliver: &mut dyn FnMut(&F, Duration) -> bool,
    ) -> bool {
        self.plan.clear();
        // True while the previous plan entry was already displaced by a
        // swap: pairs swap at most once, bounding displacement to one.
        let mut prev_swapped = false;
        for (idx, frame) in burst.iter().enumerate() {
            if self.stream.drops() {
                self.stats.dropped_frames += 1;
                self.stats.dropped_items += frame.item_count() as u64;
                continue;
            }
            let duplicated = self.stream.duplicates();
            if duplicated {
                self.stats.duplicated_frames += 1;
                self.stats.duplicated_items += frame.item_count() as u64;
            }
            // The draw happens for every surviving frame (stream alignment);
            // it only takes effect on a free predecessor.
            let swaps = self.stream.reorders();
            match self.plan.len().checked_sub(1) {
                Some(last) if swaps && !prev_swapped => {
                    self.plan.push(self.plan[last]);
                    self.plan[last] = (idx, duplicated);
                    prev_swapped = true;
                }
                _ => {
                    self.plan.push((idx, duplicated));
                    prev_swapped = false;
                }
            }
        }
        // Deliver in final order; scratch is detached so the closure can't
        // alias it.
        let plan = std::mem::take(&mut self.plan);
        let mut ok = true;
        for &(idx, duplicated) in &plan {
            let frame = &burst[idx];
            let copies = if duplicated { 2 } else { 1 };
            for _ in 0..copies {
                let extra = self.stream.extra_delay();
                if !deliver(frame, extra) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                break;
            }
        }
        self.plan = plan;
        ok
    }

    /// Drop/duplicate counters accumulated so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_core::{StratumId, StreamItem};

    fn frame(tag: u64, n: usize) -> Batch {
        Batch::from_items(
            (0..n)
                .map(|k| StreamItem::with_meta(StratumId::new(0), tag as f64, k as u64, 0))
                .collect(),
        )
    }

    fn collect_tags(injector: &mut FaultInjector, burst: &[Batch]) -> Vec<u64> {
        let mut tags = Vec::new();
        injector.transmit(burst, &mut |b, _| {
            tags.push(b.items[0].value as u64);
            true
        });
        tags
    }

    #[test]
    fn noop_spec_builds_no_injector() {
        assert!(FaultInjector::new(ImpairmentSpec::none(), 1).is_none());
        assert!(FaultInjector::new(ImpairmentSpec::none().loss(0.1), 1).is_some());
    }

    #[test]
    fn loss_counts_frames_and_items() {
        let mut inj = FaultInjector::new(ImpairmentSpec::none().loss(0.5), 3).expect("active");
        let mut delivered = 0u64;
        for t in 0..200 {
            inj.transmit(&[frame(t, 7)], &mut |_, _| {
                delivered += 1;
                true
            });
        }
        let stats = inj.stats();
        assert_eq!(stats.dropped_frames + delivered, 200);
        assert_eq!(stats.dropped_items, stats.dropped_frames * 7);
        assert!(stats.dropped_frames > 60 && stats.dropped_frames < 140);
    }

    #[test]
    fn duplication_delivers_back_to_back_copies() {
        let mut inj =
            FaultInjector::new(ImpairmentSpec::none().duplicate(0.999_999), 4).expect("active");
        let tags = collect_tags(&mut inj, &[frame(1, 2), frame(2, 2)]);
        assert_eq!(tags, vec![1, 1, 2, 2]);
        assert_eq!(inj.stats().duplicated_frames, 2);
        assert_eq!(inj.stats().duplicated_items, 4);
    }

    #[test]
    fn reorder_swaps_adjacent_frames_within_a_burst() {
        let mut inj =
            FaultInjector::new(ImpairmentSpec::none().reorder(0.999_999), 5).expect("active");
        // Every frame past the first swaps with its predecessor; with the
        // non-cascading single pass [1,2,3,4] becomes [2,1,4,3].
        let tags = collect_tags(
            &mut inj,
            &[frame(1, 1), frame(2, 1), frame(3, 1), frame(4, 1)],
        );
        assert_eq!(tags, vec![2, 1, 4, 3]);
        // A single-frame burst cannot reorder.
        let tags = collect_tags(&mut inj, &[frame(9, 1)]);
        assert_eq!(tags, vec![9]);
    }

    #[test]
    fn same_seed_same_fate_sequence() {
        let spec = ImpairmentSpec::none().loss(0.3).duplicate(0.2).reorder(0.2);
        let mut a = FaultInjector::new(spec, 11).expect("active");
        let mut b = FaultInjector::new(spec, 11).expect("active");
        for t in 0..50 {
            let burst = [frame(t, 1), frame(t + 1000, 1), frame(t + 2000, 1)];
            assert_eq!(collect_tags(&mut a, &burst), collect_tags(&mut b, &burst));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn closed_transport_aborts_the_burst() {
        let mut inj = FaultInjector::new(ImpairmentSpec::none().loss(0.001), 6).expect("active");
        let mut calls = 0;
        let ok = inj.transmit(&[frame(1, 1), frame(2, 1)], &mut |_, _| {
            calls += 1;
            false
        });
        assert!(!ok);
        assert_eq!(calls, 1, "no deliveries after the transport closed");
    }

    #[test]
    fn hop_faults_aggregate_and_report() {
        let mut faults = HopFaults::new(3);
        assert!(faults.is_clean());
        faults.record(
            1,
            &FaultStats {
                dropped_frames: 2,
                dropped_items: 20,
                duplicated_frames: 1,
                duplicated_items: 5,
            },
        );
        faults.record(
            1,
            &FaultStats {
                dropped_frames: 1,
                dropped_items: 7,
                ..FaultStats::default()
            },
        );
        assert!(!faults.is_clean());
        assert_eq!(faults.hops()[1].dropped_frames, 3);
        assert_eq!(faults.dropped_items(), 27);
        assert_eq!(faults.duplicated_items(), 5);
        assert!(faults.hops()[0].is_clean() && faults.hops()[2].is_clean());
    }
}
