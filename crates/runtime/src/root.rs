//! The root node: final sampling stage, windowed `Θ` store, query
//! execution and error bounds (Algorithm 2, lines 20–26).

use crate::churn::InclusionHandle;
use crate::node::{SamplingNode, Strategy};
use crate::query::{Query, QueryResults, QuerySet, QuerySpec, QueryValue};
use approxiot_core::{
    Batch, Confidence, Estimate, StratumId, StratumSummaries, ThetaStore, WeightMap, WhsOutput,
};
use approxiot_streams::{TumblingWindow, WindowBuffer, WindowId};
use std::collections::BTreeMap;
use std::time::Duration;

/// One window's approximate answer, as the root emits it
/// (`result ± error`).
#[derive(Debug, Clone)]
pub struct WindowResult {
    /// The window index.
    pub window: WindowId,
    /// Window start (nanoseconds, inclusive).
    pub start_nanos: u64,
    /// Window end (nanoseconds, exclusive).
    pub end_nanos: u64,
    /// The primary query's estimate with variance (the first scalar query
    /// in the window's [`QuerySet`], SUM by default).
    pub estimate: Estimate,
    /// Per-stratum estimates of the primary query (for per-pollutant
    /// style reporting).
    pub per_stratum: BTreeMap<StratumId, Estimate>,
    /// Every registered query's answer for this window, in registration
    /// order.
    pub queries: QueryResults,
    /// Number of sampled items the estimate was computed from.
    pub sampled_items: usize,
    /// Reconstructed original item count for the window (Equation 8).
    pub count_hat: f64,
    /// Estimated fraction of the window's source items whose contribution
    /// survived in-flight loss, in `[0, 1]`. Exactly `1.0` on an
    /// unimpaired topology; under fault injection the engine fills it in
    /// from the delivered (pre-rescale) count against the true pushed
    /// count.
    pub completeness: f64,
    /// Items the root rejected for arriving past the allowed-lateness
    /// horizon since the previous result was emitted (the window they
    /// targeted had already been answered).
    pub dropped_late: u64,
}

impl WindowResult {
    /// The ± error at `confidence` (the paper's default reporting is 95%).
    pub fn error_bound(&self, confidence: Confidence) -> f64 {
        self.estimate.bound(confidence)
    }
}

/// Configuration of a [`RootNode`].
#[derive(Debug, Clone)]
pub struct RootConfig {
    /// The strategy the whole pipeline runs (decides how estimates are
    /// reconstructed).
    pub strategy: Strategy,
    /// The root's own sampling fraction (the root samples too, §IV).
    pub fraction: f64,
    /// End-to-end keep probability across all sampling layers — the SRS
    /// estimator's Horvitz–Thompson scale is `1 / overall_fraction`.
    pub overall_fraction: f64,
    /// The computation window.
    pub window: Duration,
    /// The queries to run per window.
    pub queries: QuerySet,
    /// RNG seed for the root's sampler.
    pub seed: u64,
    /// Expected delivered copies per source item under the topology's
    /// fault injection ([`crate::Topology::delivery_factor`]). The root
    /// divides every stratum weight by this factor (Horvitz–Thompson
    /// under uniform random loss) so SUM/COUNT stay unbiased; `1.0` — the
    /// unimpaired value — changes nothing.
    pub delivery_factor: f64,
    /// How long each window keeps accepting jitter-delayed arrivals past
    /// its end; later stragglers are dropped and counted in
    /// [`WindowResult::dropped_late`].
    pub allowed_lateness: Duration,
}

impl RootConfig {
    /// A root for an ApproxIoT pipeline with the given per-layer and
    /// overall fractions, on a perfect (unimpaired) network.
    pub fn approxiot(fraction: f64, overall_fraction: f64, window: Duration) -> Self {
        RootConfig {
            strategy: Strategy::whs(),
            fraction,
            overall_fraction,
            window,
            queries: QuerySet::default(),
            seed: 0xB07,
            delivery_factor: 1.0,
            allowed_lateness: Duration::ZERO,
        }
    }
}

/// The datacenter node: samples its input one last time, accumulates
/// `(W_out, sample)` pairs per window, and at each watermark advance runs
/// the query and emits [`WindowResult`]s with rigorous error bounds.
///
/// # Examples
///
/// ```
/// use approxiot_core::{Batch, StratumId, StreamItem};
/// use approxiot_runtime::{Query, QuerySet, RootConfig, RootNode, Strategy};
/// use std::time::Duration;
///
/// let mut root = RootNode::new(RootConfig {
///     strategy: Strategy::whs(),
///     fraction: 1.0,
///     overall_fraction: 1.0,
///     window: Duration::from_secs(1),
///     queries: QuerySet::single(Query::Sum),
///     seed: 1,
///     delivery_factor: 1.0,
///     allowed_lateness: Duration::ZERO,
/// })?;
/// root.ingest(&Batch::from_items(vec![StreamItem::with_meta(StratumId::new(0), 5.0, 0, 10)]));
/// let results = root.advance_watermark(2_000_000_000);
/// assert_eq!(results[0].estimate.value, 5.0);
/// # Ok::<(), approxiot_core::BudgetError>(())
/// ```
#[derive(Debug)]
pub struct RootNode {
    sampler: SamplingNode,
    buffer: WindowBuffer<WhsOutput>,
    /// The sketch-strategy counterpart of `buffer`: per-window summary
    /// payloads from the final edge layer, merged at answer time. Only
    /// one of the two stores is ever populated — which one is decided by
    /// the strategy.
    summaries: WindowBuffer<StratumSummaries>,
    queries: QuerySet,
    /// The first scalar query (drives the result's primary `estimate`).
    primary: Query,
    strategy: Strategy,
    /// Horvitz–Thompson scale for SRS reconstruction (already divided by
    /// the delivery factor).
    srs_scale: f64,
    /// `1 / delivery_factor`: the loss correction applied to every
    /// stratum weight filed into `Θ`. Exactly `1.0` when the topology is
    /// unimpaired, in which case no weight is touched.
    loss_scale: f64,
    /// Items dropped for arriving past the allowed-lateness horizon.
    dropped_late: u64,
    /// `dropped_late` already attributed to an emitted result.
    dropped_late_reported: u64,
    emitted: u64,
    /// Per-window, per-stratum inclusion tallies shared with the engine's
    /// churn driver (`None` on an unchurned topology). When present, the
    /// run-global `loss_scale` generalizes at answer time to
    /// `1 / (loss_scale_already_applied · inclusion_factor)` per stratum —
    /// the node-level Horvitz–Thompson rescale.
    inclusion: Option<InclusionHandle>,
}

impl RootNode {
    /// Creates a root node.
    ///
    /// # Errors
    ///
    /// Returns [`approxiot_core::BudgetError`] for fractions outside
    /// `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `delivery_factor` is finite and positive (loss is
    /// clamped below 1, so every real topology satisfies this).
    pub fn new(config: RootConfig) -> Result<Self, approxiot_core::BudgetError> {
        // Validate the overall fraction through the same gate.
        approxiot_core::SamplingBudget::new(config.overall_fraction)?;
        assert!(
            config.delivery_factor.is_finite() && config.delivery_factor > 0.0,
            "delivery factor must be finite and positive, got {}",
            config.delivery_factor
        );
        Ok(RootNode {
            sampler: SamplingNode::new(config.strategy, config.fraction, config.seed)?,
            buffer: WindowBuffer::new(TumblingWindow::new(config.window))
                .with_allowed_lateness(config.allowed_lateness),
            summaries: WindowBuffer::new(TumblingWindow::new(config.window))
                .with_allowed_lateness(config.allowed_lateness),
            primary: config.queries.primary(),
            queries: config.queries,
            strategy: config.strategy,
            srs_scale: 1.0 / (config.overall_fraction * config.delivery_factor),
            loss_scale: 1.0 / config.delivery_factor,
            dropped_late: 0,
            dropped_late_reported: 0,
            emitted: 0,
            inclusion: None,
        })
    }

    /// Attaches the engine's per-window inclusion map (fleet churn): at
    /// answer time every stratum's weight is further divided by that
    /// window's inclusion factor, generalizing the run-global loss rescale
    /// to per-window, per-subtree delivery — SUM/COUNT stay unbiased while
    /// nodes are down. Never called on an unchurned topology.
    pub fn set_inclusion(&mut self, inclusion: InclusionHandle) {
        self.inclusion = Some(inclusion);
    }

    /// The primary (first scalar) query this root runs.
    pub fn query(&self) -> Query {
        self.primary
    }

    /// Every query this root runs per window.
    pub fn queries(&self) -> &QuerySet {
        &self.queries
    }

    /// The window scheme.
    pub fn window(&self) -> TumblingWindow {
        self.buffer.scheme()
    }

    /// Ingests one batch from the final edge layer: the root samples it,
    /// then files the weighted output into the per-window `Θ` store, with
    /// items split across windows by their event time.
    pub fn ingest(&mut self, batch: &Batch) {
        let sampled = self.sampler.process_batch(batch);
        self.ingest_sampled(sampled);
    }

    /// Like [`RootNode::ingest`], but borrows the batch mutably so native
    /// roots can consume it without cloning
    /// ([`SamplingNode::process_batch_mut`]); the caller keeps the (then
    /// possibly emptied) storage for recycling. The pipeline's root loop
    /// uses this with a [`approxiot_core::BatchPool`].
    pub fn ingest_mut(&mut self, batch: &mut Batch) {
        let sampled = self.sampler.process_batch_mut(batch);
        self.ingest_sampled(sampled);
    }

    /// Ingests windowed summary payloads from a sketch-strategy edge
    /// layer ([`crate::NodePayload::Summaries`]): each window's summary is
    /// filed into the per-window summary store, merged with whatever other
    /// senders already contributed at answer time. Payloads targeting a
    /// window that already closed (past the allowed lateness) are dropped
    /// and their exact item counts added to the late tally.
    pub fn ingest_summaries(&mut self, windows: Vec<(u64, StratumSummaries)>) {
        let scheme = self.summaries.scheme();
        for (window, summaries) in windows {
            if summaries.is_empty() {
                continue;
            }
            let start = scheme.start_of(window);
            if !self.summaries.accepts(start) {
                self.dropped_late += summaries.count();
                continue;
            }
            self.summaries.insert(start, summaries);
        }
    }

    /// Files the root's own sampled output into `Θ`, **consuming** it: a
    /// batch whose items all fall in one window (the overwhelmingly common
    /// case — edge nodes forward at window granularity) moves its item
    /// vector and weight map straight into the store, no per-item copies
    /// and no weight-map clone. Only batches genuinely straddling a window
    /// boundary take the splitting path. Items targeting a window that
    /// already closed (past the allowed lateness) are dropped and counted.
    fn ingest_sampled(&mut self, sampled: Batch) {
        if sampled.is_empty() {
            return;
        }
        let scheme = self.buffer.scheme();
        let first_window = scheme.index_of(sampled.items[0].source_ts);
        if sampled
            .items
            .iter()
            .all(|i| scheme.index_of(i.source_ts) == first_window)
        {
            if !self.buffer.accepts(sampled.items[0].source_ts) {
                self.dropped_late += sampled.items.len() as u64;
                return;
            }
            let Batch { weights, items } = sampled;
            let weights = self.effective_weights_owned(weights, &items);
            self.buffer.insert(
                scheme.start_of(first_window),
                WhsOutput {
                    weights,
                    sample: items,
                },
            );
            return;
        }
        // Split the sampled batch by event-time window. Replicating the
        // weight map across splits is safe: Θ's estimators sum |I|·W per
        // pair, which is invariant under splitting.
        let mut per_window: BTreeMap<WindowId, Vec<approxiot_core::StreamItem>> = BTreeMap::new();
        for item in &sampled.items {
            per_window
                .entry(scheme.index_of(item.source_ts))
                .or_default()
                .push(*item);
        }
        for (window, items) in per_window {
            if !self.buffer.accepts(scheme.start_of(window)) {
                self.dropped_late += items.len() as u64;
                continue;
            }
            let weights = self.effective_weights(&sampled.weights, &items);
            self.buffer.insert(
                scheme.start_of(window),
                WhsOutput {
                    weights,
                    sample: items,
                },
            );
        }
    }

    /// Builds the weight map `Θ` should record for `items`:
    /// WHS keeps the sampled weights; SRS substitutes the Horvitz–Thompson
    /// scale; native forces weight 1 (exact). On an impaired topology,
    /// every weight is additionally divided by the delivery factor so
    /// randomly lost contributions are extrapolated back in
    /// (Horvitz–Thompson under uniform loss).
    ///
    /// The owned variant is the single-window fast path — the WHS arm
    /// passes the sampled map through without cloning it (and without
    /// touching it at all when the network is perfect). The borrowed
    /// variant serves the window-splitting path, where each split needs
    /// its own copy.
    fn effective_weights_owned(
        &self,
        sampled: WeightMap,
        items: &[approxiot_core::StreamItem],
    ) -> WeightMap {
        match self.strategy {
            Strategy::Whs { .. } => self.scale_for_loss(sampled, items),
            Strategy::Srs => {
                let mut w = WeightMap::new();
                for item in items {
                    w.set(item.stratum, self.srs_scale);
                }
                w
            }
            Strategy::Native => {
                if self.loss_scale == 1.0 {
                    WeightMap::new()
                } else {
                    // Exact execution still loses frames in flight: give
                    // every delivered item the loss correction.
                    let mut w = WeightMap::new();
                    for item in items {
                        w.set(item.stratum, self.loss_scale);
                    }
                    w
                }
            }
            Strategy::Sketch(_) => {
                unreachable!("sketch roots answer from summaries, not items")
            }
        }
    }

    fn effective_weights(
        &self,
        sampled: &WeightMap,
        items: &[approxiot_core::StreamItem],
    ) -> WeightMap {
        match self.strategy {
            Strategy::Whs { .. } => self.scale_for_loss(sampled.clone(), items),
            _ => self.effective_weights_owned(WeightMap::new(), items),
        }
    }

    /// Divides the sampled weight of every stratum present in `items` by
    /// the delivery factor. Strata without an explicit entry (implicit
    /// weight 1) get one, so the correction reaches unsampled strata too.
    /// A no-op returning the map untouched on a perfect network.
    fn scale_for_loss(
        &self,
        mut weights: WeightMap,
        items: &[approxiot_core::StreamItem],
    ) -> WeightMap {
        if self.loss_scale == 1.0 {
            return weights;
        }
        let strata: std::collections::BTreeSet<StratumId> =
            items.iter().map(|i| i.stratum).collect();
        for stratum in strata {
            weights.set(stratum, weights.get(stratum) * self.loss_scale);
        }
        weights
    }

    /// The node-level Horvitz–Thompson rescale (fleet churn only): divides
    /// every stratum weight by the window's effective inclusion factor —
    /// the expected delivered weight per pushed item, built by the engine
    /// from per-sender path delivery factors over the leaves actually
    /// alive that window. The `loss_scale` already applied at ingest is
    /// part of the factor, so the combined multiplier per stratum is
    /// exactly `1 / factor(window, stratum)` relative to the raw sampled
    /// weights; with every node healthy the factor equals the run-global
    /// delivery factor and the correction cancels. Strata whose factor is
    /// zero (nothing could have arrived) are left untouched — there is no
    /// unbiased extrapolation from an empty stratum.
    fn rescale_for_inclusion(&self, window: WindowId, outputs: &mut [WhsOutput]) {
        let Some(inclusion) = &self.inclusion else {
            return;
        };
        let map = inclusion
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(tallies) = map.get(&window) else {
            return;
        };
        for output in outputs {
            let strata: std::collections::BTreeSet<StratumId> =
                output.sample.iter().map(|i| i.stratum).collect();
            for stratum in strata {
                let Some(tally) = tallies.get(&stratum) else {
                    continue;
                };
                let factor = tally.factor();
                if factor <= 0.0 {
                    continue;
                }
                let correction = 1.0 / (self.loss_scale * factor);
                output
                    .weights
                    .set(stratum, output.weights.get(stratum) * correction);
            }
        }
    }

    /// Advances the event-time watermark, closing and answering every
    /// window that ended at or before it.
    pub fn advance_watermark(&mut self, watermark_nanos: u64) -> Vec<WindowResult> {
        if matches!(self.strategy, Strategy::Sketch(_)) {
            let closed = self.summaries.drain_closed(watermark_nanos);
            return closed
                .into_iter()
                .map(|(id, parts)| self.answer_summaries(id, parts))
                .collect();
        }
        let closed = self.buffer.drain_closed(watermark_nanos);
        closed
            .into_iter()
            .map(|(id, outputs)| self.answer(id, outputs))
            .collect()
    }

    /// Flushes all remaining windows (end of stream).
    pub fn flush(&mut self) -> Vec<WindowResult> {
        if matches!(self.strategy, Strategy::Sketch(_)) {
            let all = self.summaries.drain_all();
            return all
                .into_iter()
                .map(|(id, parts)| self.answer_summaries(id, parts))
                .collect();
        }
        let all = self.buffer.drain_all();
        all.into_iter()
            .map(|(id, outputs)| self.answer(id, outputs))
            .collect()
    }

    /// The per-stratum variant of the primary query, for the result's
    /// `per_stratum` field.
    fn per_stratum_spec(&self) -> QuerySpec {
        match self.primary {
            Query::Sum => QuerySpec::SumPerStratum,
            Query::Mean => QuerySpec::MeanPerStratum,
            Query::Count => QuerySpec::CountPerStratum,
        }
    }

    /// Answers one window from merged summaries — the sketch strategy's
    /// counterpart of [`RootNode::answer`]. SUM/MEAN/COUNT come out of
    /// the exact moment accumulators (variance 0), so `count_hat` is the
    /// true window count and completeness is exact.
    fn answer_summaries(&mut self, window: WindowId, parts: Vec<StratumSummaries>) -> WindowResult {
        let mut parts = parts.into_iter();
        // analysis: allow(P1, reason = "flush only drains windows that ingested at least one summary")
        let mut merged = parts.next().expect("drained windows are never empty");
        for part in parts {
            merged.merge(&part);
        }
        let queries = self.queries.run_summaries(&merged);
        let estimate = queries
            .get(QuerySpec::from(self.primary))
            .and_then(QueryValue::scalar)
            .copied()
            .unwrap_or_else(|| match self.primary {
                Query::Sum => merged.sum_estimate(),
                Query::Mean => merged.mean_estimate(),
                Query::Count => merged.count_estimate(),
            });
        let per_stratum = queries
            .per_stratum(self.per_stratum_spec())
            .cloned()
            .unwrap_or_else(|| match self.primary {
                Query::Sum => merged.sum_per_stratum(),
                Query::Mean => merged.mean_per_stratum(),
                Query::Count => merged.count_per_stratum(),
            });
        // What the root actually holds for the window: retained sketch
        // entries plus heavy-hitter counters.
        let sampled_items = merged
            .strata()
            .values()
            .map(|s| s.sketch.len())
            .sum::<usize>()
            + merged.heavy().entries().len();
        self.emitted += 1;
        let scheme = self.summaries.scheme();
        let dropped_late = self.dropped_late - self.dropped_late_reported;
        self.dropped_late_reported = self.dropped_late;
        WindowResult {
            window,
            start_nanos: scheme.start_of(window),
            end_nanos: scheme.end_of(window),
            estimate,
            per_stratum,
            queries,
            sampled_items,
            count_hat: merged.count() as f64,
            completeness: 1.0,
            dropped_late,
        }
    }

    fn answer(&mut self, window: WindowId, mut outputs: Vec<WhsOutput>) -> WindowResult {
        self.rescale_for_inclusion(window, &mut outputs);
        let theta: ThetaStore = outputs.into_iter().collect();
        let queries = self.queries.run(&theta);
        // Reuse the registered answers for the result's primary fields;
        // only compute them separately when the set doesn't cover them.
        let estimate = queries
            .get(QuerySpec::from(self.primary))
            .and_then(QueryValue::scalar)
            .copied()
            .unwrap_or_else(|| self.primary.run(&theta));
        let per_stratum = queries
            .per_stratum(self.per_stratum_spec())
            .cloned()
            .unwrap_or_else(|| self.primary.run_per_stratum(&theta));
        self.emitted += 1;
        let scheme = self.buffer.scheme();
        // Late drops are attributed to the result emitted after they
        // happened (their own window is already gone by definition).
        let dropped_late = self.dropped_late - self.dropped_late_reported;
        self.dropped_late_reported = self.dropped_late;
        WindowResult {
            window,
            start_nanos: scheme.start_of(window),
            end_nanos: scheme.end_of(window),
            estimate,
            per_stratum,
            queries,
            sampled_items: theta.sampled_items(),
            count_hat: theta.count_estimate(),
            completeness: 1.0,
            dropped_late,
        }
    }

    /// Number of window results emitted so far.
    pub fn windows_emitted(&self) -> u64 {
        self.emitted
    }

    /// Total items dropped for arriving past the allowed-lateness horizon.
    pub fn dropped_late(&self) -> u64 {
        self.dropped_late
    }

    /// Items received (pre-sampling) by the root.
    pub fn items_in(&self) -> u64 {
        self.sampler.items_in()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_core::StreamItem;

    const SEC: u64 = 1_000_000_000;

    fn cfg(strategy: Strategy, fraction: f64, overall: f64) -> RootConfig {
        RootConfig {
            strategy,
            fraction,
            overall_fraction: overall,
            window: Duration::from_secs(1),
            queries: QuerySet::single(Query::Sum),
            seed: 7,
            delivery_factor: 1.0,
            allowed_lateness: Duration::ZERO,
        }
    }

    fn items(stratum: u32, n: usize, value: f64, ts: u64) -> Batch {
        Batch::from_items(
            (0..n)
                .map(|k| StreamItem::with_meta(StratumId::new(stratum), value, k as u64, ts))
                .collect(),
        )
    }

    #[test]
    fn unsampled_root_is_exact() {
        let mut root = RootNode::new(cfg(Strategy::whs(), 1.0, 1.0)).expect("valid");
        root.ingest(&items(0, 10, 2.0, 100));
        let results = root.advance_watermark(SEC);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].estimate.value, 20.0);
        assert_eq!(results[0].estimate.variance, 0.0);
        assert_eq!(results[0].count_hat, 10.0);
        assert_eq!(root.windows_emitted(), 1);
    }

    #[test]
    fn watermark_only_closes_finished_windows() {
        let mut root = RootNode::new(cfg(Strategy::whs(), 1.0, 1.0)).expect("valid");
        root.ingest(&items(0, 1, 1.0, 100)); // window 0
        root.ingest(&items(0, 1, 1.0, SEC + 100)); // window 1
        let r = root.advance_watermark(SEC);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].window, 0);
        let rest = root.flush();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].window, 1);
    }

    #[test]
    fn ingest_mut_consumes_native_batches_without_cloning() {
        let mut root = RootNode::new(cfg(Strategy::Native, 1.0, 1.0)).expect("valid");
        let mut batch = items(0, 10, 2.0, 100);
        root.ingest_mut(&mut batch);
        assert!(batch.is_empty(), "native root takes the items it owns");
        let results = root.advance_watermark(SEC);
        assert_eq!(results[0].estimate.value, 20.0);
        assert_eq!(results[0].count_hat, 10.0);
    }

    #[test]
    fn ingest_mut_matches_ingest_for_whs() {
        let mut by_ref = RootNode::new(cfg(Strategy::whs(), 0.5, 0.5)).expect("valid");
        let mut by_mut = RootNode::new(cfg(Strategy::whs(), 0.5, 0.5)).expect("valid");
        let batch = items(0, 200, 1.0, 100);
        by_ref.ingest(&batch);
        let mut owned = batch.clone();
        by_mut.ingest_mut(&mut owned);
        assert_eq!(owned.len(), 200, "WHS root samples from, not consumes");
        let a = by_ref.advance_watermark(SEC);
        let b = by_mut.advance_watermark(SEC);
        assert_eq!(a[0].estimate.value, b[0].estimate.value);
        assert_eq!(a[0].count_hat, b[0].count_hat);
    }

    #[test]
    fn batch_spanning_windows_is_split() {
        let mut root = RootNode::new(cfg(Strategy::whs(), 1.0, 1.0)).expect("valid");
        let mut batch = items(0, 1, 5.0, 100);
        batch.extend(items(0, 1, 7.0, SEC + 100).items);
        root.ingest(&batch);
        let results = root.advance_watermark(2 * SEC);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].estimate.value, 5.0);
        assert_eq!(results[1].estimate.value, 7.0);
    }

    #[test]
    fn root_applies_its_own_sampling() {
        let mut root = RootNode::new(cfg(Strategy::whs(), 0.1, 0.1)).expect("valid");
        root.ingest(&items(0, 1000, 1.0, 100));
        let results = root.advance_watermark(SEC);
        assert_eq!(results[0].sampled_items, 100);
        // The estimate still reconstructs the original count.
        assert!((results[0].count_hat - 1000.0).abs() < 1e-9);
        assert!((results[0].estimate.value - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn srs_root_scales_by_inverse_fraction() {
        let mut root = RootNode::new(cfg(Strategy::Srs, 0.5, 0.5)).expect("valid");
        root.ingest(&items(0, 10_000, 2.0, 100));
        let results = root.advance_watermark(SEC);
        let est = results[0].estimate.value;
        let truth = 20_000.0;
        assert!(
            (est - truth).abs() / truth < 0.1,
            "estimate {est} vs {truth}"
        );
    }

    #[test]
    fn native_root_reports_exact_values() {
        let mut root = RootNode::new(cfg(Strategy::Native, 1.0, 1.0)).expect("valid");
        root.ingest(&items(0, 123, 3.0, 100));
        let results = root.advance_watermark(SEC);
        assert_eq!(results[0].estimate.value, 369.0);
        assert_eq!(results[0].estimate.variance, 0.0);
    }

    #[test]
    fn per_stratum_estimates_present() {
        let mut root = RootNode::new(cfg(Strategy::whs(), 1.0, 1.0)).expect("valid");
        root.ingest(&items(0, 2, 1.0, 100));
        root.ingest(&items(1, 3, 10.0, 100));
        let results = root.advance_watermark(SEC);
        assert_eq!(results[0].per_stratum.len(), 2);
        assert_eq!(results[0].per_stratum[&StratumId::new(1)].value, 30.0);
    }

    #[test]
    fn empty_windows_produce_no_results() {
        let mut root = RootNode::new(cfg(Strategy::whs(), 1.0, 1.0)).expect("valid");
        assert!(root.advance_watermark(100 * SEC).is_empty());
        assert!(root.flush().is_empty());
    }

    #[test]
    fn error_bound_scales_with_confidence() {
        let mut root = RootNode::new(cfg(Strategy::whs(), 0.2, 0.2)).expect("valid");
        // Mixed values so the sample variance is non-zero.
        let batch = Batch::from_items(
            (0..500)
                .map(|k| StreamItem::with_meta(StratumId::new(0), (k % 10) as f64, k as u64, 100))
                .collect(),
        );
        root.ingest(&batch);
        let results = root.advance_watermark(SEC);
        let r = &results[0];
        assert!(r.error_bound(Confidence::P68) < r.error_bound(Confidence::P95));
        assert!(r.error_bound(Confidence::P95) < r.error_bound(Confidence::P997));
        assert!(r.error_bound(Confidence::P95) > 0.0);
    }

    #[test]
    fn rejects_invalid_overall_fraction() {
        assert!(RootNode::new(cfg(Strategy::Srs, 0.5, 0.0)).is_err());
    }

    #[test]
    #[should_panic(expected = "delivery factor must be finite")]
    fn rejects_non_positive_delivery_factor() {
        let mut config = cfg(Strategy::whs(), 1.0, 1.0);
        config.delivery_factor = 0.0;
        let _ = RootNode::new(config);
    }

    #[test]
    fn loss_rescale_extrapolates_lost_contributions() {
        // Half the frames were lost in flight (delivery factor 0.5): the
        // surviving half, rescaled, still reconstructs the full total.
        for strategy in [Strategy::whs(), Strategy::Srs, Strategy::Native] {
            let mut config = cfg(strategy, 1.0, 1.0);
            config.delivery_factor = 0.5;
            let mut root = RootNode::new(config).expect("valid");
            // 10 of 20 original items actually arrive.
            root.ingest(&items(0, 10, 2.0, 100));
            let results = root.advance_watermark(SEC);
            assert_eq!(
                results[0].estimate.value,
                40.0,
                "{} under 50% loss",
                strategy.label()
            );
            assert_eq!(results[0].count_hat, 20.0);
        }
    }

    #[test]
    fn loss_rescale_keeps_mean_invariant() {
        // MEAN is a ratio: the uniform weight rescale must cancel out.
        let mut config = cfg(Strategy::whs(), 1.0, 1.0);
        config.delivery_factor = 0.8;
        config.queries = QuerySet::single(Query::Mean);
        let mut root = RootNode::new(config).expect("valid");
        root.ingest(&items(0, 8, 5.0, 100));
        let results = root.advance_watermark(SEC);
        assert!((results[0].estimate.value - 5.0).abs() < 1e-12);
    }

    #[test]
    fn net_duplication_rescales_weights_below_one() {
        // Delivery factor above 1 (duplication dominates): delivered items
        // are over-represented and must be scaled *down*.
        let mut config = cfg(Strategy::whs(), 1.0, 1.0);
        config.delivery_factor = 2.0;
        let mut root = RootNode::new(config).expect("valid");
        // Every item delivered twice: 5 originals arrive as 10 copies.
        root.ingest(&items(0, 10, 3.0, 100));
        let results = root.advance_watermark(SEC);
        assert_eq!(results[0].estimate.value, 15.0);
        assert_eq!(results[0].count_hat, 5.0);
    }

    #[test]
    fn late_arrivals_are_dropped_and_attributed() {
        let mut root = RootNode::new(cfg(Strategy::whs(), 1.0, 1.0)).expect("valid");
        root.ingest(&items(0, 4, 1.0, 100));
        let first = root.advance_watermark(SEC);
        assert_eq!(first[0].dropped_late, 0);
        // Window 0 is answered; a straggler for it must not resurrect it.
        root.ingest(&items(0, 3, 1.0, 200));
        root.ingest(&items(0, 2, 1.0, SEC + 100));
        assert_eq!(root.dropped_late(), 3);
        let rest = root.flush();
        assert_eq!(rest.len(), 1, "no duplicate window 0 result");
        assert_eq!(rest[0].window, 1);
        assert_eq!(rest[0].dropped_late, 3, "attributed to the next result");
    }

    #[test]
    fn allowed_lateness_admits_stragglers() {
        let mut config = cfg(Strategy::whs(), 1.0, 1.0);
        config.allowed_lateness = Duration::from_millis(500);
        let mut root = RootNode::new(config).expect("valid");
        root.ingest(&items(0, 4, 1.0, 100));
        // Watermark inside the lateness horizon: window 0 stays open.
        assert!(root.advance_watermark(SEC + 400_000_000).is_empty());
        root.ingest(&items(0, 1, 1.0, 200));
        assert_eq!(root.dropped_late(), 0);
        let results = root.advance_watermark(SEC + 500_000_000);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].estimate.value, 5.0, "straggler included");
    }

    #[test]
    fn multi_query_windows_answer_every_registered_query() {
        use crate::query::QuerySpec;
        let mut config = cfg(Strategy::whs(), 1.0, 1.0);
        config.queries = QuerySet::new()
            .with(QuerySpec::Sum)
            .with(QuerySpec::Quantile(0.5))
            .with(QuerySpec::TopK(2));
        let mut root = RootNode::new(config).expect("valid");
        root.ingest(&items(0, 9, 1.0, 100));
        root.ingest(&items(1, 1, 50.0, 100));
        let results = root.advance_watermark(SEC);
        let r = &results[0];
        assert_eq!(r.queries.len(), 3);
        assert_eq!(r.estimate.value, 59.0, "primary estimate is the SUM");
        let median = r.queries.quantile(0.5).expect("non-empty window");
        assert_eq!(median.value, 1.0);
        let top = r.queries.top_k(2).expect("top-k answer");
        assert_eq!(top[0].0, StratumId::new(1), "heavy stratum ranks first");
        assert_eq!(top[0].1.value, 50.0);
        assert_eq!(top[1].1.value, 9.0);
    }

    #[test]
    fn sketch_root_merges_summaries_and_answers_exact_moments() {
        use crate::query::QuerySpec;
        use approxiot_core::{SketchConfig, StratumSummaries};
        let mut config = cfg(Strategy::sketch(), 1.0, 1.0);
        config.queries = QuerySet::new()
            .with(QuerySpec::Sum)
            .with(QuerySpec::Count)
            .with(QuerySpec::Quantile(0.5))
            .with(QuerySpec::TopK(1));
        let mut root = RootNode::new(config).expect("valid");
        let sketch = SketchConfig::default();
        // Two senders contribute to window 0, one to window 1.
        let mut a = StratumSummaries::new(sketch, 9);
        for i in 0..10u64 {
            a.observe(StratumId::new(0), i, 1.0);
        }
        let mut b = StratumSummaries::new(sketch, 9);
        b.observe(StratumId::new(1), 100, 50.0);
        let mut c = StratumSummaries::new(sketch, 9);
        c.observe(StratumId::new(0), 200, 7.0);
        root.ingest_summaries(vec![(0, a), (1, c)]);
        root.ingest_summaries(vec![(0, b)]);
        let results = root.advance_watermark(SEC);
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.window, 0);
        assert_eq!(r.estimate.value, 60.0, "moments merge exactly");
        assert_eq!(r.estimate.variance, 0.0);
        assert_eq!(r.count_hat, 11.0);
        assert_eq!(r.queries.count().map(|e| e.value), Some(11.0));
        assert_eq!(
            r.queries.top_k(1).map(|top| top[0].0),
            Some(StratumId::new(1))
        );
        assert!(r.queries.quantile(0.5).is_some());
        assert_eq!(r.per_stratum[&StratumId::new(1)].value, 50.0);
        assert!(r.sampled_items > 0);
        let rest = root.flush();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].estimate.value, 7.0);
        assert_eq!(root.windows_emitted(), 2);
    }

    #[test]
    fn sketch_root_drops_late_summaries_with_exact_counts() {
        use approxiot_core::{SketchConfig, StratumSummaries};
        let mut root = RootNode::new(cfg(Strategy::sketch(), 1.0, 1.0)).expect("valid");
        let sketch = SketchConfig::default();
        let mut w0 = StratumSummaries::new(sketch, 9);
        for i in 0..4u64 {
            w0.observe(StratumId::new(0), i, 1.0);
        }
        root.ingest_summaries(vec![(0, w0.clone())]);
        let first = root.advance_watermark(SEC);
        assert_eq!(first[0].dropped_late, 0);
        // Window 0 is answered; a straggling summary for it is dropped
        // with its exact item count tallied.
        let mut w1 = StratumSummaries::new(sketch, 9);
        w1.observe(StratumId::new(0), 10, 2.0);
        root.ingest_summaries(vec![(0, w0), (1, w1)]);
        assert_eq!(root.dropped_late(), 4);
        let rest = root.flush();
        assert_eq!(rest.len(), 1, "no duplicate window 0 result");
        assert_eq!(rest[0].window, 1);
        assert_eq!(rest[0].dropped_late, 4);
    }

    #[test]
    fn query_set_without_scalar_still_produces_sum_primary() {
        use crate::query::QuerySpec;
        let mut config = cfg(Strategy::whs(), 1.0, 1.0);
        config.queries = QuerySet::new().with(QuerySpec::Quantile(0.25));
        let mut root = RootNode::new(config).expect("valid");
        assert_eq!(root.query(), Query::Sum);
        assert_eq!(root.queries().specs().len(), 1);
        root.ingest(&items(0, 4, 2.0, 100));
        let results = root.advance_watermark(SEC);
        assert_eq!(results[0].estimate.value, 8.0);
        assert_eq!(results[0].queries.len(), 1);
    }
}
