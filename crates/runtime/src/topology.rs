//! The topology-first description of an ApproxIoT deployment: one builder
//! for an arbitrary-depth, heterogeneous edge tree that both execution
//! engines (the virtual-time [`crate::SimTree`] simulation and the
//! threaded [`crate::pipeline`]) consume unchanged.
//!
//! The paper evaluates one fixed shape — 8 sources → 4 edge → 2 edge →
//! root — but its design is a *logical tree of arbitrary edge hops* whose
//! weights multiply hop by hop. [`Topology`] captures that general shape:
//!
//! * any number of edge **layers**, each with its own fan-in (node count),
//!   optional per-layer [`Strategy`] override and §III-E worker shards;
//! * per-hop **links** (propagation delay + uplink capacity) for the WAN
//!   emulation;
//! * a depth-aware [`FractionSplit`] dividing the end-to-end sampling
//!   fraction across every sampling stage (all edge layers plus the root).
//!
//! ```
//! use approxiot_runtime::{LayerSpec, Strategy, Topology};
//! use std::time::Duration;
//!
//! // An asymmetric 4-layer tree: 5 sources → 3 edge → 2 edge → root.
//! let topology = Topology::builder()
//!     .sources(5)
//!     .layer(LayerSpec::new(3).delay(Duration::from_millis(10)))
//!     .layer(LayerSpec::new(2).delay(Duration::from_millis(20)))
//!     .root_delay(Duration::from_millis(40))
//!     .strategy(Strategy::whs())
//!     .overall_fraction(0.2)
//!     .build()
//!     .unwrap();
//! assert_eq!(topology.depth(), 3); // three sampling stages
//! assert_eq!(topology.hops(), 3);  // sources→L1, L1→L2, L2→root
//! ```

use crate::churn::{self, ChurnSchedule, NodeDisposition};
use crate::node::Strategy;
use approxiot_core::{BudgetError, SamplingBudget};
use approxiot_net::ImpairmentSpec;
use std::time::Duration;

/// How the end-to-end sampling fraction is divided across the sampling
/// stages (every edge layer plus the root).
///
/// The paper leaves per-node budgets to the analyst (Figure 4's "sample
/// sizes" arrows). Two natural policies cover the evaluation:
///
/// * [`FractionSplit::Even`] — every stage keeps the `depth`-th root of
///   the overall fraction, exercising truly hierarchical sampling
///   (weights multiply across hops).
/// * [`FractionSplit::LeafHeavy`] — the whole budget is spent at the first
///   edge layer; later stages forward everything. This reproduces the
///   paper's Figure 7 claim that "a sampling fraction of 10% means the
///   system only requires 10% of the total capacity" on *every* WAN link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FractionSplit {
    /// Equal share per stage (`overall^(1/depth)` each).
    #[default]
    Even,
    /// Entire budget at the first edge layer; every later stage keeps
    /// everything.
    LeafHeavy,
}

impl FractionSplit {
    /// The per-stage fractions for a tree of `depth` sampling stages,
    /// compounding to `overall`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn fractions(self, overall: f64, depth: usize) -> Vec<f64> {
        assert!(depth > 0, "a tree has at least one sampling stage");
        match self {
            FractionSplit::Even => {
                let f = overall.powf(1.0 / depth as f64).min(1.0);
                vec![f; depth]
            }
            FractionSplit::LeafHeavy => {
                let mut fractions = vec![1.0; depth];
                fractions[0] = overall.min(1.0);
                fractions
            }
        }
    }

    /// The per-stage fractions `[leaf, mid, root]` for the paper's
    /// three-stage tree (the historical fixed-depth API).
    pub fn stage_fractions(self, overall: f64) -> [f64; 3] {
        let f = self.fractions(overall, 3);
        [f[0], f[1], f[2]]
    }
}

/// One WAN hop: the link feeding a layer (or the root) from the layer
/// below it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation delay.
    pub delay: Duration,
    /// Uplink capacity in bytes/second charged per *sending* node
    /// (`None` = unlimited).
    pub capacity_bytes_per_sec: Option<u64>,
    /// Deterministic fault injection on this hop (loss, jitter,
    /// duplication, bounded reorder). [`ImpairmentSpec::none`] — the
    /// default — leaves the hop perfect and changes nothing.
    pub impairment: ImpairmentSpec,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            delay: Duration::ZERO,
            capacity_bytes_per_sec: None,
            impairment: ImpairmentSpec::none(),
        }
    }
}

/// One edge layer of the tree: its fan-in and the link feeding it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSpec {
    /// Number of edge nodes in this layer.
    pub nodes: usize,
    /// Per-layer strategy override (`None` = the topology default).
    pub strategy: Option<Strategy>,
    /// §III-E worker shards per node (1 = sample on the node thread).
    pub workers: usize,
    /// The link feeding this layer from the layer below (sources for the
    /// first layer).
    pub link: LinkSpec,
}

impl LayerSpec {
    /// A layer of `nodes` edge nodes with default link and strategy.
    pub fn new(nodes: usize) -> Self {
        LayerSpec {
            nodes,
            strategy: None,
            workers: 1,
            link: LinkSpec::default(),
        }
    }

    /// Overrides the topology-wide strategy for this layer.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Samples each node's batches on `workers` parallel shards.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// One-way propagation delay of the link feeding this layer.
    pub fn delay(mut self, delay: Duration) -> Self {
        self.link.delay = delay;
        self
    }

    /// Uplink capacity (bytes/second) charged per sender on the link
    /// feeding this layer.
    pub fn capacity(mut self, bytes_per_sec: u64) -> Self {
        self.link.capacity_bytes_per_sec = Some(bytes_per_sec);
        self
    }

    /// Fault injection (loss/jitter/duplication/reorder) on the link
    /// feeding this layer.
    pub fn impairment(mut self, impairment: ImpairmentSpec) -> Self {
        self.link.impairment = impairment;
        self
    }
}

/// Wire-byte accounting per hop of an arbitrary-depth tree.
///
/// `hops()[0]` is the sources → first-layer traffic (always unsampled);
/// each later entry is the traffic into the next sampling stage, ending
/// with the last-edge-layer → root hop.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HopBytes {
    bytes: Vec<u64>,
}

impl HopBytes {
    /// Zeroed accounting for a tree with `hops` hops.
    pub fn new(hops: usize) -> Self {
        HopBytes {
            bytes: vec![0; hops],
        }
    }

    /// Per-hop byte counts, source-side first.
    pub fn hops(&self) -> &[u64] {
        &self.bytes
    }

    /// Adds `bytes` to hop `hop`.
    pub fn add(&mut self, hop: usize, bytes: u64) {
        self.bytes[hop] += bytes;
    }

    /// Bytes on the first hop (sources → first layer, pre-sampling).
    pub fn source_bytes(&self) -> u64 {
        self.bytes.first().copied().unwrap_or(0)
    }

    /// Bytes crossing the WAN segments that sampling can save on
    /// (every hop past the first).
    pub fn sampled_wire_bytes(&self) -> u64 {
        self.bytes.iter().skip(1).sum()
    }

    /// Total bytes across all hops.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

impl From<Vec<u64>> for HopBytes {
    fn from(bytes: Vec<u64>) -> Self {
        HopBytes { bytes }
    }
}

/// The full description of a deployment: edge layers, per-hop links, the
/// sampling strategy/fraction policy and windowing — everything both
/// engines need, in one place.
///
/// Build one with [`Topology::builder`] or [`Topology::paper`].
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    layers: Vec<LayerSpec>,
    root_link: LinkSpec,
    strategy: Strategy,
    root_strategy: Option<Strategy>,
    overall_fraction: f64,
    split: FractionSplit,
    window: Duration,
    allowed_lateness: Duration,
    sources: usize,
    seed: u64,
    churn: ChurnSchedule,
}

impl Topology {
    /// Starts a builder with the defaults of [`TopologyBuilder`].
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// The paper's four-layer topology (8 sources → 4 → 2 → root) running
    /// ApproxIoT at `overall_fraction` with the paper's one-way WAN delays
    /// (10/20/40 ms) scaled by `delay_scale`.
    pub fn paper(overall_fraction: f64, delay_scale: f64) -> Self {
        let ms = |m: f64| Duration::from_secs_f64(m * delay_scale / 1000.0);
        Topology::builder()
            .sources(8)
            .layer(LayerSpec::new(4).delay(ms(10.0)))
            .layer(LayerSpec::new(2).delay(ms(20.0)))
            .root_delay(ms(40.0))
            .strategy(Strategy::whs())
            .overall_fraction(overall_fraction)
            .window(Duration::from_secs(1))
            .seed(0x10D5)
            .build()
            // analysis: allow(P1, reason = "builder inputs are the fixed paper constants; only the fraction varies and callers validate it")
            .expect("paper fraction validated by caller")
    }

    /// The edge layers, source side first.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Number of sampling stages: every edge layer plus the root.
    pub fn depth(&self) -> usize {
        self.layers.len() + 1
    }

    /// Number of WAN hops: sources → first layer, one per later layer,
    /// and the final hop into the root.
    pub fn hops(&self) -> usize {
        self.layers.len() + 1
    }

    /// Declared source count (first-hop producers).
    pub fn sources(&self) -> usize {
        self.sources
    }

    /// The default sampling strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The strategy layer `layer` runs (its override or the default).
    pub fn layer_strategy(&self, layer: usize) -> Strategy {
        self.layers[layer].strategy.unwrap_or(self.strategy)
    }

    /// The strategy the root runs (its override or the default).
    pub fn root_strategy(&self) -> Strategy {
        self.root_strategy.unwrap_or(self.strategy)
    }

    /// End-to-end sampling fraction.
    pub fn overall_fraction(&self) -> f64 {
        self.overall_fraction
    }

    /// How the fraction divides across stages.
    pub fn split(&self) -> FractionSplit {
        self.split
    }

    /// The per-stage fractions (edge layers first, root last) compounding
    /// to the overall fraction under this topology's split.
    pub fn stage_fractions(&self) -> Vec<f64> {
        self.split.fractions(self.overall_fraction, self.depth())
    }

    /// The computation window at the root (and WHS edge-buffering
    /// interval).
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Base RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The link feeding edge layer `layer` (`0` = the source uplinks).
    pub fn layer_link(&self, layer: usize) -> LinkSpec {
        self.layers[layer].link
    }

    /// The link feeding the root from the last edge layer.
    pub fn root_link(&self) -> LinkSpec {
        self.root_link
    }

    /// The link feeding hop `hop` (`0..hops()`), root hop last.
    pub fn hop_link(&self, hop: usize) -> LinkSpec {
        if hop < self.layers.len() {
            self.layers[hop].link
        } else {
            self.root_link
        }
    }

    /// Sum of all one-way hop delays (the minimum source→root propagation
    /// time).
    pub fn total_delay(&self) -> Duration {
        (0..self.hops()).map(|h| self.hop_link(h).delay).sum()
    }

    /// How long the root keeps each window open past its end for
    /// jitter-delayed arrivals (wall-clock engine only; virtual time has
    /// no late arrivals).
    pub fn allowed_lateness(&self) -> Duration {
        self.allowed_lateness
    }

    /// The fault-injection spec of hop `hop` (`0..hops()`, root hop last).
    pub fn hop_impairment(&self, hop: usize) -> ImpairmentSpec {
        self.hop_link(hop).impairment
    }

    /// Returns `true` when any hop carries a non-trivial impairment spec.
    pub fn has_impairment(&self) -> bool {
        (0..self.hops()).any(|h| !self.hop_impairment(h).is_noop())
    }

    /// Expected delivered copies per source item across every hop:
    /// `Π_h (1 − loss_h) · (1 + duplicate_h)`. Every frame crosses each
    /// hop independently, so an item's end-to-end survival compounds per
    /// hop regardless of how sampling re-frames it. The root divides its
    /// stratum weights by this factor (Horvitz–Thompson under uniform
    /// random loss), keeping SUM/COUNT unbiased; exactly `1.0` when no
    /// hop is impaired.
    pub fn delivery_factor(&self) -> f64 {
        (0..self.hops())
            .map(|h| self.hop_impairment(h).delivery_factor())
            .product()
    }

    /// Expected delivered copies per item of source `source`, compounding
    /// the impairments of the specific links its items traverse
    /// (source → its leaf, then the parent chain up to the root).
    ///
    /// [`Topology::delivery_factor`] multiplies one impairment per hop,
    /// which silently assumes every sender on a hop is impaired alike;
    /// once churn makes senders on the same hop differ (replacement or
    /// degraded nodes), the root's Horvitz–Thompson rescale must weight
    /// each source by *its own path*. With today's per-hop (not
    /// per-link-instance) impairment specs the product is bitwise equal
    /// to `delivery_factor()` for every source, so consuming this is a
    /// strict refinement, not a behaviour change.
    pub fn path_delivery_factor(&self, source: usize) -> f64 {
        let mut factor = self.hop_impairment(0).delivery_factor();
        let mut index = source % self.layers[0].nodes;
        for layer in 0..self.layers.len() {
            factor *= self.hop_impairment(layer + 1).delivery_factor();
            index = self.parent_of(layer, index);
        }
        factor
    }

    /// The churn schedule (empty — a strict no-op — unless one was set
    /// via [`TopologyBuilder::churn`]).
    pub fn churn(&self) -> &ChurnSchedule {
        &self.churn
    }

    /// Returns `true` when the topology carries any churn events at all.
    pub fn has_churn(&self) -> bool {
        !self.churn.is_noop()
    }

    /// Whether every node on source `source`'s path to the root is
    /// processing during `interval` — `false` as soon as any node on the
    /// path is dark (down or silent) or crashes that interval, because
    /// the source's items can then never reach the root. Low-power nodes
    /// count as alive (they still forward a sample).
    pub fn source_path_alive(&self, source: usize, interval: u64) -> bool {
        let mut index = source % self.layers[0].nodes;
        for layer in 0..self.layers.len() {
            match self.churn.disposition(layer, index, interval) {
                NodeDisposition::Down | NodeDisposition::Crashed { .. } => return false,
                NodeDisposition::Active { .. } => {}
            }
            index = self.parent_of(layer, index);
        }
        true
    }

    /// The deterministic churn-stream seed of node `index` in edge layer
    /// `layer`, feeding replacement-node sampler seeds.
    ///
    /// A third odd multiplier keeps churn seeds disjoint from both
    /// [`Topology::node_seed`] sampler seeds and
    /// [`Topology::hop_impairment_seed`] fault streams.
    pub fn churn_seed(&self, layer: usize, index: usize) -> u64 {
        self.seed
            ^ (0xD6E8_FEB8_6659_FD93u64
                .wrapping_mul(layer as u64 + 1)
                .wrapping_add(index as u64))
    }

    /// The sampler seed of the `generation`-th replacement node in slot
    /// `(layer, index)` (generation 0 is the original node, which uses
    /// [`Topology::node_seed`]). Mixed through splitmix64 so adjacent
    /// generations decorrelate.
    pub fn replacement_seed(&self, layer: usize, index: usize, generation: u64) -> u64 {
        churn::replacement_seed(self.churn_seed(layer, index), generation)
    }

    /// The deterministic impairment-stream seed of sender `sender` on hop
    /// `hop` (source index for hop 0, the sending node's index after
    /// that).
    ///
    /// Like [`Topology::node_seed`], both engines derive the per-sender
    /// fault streams through this one function — and the downstream
    /// [`approxiot_net::Impairment`] mixes the result through splitmix64 —
    /// so a fixed-seed impaired run drops, duplicates and reorders the
    /// same frames on either engine. The multiplier differs from
    /// `node_seed`'s so fault streams never collide with sampler seeds.
    pub fn hop_impairment_seed(&self, hop: usize, sender: usize) -> u64 {
        self.seed
            ^ (0xC2B2_AE3D_27D4_EB4Fu64
                .wrapping_mul(hop as u64 + 1)
                .wrapping_add(sender as u64))
    }

    /// The deterministic RNG seed of node `index` in edge layer `layer`.
    ///
    /// Both engines derive per-node seeds through this single function, so
    /// a fixed-seed topology samples identically on either engine.
    pub fn node_seed(&self, layer: usize, index: usize) -> u64 {
        // A distinct odd multiplier per layer keeps node seeds disjoint
        // across layers and from the root without coordination.
        self.seed
            ^ (0x9E37_79B9_7F4A_7C15u64
                .wrapping_mul(layer as u64 + 1)
                .wrapping_add(index as u64))
    }

    /// The deterministic RNG seed of the root's sampler.
    pub fn root_seed(&self) -> u64 {
        self.node_seed(self.layers.len(), 0)
    }

    /// The deterministic seed of the summary sketches (sketch strategy
    /// only) — the fourth seed family, disjoint from the sampler,
    /// impairment and churn families by its own odd constant. Unlike
    /// [`Topology::node_seed`] it is **tree-wide**: KLL merge requires
    /// every node to hash items with the same seed, so one seed serves
    /// the whole topology (per-stratum sketches decorrelate through
    /// [`approxiot_core::stratum_sketch_seed`]).
    pub fn sketch_seed(&self) -> u64 {
        self.seed ^ 0xA24B_AED4_963E_E407
    }

    /// The sketch configuration, when the tree-wide strategy is
    /// [`Strategy::Sketch`].
    pub fn sketch_config(&self) -> Option<approxiot_core::SketchConfig> {
        match self.strategy {
            Strategy::Sketch(config) => Some(config),
            _ => None,
        }
    }

    /// The parent index (in layer `layer + 1`, or the root for the last
    /// layer) that node `index` of layer `layer` forwards to.
    pub fn parent_of(&self, layer: usize, index: usize) -> usize {
        match self.layers.get(layer + 1) {
            Some(next) => index % next.nodes,
            None => 0,
        }
    }
}

/// Builder for [`Topology`]; see the [module docs](self) for an example.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    layers: Vec<LayerSpec>,
    root_link: LinkSpec,
    strategy: Strategy,
    root_strategy: Option<Strategy>,
    overall_fraction: f64,
    split: FractionSplit,
    window: Duration,
    allowed_lateness: Duration,
    impair_all: Option<ImpairmentSpec>,
    sources: usize,
    seed: u64,
    churn: ChurnSchedule,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        TopologyBuilder {
            layers: Vec::new(),
            root_link: LinkSpec::default(),
            strategy: Strategy::whs(),
            root_strategy: None,
            overall_fraction: 1.0,
            split: FractionSplit::Even,
            window: Duration::from_secs(1),
            allowed_lateness: Duration::ZERO,
            impair_all: None,
            sources: 1,
            seed: 0,
            churn: ChurnSchedule::new(),
        }
    }
}

impl TopologyBuilder {
    /// Declares the number of first-hop sources.
    pub fn sources(mut self, sources: usize) -> Self {
        self.sources = sources;
        self
    }

    /// Appends one edge layer (source side first).
    pub fn layer(mut self, layer: LayerSpec) -> Self {
        self.layers.push(layer);
        self
    }

    /// Sets the link feeding the root.
    pub fn root_link(mut self, link: LinkSpec) -> Self {
        self.root_link = link;
        self
    }

    /// Sets the root link's one-way delay.
    pub fn root_delay(mut self, delay: Duration) -> Self {
        self.root_link.delay = delay;
        self
    }

    /// Sets fault injection on the link feeding the root.
    pub fn root_impairment(mut self, impairment: ImpairmentSpec) -> Self {
        self.root_link.impairment = impairment;
        self
    }

    /// Applies `impairment` to **every** hop that has no explicit spec of
    /// its own — the one-liner for uniform chaos sweeps.
    pub fn impair_all_hops(mut self, impairment: ImpairmentSpec) -> Self {
        self.impair_all = Some(impairment);
        self
    }

    /// Keeps each root window open for `lateness` past its end so
    /// jitter-delayed arrivals still count (wall-clock engine).
    pub fn allowed_lateness(mut self, lateness: Duration) -> Self {
        self.allowed_lateness = lateness;
        self
    }

    /// Overrides the root's sampling strategy.
    pub fn root_strategy(mut self, strategy: Strategy) -> Self {
        self.root_strategy = Some(strategy);
        self
    }

    /// Sets the default sampling strategy for every stage.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the end-to-end sampling fraction.
    pub fn overall_fraction(mut self, fraction: f64) -> Self {
        self.overall_fraction = fraction;
        self
    }

    /// Sets how the fraction divides across stages.
    pub fn split(mut self, split: FractionSplit) -> Self {
        self.split = split;
        self
    }

    /// Sets the computation window.
    pub fn window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Sets the base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a deterministic churn schedule (node outages, crashes,
    /// replacements, degradation) both engines honour identically; see
    /// [`crate::churn`]. An empty schedule is a strict no-op.
    pub fn churn(mut self, churn: ChurnSchedule) -> Self {
        self.churn = churn;
        self
    }

    /// Validates and builds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError`] for a fraction outside `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if no edge layer was added, a layer has zero nodes or zero
    /// workers, no sources were declared, or the churn schedule addresses
    /// a node outside the tree (or carries an empty range / bad scale).
    pub fn build(self) -> Result<Topology, BudgetError> {
        assert!(
            !self.layers.is_empty(),
            "a topology needs at least one edge layer"
        );
        assert!(self.sources > 0, "a topology needs at least one source");
        for (i, layer) in self.layers.iter().enumerate() {
            assert!(
                layer.nodes > 0,
                "edge layer {i} must have at least one node"
            );
            assert!(layer.workers > 0, "edge layer {i} workers must be positive");
        }
        SamplingBudget::new(self.overall_fraction)?;
        let node_counts: Vec<usize> = self.layers.iter().map(|l| l.nodes).collect();
        self.churn.validate(&node_counts);
        let mut layers = self.layers;
        let mut root_link = self.root_link;
        if let Some(spec) = self.impair_all {
            for layer in &mut layers {
                if layer.link.impairment.is_noop() {
                    layer.link.impairment = spec;
                }
            }
            if root_link.impairment.is_noop() {
                root_link.impairment = spec;
            }
        }
        Ok(Topology {
            layers,
            root_link,
            strategy: self.strategy,
            root_strategy: self.root_strategy,
            overall_fraction: self.overall_fraction,
            split: self.split,
            window: self.window,
            allowed_lateness: self.allowed_lateness,
            sources: self.sources,
            seed: self.seed,
            churn: self.churn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_compounds_for_any_depth() {
        for depth in 1..=6 {
            let fractions = FractionSplit::Even.fractions(0.1, depth);
            assert_eq!(fractions.len(), depth);
            let product: f64 = fractions.iter().product();
            assert!(
                (product - 0.1).abs() < 1e-12,
                "depth {depth}: product {product}"
            );
        }
    }

    #[test]
    fn leaf_heavy_split_spends_everything_up_front() {
        assert_eq!(
            FractionSplit::LeafHeavy.fractions(0.25, 4),
            vec![0.25, 1.0, 1.0, 1.0]
        );
        // The historical three-stage view agrees.
        assert_eq!(
            FractionSplit::LeafHeavy.stage_fractions(0.25),
            [0.25, 1.0, 1.0]
        );
    }

    #[test]
    fn three_stage_view_matches_generalized_split() {
        let [l, m, r] = FractionSplit::Even.stage_fractions(0.125);
        assert!((l - 0.5).abs() < 1e-12);
        assert!((l * m * r - 0.125).abs() < 1e-12);
    }

    #[test]
    fn paper_topology_matches_the_testbed() {
        let t = Topology::paper(0.2, 1.0);
        assert_eq!(t.sources(), 8);
        assert_eq!(t.layers().len(), 2);
        assert_eq!(t.layers()[0].nodes, 4);
        assert_eq!(t.layers()[1].nodes, 2);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.hops(), 3);
        assert_eq!(t.layer_link(0).delay, Duration::from_millis(10));
        assert_eq!(t.hop_link(1).delay, Duration::from_millis(20));
        assert_eq!(t.root_link().delay, Duration::from_millis(40));
        assert_eq!(t.total_delay(), Duration::from_millis(70));
        let fractions = t.stage_fractions();
        assert_eq!(fractions.len(), 3);
        assert!((fractions.iter().product::<f64>() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn node_seeds_are_distinct_across_layers_and_nodes() {
        let t = Topology::paper(0.5, 0.0);
        let mut seeds = std::collections::BTreeSet::new();
        for layer in 0..2 {
            for node in 0..4 {
                seeds.insert(t.node_seed(layer, node));
            }
        }
        seeds.insert(t.root_seed());
        assert_eq!(seeds.len(), 9, "no seed collisions");
    }

    #[test]
    fn per_layer_strategy_overrides_default() {
        let t = Topology::builder()
            .sources(2)
            .layer(LayerSpec::new(2).strategy(Strategy::Native))
            .layer(LayerSpec::new(1))
            .root_strategy(Strategy::Srs)
            .strategy(Strategy::whs())
            .build()
            .expect("valid");
        assert_eq!(t.layer_strategy(0), Strategy::Native);
        assert_eq!(t.layer_strategy(1), Strategy::whs());
        assert_eq!(t.root_strategy(), Strategy::Srs);
    }

    #[test]
    fn parent_routing_is_modular() {
        let t = Topology::builder()
            .sources(5)
            .layer(LayerSpec::new(3))
            .layer(LayerSpec::new(2))
            .build()
            .expect("valid");
        assert_eq!(t.parent_of(0, 0), 0);
        assert_eq!(t.parent_of(0, 1), 1);
        assert_eq!(t.parent_of(0, 2), 0);
        // The last layer forwards to the single root.
        assert_eq!(t.parent_of(1, 1), 0);
    }

    #[test]
    fn hop_bytes_accounts_per_link() {
        let mut bytes = HopBytes::new(4);
        bytes.add(0, 1000);
        bytes.add(1, 300);
        bytes.add(2, 90);
        bytes.add(3, 27);
        assert_eq!(bytes.source_bytes(), 1000);
        assert_eq!(bytes.sampled_wire_bytes(), 417);
        assert_eq!(bytes.total(), 1417);
        assert_eq!(bytes.hops(), &[1000, 300, 90, 27]);
    }

    #[test]
    fn impairment_rides_on_hops_and_compounds_delivery() {
        let chaos = ImpairmentSpec::none().loss(0.1);
        let dup = ImpairmentSpec::none().duplicate(0.5);
        let t = Topology::builder()
            .sources(4)
            .layer(LayerSpec::new(2).impairment(chaos))
            .layer(LayerSpec::new(1))
            .root_impairment(dup)
            .build()
            .expect("valid");
        assert!(t.has_impairment());
        assert_eq!(t.hop_impairment(0), chaos);
        assert!(t.hop_impairment(1).is_noop());
        assert_eq!(t.hop_impairment(2), dup);
        assert!((t.delivery_factor() - 0.9 * 1.5).abs() < 1e-12);
        // An unimpaired topology reports a clean factor of exactly 1.
        let clean = Topology::paper(0.2, 1.0);
        assert!(!clean.has_impairment());
        assert_eq!(clean.delivery_factor(), 1.0);
    }

    #[test]
    fn impair_all_hops_respects_explicit_specs() {
        let uniform = ImpairmentSpec::none().loss(0.05);
        let own = ImpairmentSpec::none().loss(0.2);
        let t = Topology::builder()
            .sources(2)
            .layer(LayerSpec::new(2))
            .layer(LayerSpec::new(1).impairment(own))
            .impair_all_hops(uniform)
            .build()
            .expect("valid");
        assert_eq!(t.hop_impairment(0), uniform);
        assert_eq!(t.hop_impairment(1), own, "explicit spec wins");
        assert_eq!(t.hop_impairment(2), uniform, "root hop covered too");
    }

    #[test]
    fn impairment_seeds_are_distinct_per_hop_sender_and_from_samplers() {
        let t = Topology::paper(0.5, 0.0);
        let mut seeds = std::collections::BTreeSet::new();
        for hop in 0..t.hops() {
            for sender in 0..8 {
                seeds.insert(t.hop_impairment_seed(hop, sender));
            }
        }
        let fault_streams = seeds.len();
        assert_eq!(fault_streams, 3 * 8, "no fault-seed collisions");
        for layer in 0..2 {
            for node in 0..4 {
                seeds.insert(t.node_seed(layer, node));
            }
        }
        seeds.insert(t.root_seed());
        assert_eq!(
            seeds.len(),
            fault_streams + 9,
            "fault seeds disjoint from sampler seeds"
        );
    }

    #[test]
    fn churn_seeds_are_disjoint_from_sampler_and_fault_seeds() {
        let t = Topology::paper(0.5, 0.0);
        let mut seeds = std::collections::BTreeSet::new();
        for layer in 0..2 {
            for node in 0..4 {
                seeds.insert(t.churn_seed(layer, node));
            }
        }
        let churn_streams = seeds.len();
        assert_eq!(churn_streams, 8, "no churn-seed collisions");
        for hop in 0..t.hops() {
            for sender in 0..8 {
                seeds.insert(t.hop_impairment_seed(hop, sender));
            }
        }
        for layer in 0..2 {
            for node in 0..4 {
                seeds.insert(t.node_seed(layer, node));
            }
        }
        seeds.insert(t.root_seed());
        assert_eq!(
            seeds.len(),
            churn_streams + 3 * 8 + 9,
            "churn seeds disjoint from fault and sampler seeds"
        );
        // Replacement generations get fresh, distinct sampler seeds.
        let g1 = t.replacement_seed(0, 0, 1);
        let g2 = t.replacement_seed(0, 0, 2);
        assert_ne!(g1, g2);
        assert_ne!(g1, t.node_seed(0, 0));
    }

    #[test]
    fn path_delivery_factor_matches_global_factor_per_hop_specs() {
        let t = Topology::builder()
            .sources(4)
            .layer(LayerSpec::new(2).impairment(ImpairmentSpec::none().loss(0.1)))
            .layer(LayerSpec::new(1))
            .root_impairment(ImpairmentSpec::none().duplicate(0.5))
            .build()
            .expect("valid");
        for source in 0..4 {
            assert_eq!(
                t.path_delivery_factor(source).to_bits(),
                t.delivery_factor().to_bits(),
                "homogeneous per-hop specs: every path compounds identically"
            );
        }
    }

    #[test]
    fn source_path_alive_tracks_the_leaf_to_root_chain() {
        // Paper tree: source s → leaf s % 4 → mid (s % 4) % 2 → root.
        let t = Topology::builder()
            .sources(8)
            .layer(LayerSpec::new(4))
            .layer(LayerSpec::new(2))
            .churn(
                ChurnSchedule::new()
                    .down(0, 1, 2, 4) // leaf 1 dark for intervals [2, 4)
                    .crash(1, 0, 5) // mid node 0 crashes at interval 5
                    .low_power(0, 2, 0, 10, 0.5),
            )
            .build()
            .expect("valid");
        assert!(t.has_churn());
        // Sources 1 and 5 route through leaf 1: dead during the outage.
        assert!(t.source_path_alive(1, 1));
        assert!(!t.source_path_alive(1, 2));
        assert!(!t.source_path_alive(5, 3));
        assert!(t.source_path_alive(1, 4), "back up after the outage");
        // Mid node 0 serves the even leaves (0 and 2) → sources 0,2,4,6.
        assert!(
            !t.source_path_alive(0, 5),
            "crash loses the subtree's window"
        );
        assert!(t.source_path_alive(1, 5), "odd leaves route around it");
        // Low-power nodes still forward: path stays alive.
        assert!(t.source_path_alive(2, 3));
    }

    #[test]
    #[should_panic(expected = "addresses layer 7")]
    fn build_rejects_churn_events_outside_the_tree() {
        let _ = Topology::builder()
            .sources(2)
            .layer(LayerSpec::new(2))
            .churn(ChurnSchedule::new().down(7, 0, 0, 1))
            .build();
    }

    #[test]
    fn allowed_lateness_defaults_to_zero() {
        assert_eq!(Topology::paper(0.2, 1.0).allowed_lateness(), Duration::ZERO);
        let t = Topology::builder()
            .sources(1)
            .layer(LayerSpec::new(1))
            .allowed_lateness(Duration::from_millis(50))
            .build()
            .expect("valid");
        assert_eq!(t.allowed_lateness(), Duration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "at least one edge layer")]
    fn empty_topology_rejected() {
        let _ = Topology::builder().build();
    }

    #[test]
    fn invalid_fraction_rejected() {
        assert!(Topology::builder()
            .layer(LayerSpec::new(1))
            .overall_fraction(0.0)
            .build()
            .is_err());
    }
}
