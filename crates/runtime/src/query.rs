//! Queries executed at the root node.
//!
//! The paper's case studies ask *approximate linear queries* — windowed
//! SUM, MEAN and COUNT over the weighted samples in `Θ` ("total payment
//! per window", "total pollution value per window") — and its future-work
//! section gestures at richer ones. This module covers both:
//!
//! * [`Query`] — the original single linear query (kept for the
//!   `paper_topology` compatibility surface).
//! * [`QuerySet`] — any number of concurrent window queries, each a
//!   [`QuerySpec`]: the linear three, their per-stratum variants, and
//!   [`QuerySpec::Quantile`] / [`QuerySpec::TopK`] backed by
//!   [`approxiot_core::quantile`]. The root runs the whole set over each
//!   closed window's `Θ` store and files the answers into a
//!   [`QueryResults`] map on the window result.

use approxiot_core::quantile::{quantile_with_bounds, top_k_strata, QuantileEstimate};
use approxiot_core::{Confidence, Estimate, StratumId, StratumSummaries, ThetaStore};
use std::collections::BTreeMap;

/// A linear streaming query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Query {
    /// Total of item values per window (the case studies' query).
    #[default]
    Sum,
    /// Mean item value per window.
    Mean,
    /// Number of items per window.
    Count,
}

impl Query {
    /// Executes the query over a window's `Θ` store, returning the
    /// estimate with its variance (§III-C and §III-D).
    pub fn run(self, theta: &ThetaStore) -> Estimate {
        match self {
            Query::Sum => theta.sum_estimate(),
            Query::Mean => theta.mean_estimate(),
            // COUNT is SUM with all values 1; its estimator is the exact
            // count reconstruction (Equation 8), variance 0 by the
            // invariant.
            Query::Count => Estimate::new(theta.count_estimate(), 0.0),
        }
    }

    /// Executes the query per stratum (used by the per-pollutant variant of
    /// the Brasov query).
    pub fn run_per_stratum(self, theta: &ThetaStore) -> BTreeMap<StratumId, Estimate> {
        theta
            .stratum_estimates()
            .into_iter()
            .map(|(stratum, est)| {
                let e = match self {
                    Query::Sum => Estimate::new(est.sum, est.sum_variance),
                    Query::Mean => {
                        if est.count_hat > 0.0 && est.zeta > 0 {
                            let mean = est.sum / est.count_hat;
                            let fpc = ((est.count_hat - est.zeta as f64) / est.count_hat).max(0.0);
                            Estimate::new(mean, est.sample_variance / est.zeta as f64 * fpc)
                        } else {
                            Estimate::new(0.0, 0.0)
                        }
                    }
                    Query::Count => Estimate::new(est.count_hat, 0.0),
                };
                (stratum, e)
            })
            .collect()
    }

    /// The exact (ground-truth) answer over raw values, for
    /// accuracy-loss computation in tests and benches.
    pub fn exact(self, values: &[f64]) -> f64 {
        match self {
            Query::Sum => values.iter().sum(),
            Query::Mean => {
                if values.is_empty() {
                    0.0
                } else {
                    values.iter().sum::<f64>() / values.len() as f64
                }
            }
            Query::Count => values.len() as f64,
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Query::Sum => write!(f, "SUM"),
            Query::Mean => write!(f, "MEAN"),
            Query::Count => write!(f, "COUNT"),
        }
    }
}

/// One window query in a [`QuerySet`].
///
/// The linear three answer with a scalar [`Estimate`]; the per-stratum
/// variants answer with one estimate per stratum; `Quantile` and `TopK`
/// run the [`approxiot_core::quantile`] estimators over the window's
/// weighted sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuerySpec {
    /// Total of item values per window.
    Sum,
    /// Mean item value per window.
    Mean,
    /// Number of items per window.
    Count,
    /// SUM broken out per stratum (the per-pollutant reporting variant).
    SumPerStratum,
    /// MEAN broken out per stratum.
    MeanPerStratum,
    /// COUNT broken out per stratum.
    CountPerStratum,
    /// The `q`-quantile of item values (`0 <= q <= 1`), with the
    /// distribution-free order-statistic confidence interval.
    Quantile(f64),
    /// The `k` strata with the largest estimated SUM, each with its
    /// Equation-11 variance.
    TopK(usize),
}

impl QuerySpec {
    /// Whether this query answers with a scalar [`Estimate`] the window
    /// result can surface as its primary estimate.
    pub fn is_scalar(self) -> bool {
        matches!(self, QuerySpec::Sum | QuerySpec::Mean | QuerySpec::Count)
    }
}

impl From<Query> for QuerySpec {
    fn from(query: Query) -> Self {
        match query {
            Query::Sum => QuerySpec::Sum,
            Query::Mean => QuerySpec::Mean,
            Query::Count => QuerySpec::Count,
        }
    }
}

impl std::fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuerySpec::Sum => write!(f, "SUM"),
            QuerySpec::Mean => write!(f, "MEAN"),
            QuerySpec::Count => write!(f, "COUNT"),
            QuerySpec::SumPerStratum => write!(f, "SUM/stratum"),
            QuerySpec::MeanPerStratum => write!(f, "MEAN/stratum"),
            QuerySpec::CountPerStratum => write!(f, "COUNT/stratum"),
            QuerySpec::Quantile(q) => write!(f, "QUANTILE({q})"),
            QuerySpec::TopK(k) => write!(f, "TOP{k}"),
        }
    }
}

/// One query's answer for one window.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryValue {
    /// A scalar estimate with variance (Sum / Mean / Count).
    Scalar(Estimate),
    /// Per-stratum estimates.
    PerStratum(BTreeMap<StratumId, Estimate>),
    /// A quantile with its confidence interval; `None` for an empty window.
    Quantile(Option<QuantileEstimate>),
    /// Strata ranked by estimated SUM, largest first.
    TopK(Vec<(StratumId, Estimate)>),
}

impl QueryValue {
    /// The scalar estimate, if this answer is one.
    pub fn scalar(&self) -> Option<&Estimate> {
        match self {
            QueryValue::Scalar(est) => Some(est),
            _ => None,
        }
    }

    /// The quantile estimate, if this answer is one.
    pub fn quantile(&self) -> Option<&QuantileEstimate> {
        match self {
            QueryValue::Quantile(q) => q.as_ref(),
            _ => None,
        }
    }

    /// The ranked strata, if this answer is a top-k.
    pub fn top_k(&self) -> Option<&[(StratumId, Estimate)]> {
        match self {
            QueryValue::TopK(ranked) => Some(ranked),
            _ => None,
        }
    }

    /// The per-stratum map, if this answer is one.
    pub fn per_stratum(&self) -> Option<&BTreeMap<StratumId, Estimate>> {
        match self {
            QueryValue::PerStratum(map) => Some(map),
            _ => None,
        }
    }
}

/// The per-query result map of one window: every registered
/// [`QuerySpec`] paired with its [`QueryValue`], in registration order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResults {
    answers: Vec<(QuerySpec, QueryValue)>,
}

impl QueryResults {
    /// The answer for `spec`, if it was registered.
    pub fn get(&self, spec: QuerySpec) -> Option<&QueryValue> {
        self.answers
            .iter()
            .find(|(s, _)| *s == spec)
            .map(|(_, v)| v)
    }

    /// All `(spec, answer)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &(QuerySpec, QueryValue)> {
        self.answers.iter()
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// Whether no queries were registered.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// The SUM estimate, if a SUM query was registered.
    pub fn sum(&self) -> Option<&Estimate> {
        self.get(QuerySpec::Sum).and_then(QueryValue::scalar)
    }

    /// The MEAN estimate, if a MEAN query was registered.
    pub fn mean(&self) -> Option<&Estimate> {
        self.get(QuerySpec::Mean).and_then(QueryValue::scalar)
    }

    /// The COUNT estimate, if a COUNT query was registered.
    pub fn count(&self) -> Option<&Estimate> {
        self.get(QuerySpec::Count).and_then(QueryValue::scalar)
    }

    /// The `q`-quantile estimate, if that exact quantile was registered
    /// and the window was non-empty.
    pub fn quantile(&self, q: f64) -> Option<&QuantileEstimate> {
        self.get(QuerySpec::Quantile(q))
            .and_then(QueryValue::quantile)
    }

    /// The ranked strata of a TOP-`k` query, if that exact `k` was
    /// registered.
    pub fn top_k(&self, k: usize) -> Option<&[(StratumId, Estimate)]> {
        self.get(QuerySpec::TopK(k)).and_then(QueryValue::top_k)
    }

    /// The per-stratum map for `spec`, if it was registered and answers
    /// per stratum.
    pub fn per_stratum(&self, spec: QuerySpec) -> Option<&BTreeMap<StratumId, Estimate>> {
        self.get(spec).and_then(QueryValue::per_stratum)
    }
}

/// Any number of concurrent window queries, run together over each closed
/// window's `Θ` store.
///
/// # Examples
///
/// ```
/// use approxiot_runtime::{QuerySet, QuerySpec};
///
/// let queries = QuerySet::new()
///     .with(QuerySpec::Sum)
///     .with(QuerySpec::Quantile(0.5))
///     .with(QuerySpec::TopK(3));
/// assert_eq!(queries.specs().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySet {
    specs: Vec<QuerySpec>,
    confidence: Confidence,
}

impl Default for QuerySet {
    /// A single SUM query (the case studies' default).
    fn default() -> Self {
        QuerySet::single(Query::Sum)
    }
}

impl From<Query> for QuerySet {
    fn from(query: Query) -> Self {
        QuerySet::single(query)
    }
}

impl QuerySet {
    /// An empty set; add queries with [`QuerySet::with`].
    pub fn new() -> Self {
        QuerySet {
            specs: Vec::new(),
            confidence: Confidence::P95,
        }
    }

    /// The set holding exactly the legacy single query.
    pub fn single(query: Query) -> Self {
        QuerySet::new().with(query.into())
    }

    /// Adds one query.
    pub fn with(mut self, spec: QuerySpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Confidence level used for quantile intervals (default 95%).
    pub fn with_confidence(mut self, confidence: Confidence) -> Self {
        self.confidence = confidence;
        self
    }

    /// The registered queries, in registration order.
    pub fn specs(&self) -> &[QuerySpec] {
        &self.specs
    }

    /// The first scalar query in the set (drives the window result's
    /// primary `estimate` field), defaulting to SUM.
    pub fn primary(&self) -> Query {
        self.specs
            .iter()
            .find_map(|spec| match spec {
                QuerySpec::Sum => Some(Query::Sum),
                QuerySpec::Mean => Some(Query::Mean),
                QuerySpec::Count => Some(Query::Count),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// Runs every registered query over a window's `Θ` store.
    pub fn run(&self, theta: &ThetaStore) -> QueryResults {
        let answers = self
            .specs
            .iter()
            .map(|&spec| {
                let value = match spec {
                    QuerySpec::Sum => QueryValue::Scalar(Query::Sum.run(theta)),
                    QuerySpec::Mean => QueryValue::Scalar(Query::Mean.run(theta)),
                    QuerySpec::Count => QueryValue::Scalar(Query::Count.run(theta)),
                    QuerySpec::SumPerStratum => {
                        QueryValue::PerStratum(Query::Sum.run_per_stratum(theta))
                    }
                    QuerySpec::MeanPerStratum => {
                        QueryValue::PerStratum(Query::Mean.run_per_stratum(theta))
                    }
                    QuerySpec::CountPerStratum => {
                        QueryValue::PerStratum(Query::Count.run_per_stratum(theta))
                    }
                    QuerySpec::Quantile(q) => {
                        QueryValue::Quantile(quantile_with_bounds(theta, q, self.confidence))
                    }
                    QuerySpec::TopK(k) => QueryValue::TopK(top_k_strata(theta, k)),
                };
                (spec, value)
            })
            .collect();
        QueryResults { answers }
    }

    /// Runs every registered query over a window's merged stratum
    /// summaries — the sketch-strategy counterpart of [`QuerySet::run`].
    ///
    /// SUM / MEAN / COUNT come from the exact moment accumulators
    /// (variance 0 — sketch moments are lossless), the per-stratum
    /// variants from the per-stratum moments, `Quantile(q)` from the KLL
    /// sketch and `TopK(k)` from the Space-Saving counters.
    pub fn run_summaries(&self, summaries: &StratumSummaries) -> QueryResults {
        let answers = self
            .specs
            .iter()
            .map(|&spec| {
                let value = match spec {
                    QuerySpec::Sum => QueryValue::Scalar(summaries.sum_estimate()),
                    QuerySpec::Mean => QueryValue::Scalar(summaries.mean_estimate()),
                    QuerySpec::Count => QueryValue::Scalar(summaries.count_estimate()),
                    QuerySpec::SumPerStratum => QueryValue::PerStratum(summaries.sum_per_stratum()),
                    QuerySpec::MeanPerStratum => {
                        QueryValue::PerStratum(summaries.mean_per_stratum())
                    }
                    QuerySpec::CountPerStratum => {
                        QueryValue::PerStratum(summaries.count_per_stratum())
                    }
                    QuerySpec::Quantile(q) => {
                        QueryValue::Quantile(summaries.quantile(q, self.confidence))
                    }
                    QuerySpec::TopK(k) => QueryValue::TopK(summaries.top_k(k)),
                };
                (spec, value)
            })
            .collect();
        QueryResults { answers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_core::{StreamItem, WeightMap, WhsOutput};

    fn theta(pairs: &[(u32, f64, &[f64])]) -> ThetaStore {
        pairs
            .iter()
            .map(|&(stratum, weight, values)| {
                let mut weights = WeightMap::new();
                weights.set(StratumId::new(stratum), weight);
                WhsOutput {
                    weights,
                    sample: values
                        .iter()
                        .map(|&v| StreamItem::new(StratumId::new(stratum), v))
                        .collect(),
                }
            })
            .collect()
    }

    #[test]
    fn sum_query_scales_by_weight() {
        let t = theta(&[(0, 2.0, &[3.0, 4.0])]);
        assert_eq!(Query::Sum.run(&t).value, 14.0);
    }

    #[test]
    fn count_query_reconstructs_exactly() {
        let t = theta(&[(0, 5.0, &[1.0, 1.0])]);
        let est = Query::Count.run(&t);
        assert_eq!(est.value, 10.0);
        assert_eq!(est.variance, 0.0);
    }

    #[test]
    fn mean_query_weights_strata() {
        // 10 items of value 1 (weight 5 x 2 samples), 10 of value 3.
        let t = theta(&[(0, 5.0, &[1.0, 1.0]), (1, 5.0, &[3.0, 3.0])]);
        let est = Query::Mean.run(&t);
        assert!((est.value - 2.0).abs() < 1e-12);
    }

    #[test]
    fn per_stratum_results_are_separate() {
        let t = theta(&[(0, 2.0, &[1.0]), (1, 3.0, &[10.0])]);
        let per = Query::Sum.run_per_stratum(&t);
        assert_eq!(per[&StratumId::new(0)].value, 2.0);
        assert_eq!(per[&StratumId::new(1)].value, 30.0);
        let counts = Query::Count.run_per_stratum(&t);
        assert_eq!(counts[&StratumId::new(1)].value, 3.0);
        let means = Query::Mean.run_per_stratum(&t);
        assert_eq!(means[&StratumId::new(1)].value, 10.0);
    }

    #[test]
    fn exact_matches_plain_arithmetic() {
        let values = [1.0, 2.0, 3.0];
        assert_eq!(Query::Sum.exact(&values), 6.0);
        assert_eq!(Query::Mean.exact(&values), 2.0);
        assert_eq!(Query::Count.exact(&values), 3.0);
        assert_eq!(Query::Mean.exact(&[]), 0.0);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Query::Sum.to_string(), "SUM");
        assert_eq!(Query::Mean.to_string(), "MEAN");
        assert_eq!(Query::Count.to_string(), "COUNT");
        assert_eq!(Query::default(), Query::Sum);
        assert_eq!(QuerySpec::Quantile(0.5).to_string(), "QUANTILE(0.5)");
        assert_eq!(QuerySpec::TopK(3).to_string(), "TOP3");
        assert_eq!(QuerySpec::SumPerStratum.to_string(), "SUM/stratum");
    }

    #[test]
    fn query_set_runs_every_registered_query() {
        let t = theta(&[(0, 2.0, &[1.0, 2.0, 3.0]), (1, 1.0, &[100.0])]);
        let set = QuerySet::new()
            .with(QuerySpec::Sum)
            .with(QuerySpec::Count)
            .with(QuerySpec::Quantile(0.5))
            .with(QuerySpec::TopK(1))
            .with(QuerySpec::SumPerStratum);
        let results = set.run(&t);
        assert_eq!(results.len(), 5);
        assert_eq!(results.sum(), Some(&Query::Sum.run(&t)));
        let median = results.quantile(0.5).expect("non-empty window");
        // Weighted CDF: weights 2,2,2,1; total 7, target 3.5 → value 2.
        assert_eq!(median.value, 2.0);
        assert!(median.lo <= median.value && median.value <= median.hi);
        let top = results.top_k(1).expect("top-k answer");
        assert_eq!(top[0].0, StratumId::new(1));
        assert_eq!(top[0].1.value, 100.0);
        let per = results
            .per_stratum(QuerySpec::SumPerStratum)
            .expect("per-stratum answer");
        assert_eq!(per[&StratumId::new(0)].value, 12.0);
    }

    #[test]
    fn query_set_quantile_of_empty_window_is_none() {
        let set = QuerySet::new().with(QuerySpec::Quantile(0.9));
        let results = set.run(&ThetaStore::new());
        assert_eq!(
            results.get(QuerySpec::Quantile(0.9)),
            Some(&QueryValue::Quantile(None))
        );
        assert!(results.get(QuerySpec::Quantile(0.5)).is_none());
    }

    #[test]
    fn typed_accessors_return_registered_answers_only() {
        let t = theta(&[(0, 2.0, &[1.0, 2.0, 3.0]), (1, 1.0, &[100.0])]);
        let results = QuerySet::new()
            .with(QuerySpec::Sum)
            .with(QuerySpec::Quantile(0.5))
            .with(QuerySpec::TopK(1))
            .with(QuerySpec::CountPerStratum)
            .run(&t);
        assert_eq!(results.sum().map(|e| e.value), Some(112.0));
        assert!(results.mean().is_none(), "MEAN was not registered");
        assert!(results.count().is_none(), "COUNT was not registered");
        assert_eq!(results.quantile(0.5).map(|q| q.value), Some(2.0));
        assert!(results.quantile(0.9).is_none(), "only 0.5 registered");
        assert_eq!(results.top_k(1).map(<[_]>::len), Some(1));
        assert!(results.top_k(2).is_none(), "only k=1 registered");
        let counts = results
            .per_stratum(QuerySpec::CountPerStratum)
            .expect("registered per-stratum query");
        assert_eq!(counts[&StratumId::new(0)].value, 6.0);
        assert!(results.per_stratum(QuerySpec::SumPerStratum).is_none());
    }

    #[test]
    fn run_summaries_answers_every_query_kind() {
        use approxiot_core::{SketchConfig, StratumSummaries};
        let mut summaries = StratumSummaries::new(SketchConfig::default(), 7);
        for i in 0..10u64 {
            summaries.observe(StratumId::new(0), i, (i + 1) as f64);
        }
        summaries.observe(StratumId::new(1), 100, 500.0);
        let results = QuerySet::new()
            .with(QuerySpec::Sum)
            .with(QuerySpec::Mean)
            .with(QuerySpec::Count)
            .with(QuerySpec::Quantile(0.5))
            .with(QuerySpec::TopK(1))
            .with(QuerySpec::SumPerStratum)
            .run_summaries(&summaries);
        // Moments are exact: sum 55 + 500, count 11.
        assert_eq!(results.sum().map(|e| e.value), Some(555.0));
        assert_eq!(results.sum().map(|e| e.variance), Some(0.0));
        assert_eq!(results.count().map(|e| e.value), Some(11.0));
        assert!((results.mean().expect("mean").value - 555.0 / 11.0).abs() < 1e-12);
        let median = results.quantile(0.5).expect("non-empty sketch");
        assert!(median.lo <= median.value && median.value <= median.hi);
        let top = results.top_k(1).expect("top-k answer");
        assert_eq!(top[0].0, StratumId::new(1), "stratum 1 carries the mass");
        let per = results
            .per_stratum(QuerySpec::SumPerStratum)
            .expect("per-stratum answer");
        assert_eq!(per[&StratumId::new(0)].value, 55.0);
        assert_eq!(per[&StratumId::new(1)].value, 500.0);
    }

    #[test]
    fn primary_is_first_scalar_query() {
        let set = QuerySet::new()
            .with(QuerySpec::TopK(2))
            .with(QuerySpec::Mean)
            .with(QuerySpec::Sum);
        assert_eq!(set.primary(), Query::Mean);
        assert_eq!(QuerySet::new().primary(), Query::Sum, "default when none");
        assert_eq!(QuerySet::default(), QuerySet::single(Query::Sum));
        assert_eq!(QuerySet::from(Query::Count).primary(), Query::Count);
    }
}
