//! Queries executed at the root node.
//!
//! The paper's current system supports *approximate linear queries* —
//! windowed SUM, MEAN and COUNT over the weighted samples in `Θ` — which is
//! exactly what the two case studies ask ("total payment per window",
//! "total pollution value per window").

use approxiot_core::{Estimate, StratumId, ThetaStore};
use std::collections::BTreeMap;

/// A linear streaming query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Query {
    /// Total of item values per window (the case studies' query).
    #[default]
    Sum,
    /// Mean item value per window.
    Mean,
    /// Number of items per window.
    Count,
}

impl Query {
    /// Executes the query over a window's `Θ` store, returning the
    /// estimate with its variance (§III-C and §III-D).
    pub fn run(self, theta: &ThetaStore) -> Estimate {
        match self {
            Query::Sum => theta.sum_estimate(),
            Query::Mean => theta.mean_estimate(),
            // COUNT is SUM with all values 1; its estimator is the exact
            // count reconstruction (Equation 8), variance 0 by the
            // invariant.
            Query::Count => Estimate::new(theta.count_estimate(), 0.0),
        }
    }

    /// Executes the query per stratum (used by the per-pollutant variant of
    /// the Brasov query).
    pub fn run_per_stratum(self, theta: &ThetaStore) -> BTreeMap<StratumId, Estimate> {
        theta
            .stratum_estimates()
            .into_iter()
            .map(|(stratum, est)| {
                let e = match self {
                    Query::Sum => Estimate::new(est.sum, est.sum_variance),
                    Query::Mean => {
                        if est.count_hat > 0.0 && est.zeta > 0 {
                            let mean = est.sum / est.count_hat;
                            let fpc = ((est.count_hat - est.zeta as f64) / est.count_hat).max(0.0);
                            Estimate::new(mean, est.sample_variance / est.zeta as f64 * fpc)
                        } else {
                            Estimate::new(0.0, 0.0)
                        }
                    }
                    Query::Count => Estimate::new(est.count_hat, 0.0),
                };
                (stratum, e)
            })
            .collect()
    }

    /// The exact (ground-truth) answer over raw values, for
    /// accuracy-loss computation in tests and benches.
    pub fn exact(self, values: &[f64]) -> f64 {
        match self {
            Query::Sum => values.iter().sum(),
            Query::Mean => {
                if values.is_empty() {
                    0.0
                } else {
                    values.iter().sum::<f64>() / values.len() as f64
                }
            }
            Query::Count => values.len() as f64,
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Query::Sum => write!(f, "SUM"),
            Query::Mean => write!(f, "MEAN"),
            Query::Count => write!(f, "COUNT"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_core::{StreamItem, WeightMap, WhsOutput};

    fn theta(pairs: &[(u32, f64, &[f64])]) -> ThetaStore {
        pairs
            .iter()
            .map(|&(stratum, weight, values)| {
                let mut weights = WeightMap::new();
                weights.set(StratumId::new(stratum), weight);
                WhsOutput {
                    weights,
                    sample: values
                        .iter()
                        .map(|&v| StreamItem::new(StratumId::new(stratum), v))
                        .collect(),
                }
            })
            .collect()
    }

    #[test]
    fn sum_query_scales_by_weight() {
        let t = theta(&[(0, 2.0, &[3.0, 4.0])]);
        assert_eq!(Query::Sum.run(&t).value, 14.0);
    }

    #[test]
    fn count_query_reconstructs_exactly() {
        let t = theta(&[(0, 5.0, &[1.0, 1.0])]);
        let est = Query::Count.run(&t);
        assert_eq!(est.value, 10.0);
        assert_eq!(est.variance, 0.0);
    }

    #[test]
    fn mean_query_weights_strata() {
        // 10 items of value 1 (weight 5 x 2 samples), 10 of value 3.
        let t = theta(&[(0, 5.0, &[1.0, 1.0]), (1, 5.0, &[3.0, 3.0])]);
        let est = Query::Mean.run(&t);
        assert!((est.value - 2.0).abs() < 1e-12);
    }

    #[test]
    fn per_stratum_results_are_separate() {
        let t = theta(&[(0, 2.0, &[1.0]), (1, 3.0, &[10.0])]);
        let per = Query::Sum.run_per_stratum(&t);
        assert_eq!(per[&StratumId::new(0)].value, 2.0);
        assert_eq!(per[&StratumId::new(1)].value, 30.0);
        let counts = Query::Count.run_per_stratum(&t);
        assert_eq!(counts[&StratumId::new(1)].value, 3.0);
        let means = Query::Mean.run_per_stratum(&t);
        assert_eq!(means[&StratumId::new(1)].value, 10.0);
    }

    #[test]
    fn exact_matches_plain_arithmetic() {
        let values = [1.0, 2.0, 3.0];
        assert_eq!(Query::Sum.exact(&values), 6.0);
        assert_eq!(Query::Mean.exact(&values), 2.0);
        assert_eq!(Query::Count.exact(&values), 3.0);
        assert_eq!(Query::Mean.exact(&[]), 0.0);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Query::Sum.to_string(), "SUM");
        assert_eq!(Query::Mean.to_string(), "MEAN");
        assert_eq!(Query::Count.to_string(), "COUNT");
        assert_eq!(Query::default(), Query::Sum);
    }
}
