//! Persistent edge worker pool: long-lived, channel-fed execution of the
//! paper's §III-E parallel sharded sampling.
//!
//! [`approxiot_core::ParallelShardedSampler`] spawns a fresh
//! `std::thread::scope` for **every batch** it samples. Thread spawn+join
//! costs tens of microseconds per worker — on the batch sizes the threaded
//! pipeline carries, that per-batch overhead is comparable to the sampling
//! work itself (the ROADMAP open item this module closes). A [`WorkerPool`]
//! amortises it to zero: each worker shard is one long-lived thread that
//! owns its sampling state and receives work over a bounded channel, so
//! the steady-state per-batch cost is two channel hops per shard and no
//! thread lifecycle at all.
//!
//! ## Determinism contract
//!
//! The pool preserves PR 1's fixed-seed, schedule-independent guarantee
//! bit for bit:
//!
//! * shard `i` owns a `StdRng` seeded `seed ^ i` at construction and
//!   advanced **only** by shard `i`, in job-submission order;
//! * items are partitioned with [`approxiot_core::shard_slice`] and
//!   budgets split with [`approxiot_core::shard_budget`] — the exact
//!   functions the scoped-thread sampler uses;
//! * outputs are returned in shard-index order, never completion order.
//!
//! A `WorkerPool` and a `ParallelShardedSampler` built from the same
//! `(allocation, workers, seed)` therefore produce identical
//! [`WhsOutput`] sequences for any sequence of inputs (pinned by a test
//! below), and the thread schedule can never change what is sampled.
//! `workers == 1` — and any worker count on a single-CPU host, where
//! worker threads could only add context switches — runs the shards
//! inline on the caller's thread: same per-shard state, same output, no
//! threads and no channels ([`WorkerPool::with_threading`] pins the
//! choice explicitly).
//!
//! ## Shutdown semantics
//!
//! Dropping the pool hangs up the job channels; each worker drains its
//! (at most one) queued job, observes the disconnect, and exits. Drop
//! then joins every worker, so no thread outlives the pool and a pool
//! dropped mid-stream never leaks detached threads — the property the
//! pipeline relies on when an edge node returns early on a closed topic.
//! If a worker panicked, the panic is re-raised on the thread dropping
//! the pool.

use approxiot_core::{
    shard_bounds, shard_budget, shard_slice, Allocation, Batch, ColumnarBatch, ColumnsView,
    ParallelShardedSampler, StreamItem, WeightMap, WeightStore, WhsOutput, WhsScratch,
};
use crossbeam::channel::{bounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::thread::JoinHandle;

/// The input a job points at: an AoS item slice, or the four column
/// slices of a [`ColumnsView`] range (same length each). Both variants
/// drive the same per-shard RNG discipline, so a pool can serve either
/// representation batch by batch.
enum JobInput {
    Items {
        items: *const StreamItem,
        len: usize,
    },
    Columns {
        strata: *const u32,
        values: *const f64,
        seqs: *const u64,
        source_ts: *const u64,
        len: usize,
    },
}

/// One sampling job handed to a worker shard.
///
/// Carries raw views of the caller's input (item slice or column slices)
/// and resolved weight map. Safety rests on the dispatch protocol, not on
/// lifetimes: the only submitter is [`dispatch_jobs`] (via
/// [`WorkerPool::sample_with_weights`] /
/// [`WorkerPool::sample_columns_with_weights`]), which neither returns
/// nor unwinds until every dispatched shard has sent its result **or hung
/// up** (a hang-up means the worker's closure, including its copy of this
/// job, is already destroyed), so the borrows the pointers alias strictly
/// outlive every worker's use of them — even when a shard panics mid-run.
struct Job {
    input: JobInput,
    w_in: *const WeightMap,
    budget: usize,
    allocation: Allocation,
}

// SAFETY: `StreamItem` and the column element types are `Copy + Send` and
// `WeightMap` is `Sync`; the pointers are dereferenced only between job
// receipt and result send, while the submitting call is still blocked
// (see `Job`'s invariant).
unsafe impl Send for Job {}

/// What a shard sends back: the output representation matching the job's
/// input representation.
enum ShardOutput {
    Items(WhsOutput),
    Columns(ColumnarBatch),
}

/// A worker shard's private sampling state — identical to what the
/// scoped-thread sampler keeps per shard, which is what makes the two
/// engines output-compatible.
struct ShardState {
    rng: StdRng,
    scratch: WhsScratch,
}

impl ShardState {
    fn new(seed: u64, idx: u64) -> Self {
        ShardState {
            // D3-allowlisted worker-lane seeding: `seed` is already a
            // Topology-derived node seed; `^ idx` fans it out per shard.
            #[allow(clippy::disallowed_methods)]
            rng: StdRng::seed_from_u64(seed ^ idx),
            scratch: WhsScratch::new(),
        }
    }

    fn run(&mut self, job: &Job) -> ShardOutput {
        // SAFETY: the submitter blocks until our result is received, so
        // `w_in` and the input slices are alive for the duration of this
        // call; see `Job`.
        let w_in = unsafe { &*job.w_in };
        match job.input {
            JobInput::Items { items, len } => {
                // SAFETY: `items`/`len` came from a live slice borrowed by
                // the submitter, which is still blocked on our result.
                let items = unsafe { std::slice::from_raw_parts(items, len) };
                ShardOutput::Items(self.scratch.sample_slice(
                    items,
                    job.budget,
                    w_in,
                    job.allocation,
                    &mut self.rng,
                ))
            }
            JobInput::Columns {
                strata,
                values,
                seqs,
                source_ts,
                len,
            } => {
                // SAFETY: each column pointer was taken from a live
                // `ColumnsView` of length `len` borrowed by the submitter,
                // which is still blocked on our result.
                let view = unsafe {
                    ColumnsView {
                        strata: std::slice::from_raw_parts(strata, len),
                        values: std::slice::from_raw_parts(values, len),
                        seqs: std::slice::from_raw_parts(seqs, len),
                        source_ts: std::slice::from_raw_parts(source_ts, len),
                    }
                };
                let mut out = ColumnarBatch::new();
                self.scratch.sample_columns_into(
                    view,
                    job.budget,
                    w_in,
                    job.allocation,
                    &mut out,
                    &mut self.rng,
                );
                ShardOutput::Columns(out)
            }
        }
    }
}

/// One long-lived worker: its job channel, result channel and thread.
struct Worker {
    jobs: Sender<Job>,
    results: Receiver<ShardOutput>,
    thread: Option<JoinHandle<()>>,
}

impl Worker {
    /// Spawns the persistent thread for shard `idx`.
    fn spawn(seed: u64, idx: u64) -> Self {
        // Capacity 1 on both channels: the dispatcher submits at most one
        // job per shard before collecting, so sends never block and the
        // queue never reorders.
        let (job_tx, job_rx) = bounded::<Job>(1);
        let (result_tx, result_rx) = bounded::<ShardOutput>(1);
        let mut state = ShardState::new(seed, idx);
        let thread = std::thread::Builder::new()
            .name(format!("approxiot-edge-worker-{idx}"))
            .spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    let out = state.run(&job);
                    // analysis: allow(C2, reason = "capacity-1 request/reply protocol: the dispatcher sends one job per shard and collects before resubmitting, so neither queue can fill")
                    if result_tx.send(out).is_err() {
                        break; // pool dropped mid-collect (panic unwind)
                    }
                }
            })
            // analysis: allow(P1, reason = "thread spawn fails only on OS resource exhaustion; no fallback exists")
            .expect("spawn edge worker thread");
        Worker {
            jobs: job_tx,
            results: result_rx,
            thread: Some(thread),
        }
    }
}

/// Sends one job to every worker and collects the results **in shard
/// order** behind a panic-safety barrier: every dispatched shard must
/// either return its output or hang up before this function does anything
/// that can unwind. A hang-up means the worker's closure — including its
/// copy of the job pointers — is already gone, so after the barrier no
/// thread can still read the borrows behind the raw pointers and it is
/// safe to panic (or return) from the submitting frame.
fn dispatch_jobs(
    workers_vec: &[Worker],
    mut make_job: impl FnMut(usize, usize) -> Job,
) -> Vec<ShardOutput> {
    let workers = workers_vec.len();
    let mut dispatched = 0usize;
    for (idx, worker) in workers_vec.iter().enumerate() {
        if worker.jobs.send(make_job(idx, workers)).is_err() {
            // Worker gone (panicked on an earlier batch): stop handing
            // out jobs, but fall through to the barrier so
            // already-dispatched shards finish before we unwind.
            break;
        }
        dispatched += 1;
    }
    let results: Vec<Option<ShardOutput>> = workers_vec
        .iter()
        .take(dispatched)
        .map(|w| w.results.recv().ok())
        .collect();
    assert!(
        dispatched == workers && results.iter().all(Option::is_some),
        "edge worker shard panicked"
    );
    results.into_iter().flatten().collect()
}

/// Persistent, channel-fed execution engine for §III-E parallel sharded
/// sampling. See the module docs for the determinism and shutdown
/// contracts.
///
/// # Examples
///
/// ```
/// use approxiot_core::{Allocation, Batch, StratumId, StreamItem};
/// use approxiot_runtime::WorkerPool;
///
/// let items: Vec<_> = (0..100).map(|i| StreamItem::new(StratumId::new(0), i as f64)).collect();
/// let mut pool = WorkerPool::new(Allocation::Uniform, 4, 7);
/// let outs = pool.sample_batch(&Batch::from_items(items), 20);
/// assert_eq!(outs.len(), 4);
/// let total: usize = outs.iter().map(|o| o.sample.len()).sum();
/// assert_eq!(total, 20);
/// ```
pub struct WorkerPool {
    allocation: Allocation,
    engine: Engine,
    /// Carried weights for [`WorkerPool::sample_batch`].
    store: WeightStore,
    /// Reusable buffer for the batch's distinct strata.
    strata_scratch: Vec<approxiot_core::StratumId>,
}

/// How the pool executes its shards. Both engines drive identical
/// per-shard state through identical partitioning, so the sampled output
/// is the same either way — the choice is purely a host-fit question,
/// made once at construction. There is deliberately no per-batch size
/// cutoff switching between them: each shard's RNG must be advanced by
/// exactly one engine for the determinism contract to hold, and with the
/// threads already alive a dispatch costs two channel hops (microseconds),
/// not the tens-of-microseconds spawn the old scoped path cut off small
/// batches to avoid.
enum Engine {
    /// Shards run sequentially on the caller's thread — the scoped-thread
    /// sampler pinned to its inline mode, which is exactly the per-shard
    /// state the threaded engine replicates. Chosen for `workers == 1`
    /// and on single-CPU hosts, where worker threads could only add
    /// context switches.
    Inline(ParallelShardedSampler),
    /// One persistent thread per shard, fed over bounded channels.
    Threaded(Vec<Worker>),
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("allocation", &self.allocation)
            .field("workers", &self.workers())
            .field("threaded", &self.is_threaded())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `workers` shards; shard `i` samples with a
    /// generator seeded `seed ^ i`. On multi-CPU hosts with `workers > 1`,
    /// one thread per shard is spawned up front and lives until the pool
    /// is dropped; `workers == 1` and single-CPU hosts run the shards
    /// inline instead (identical output, no threads and no channels).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or a worker thread cannot be spawned.
    pub fn new(allocation: Allocation, workers: usize, seed: u64) -> Self {
        let multi_cpu = std::thread::available_parallelism()
            .map(|n| n.get() > 1)
            .unwrap_or(false);
        WorkerPool::with_threading(allocation, workers, seed, multi_cpu)
    }

    /// Like [`WorkerPool::new`], but with the threaded/inline choice made
    /// explicit instead of derived from the host's CPU count. Output is
    /// identical either way (pinned by a test below); `workers == 1` is
    /// always inline.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or a worker thread cannot be spawned.
    pub fn with_threading(
        allocation: Allocation,
        workers: usize,
        seed: u64,
        threaded: bool,
    ) -> Self {
        assert!(workers > 0, "workers must be positive");
        let engine = if workers == 1 || !threaded {
            // Reuse the scoped-thread sampler pinned to inline mode as
            // the inline engine: it already keeps exactly one
            // (seed ^ i)-seeded RNG and one scratch per shard, so there
            // is a single implementation of the per-shard state to drift.
            let mut sampler = ParallelShardedSampler::new(allocation, workers, seed);
            sampler.set_threaded(false);
            Engine::Inline(sampler)
        } else {
            Engine::Threaded(
                (0..workers as u64)
                    .map(|i| Worker::spawn(seed, i))
                    .collect(),
            )
        };
        WorkerPool {
            allocation,
            engine,
            store: WeightStore::new(),
            strata_scratch: Vec::new(),
        }
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        match &self.engine {
            Engine::Inline(sampler) => sampler.workers(),
            Engine::Threaded(workers) => workers.len(),
        }
    }

    /// Returns `true` when the shards run on persistent threads (`false`
    /// on the inline path).
    pub fn is_threaded(&self) -> bool {
        matches!(self.engine, Engine::Threaded(_))
    }

    /// The allocation policy in use.
    pub fn allocation(&self) -> Allocation {
        self.allocation
    }

    /// Samples one batch across all shards, resolving missing input
    /// weights via the carry-forward rule; one [`WhsOutput`] per shard, in
    /// shard order.
    pub fn sample_batch(&mut self, batch: &Batch, sample_size: usize) -> Vec<WhsOutput> {
        let mut strata = std::mem::take(&mut self.strata_scratch);
        approxiot_core::distinct_strata_into(&batch.items, &mut strata);
        let resolved = self.store.resolve(strata.iter().copied(), &batch.weights);
        self.strata_scratch = strata;
        self.sample_with_weights(&batch.items, sample_size, &resolved)
    }

    /// Samples `items` across all shards with already-resolved input
    /// weights; one [`WhsOutput`] per shard, in shard order. Blocks until
    /// every shard has returned — jobs never outlive this call.
    pub fn sample_with_weights(
        &mut self,
        items: &[StreamItem],
        sample_size: usize,
        w_in: &WeightMap,
    ) -> Vec<WhsOutput> {
        let allocation = self.allocation;
        match &mut self.engine {
            // Inline fallback: the pinned-inline scoped-thread sampler
            // drives identical per-shard slice, budget, RNG and scratch
            // usage, so the output matches the threaded engine bit for
            // bit.
            Engine::Inline(sampler) => sampler.sample_with_weights(items, sample_size, w_in),
            Engine::Threaded(workers_vec) => {
                let outs = dispatch_jobs(workers_vec, |idx, workers| {
                    let slice = shard_slice(items, workers, idx);
                    Job {
                        input: JobInput::Items {
                            items: slice.as_ptr(),
                            len: slice.len(),
                        },
                        w_in,
                        budget: shard_budget(sample_size, workers, idx),
                        allocation,
                    }
                });
                outs.into_iter()
                    .map(|out| match out {
                        ShardOutput::Items(out) => out,
                        ShardOutput::Columns(_) => {
                            unreachable!("items job returned columnar output")
                        }
                    })
                    .collect()
            }
        }
    }

    /// Samples one columnar batch across all shards, resolving missing
    /// input weights via the carry-forward rule — the columnar twin of
    /// [`WorkerPool::sample_batch`]; one output per shard, in shard order.
    pub fn sample_columns(
        &mut self,
        batch: &ColumnarBatch,
        sample_size: usize,
    ) -> Vec<ColumnarBatch> {
        let mut strata = std::mem::take(&mut self.strata_scratch);
        approxiot_core::distinct_strata_u32_into(&batch.strata, &mut strata);
        let resolved = self.store.resolve(strata.iter().copied(), &batch.weights);
        self.strata_scratch = strata;
        self.sample_columns_with_weights(batch.view(), sample_size, &resolved)
    }

    /// Samples a columnar view across all shards with already-resolved
    /// input weights; one output per shard, in shard order. Shard `idx`
    /// takes the [`shard_bounds`] range over the columns — the same cut
    /// and per-shard RNG as [`WorkerPool::sample_with_weights`], so the
    /// shard outputs are bit-identical to the AoS path for the same
    /// logical items. Blocks until every shard has returned — jobs never
    /// outlive this call.
    pub fn sample_columns_with_weights(
        &mut self,
        input: ColumnsView<'_>,
        sample_size: usize,
        w_in: &WeightMap,
    ) -> Vec<ColumnarBatch> {
        let allocation = self.allocation;
        match &mut self.engine {
            Engine::Inline(sampler) => {
                sampler.sample_columns_with_weights(input, sample_size, w_in)
            }
            Engine::Threaded(workers_vec) => {
                let outs = dispatch_jobs(workers_vec, |idx, workers| {
                    let (start, end) = shard_bounds(input.len(), workers, idx);
                    let view = input.range(start, end);
                    Job {
                        input: JobInput::Columns {
                            strata: view.strata.as_ptr(),
                            values: view.values.as_ptr(),
                            seqs: view.seqs.as_ptr(),
                            source_ts: view.source_ts.as_ptr(),
                            len: view.len(),
                        },
                        w_in,
                        budget: shard_budget(sample_size, workers, idx),
                        allocation,
                    }
                });
                outs.into_iter()
                    .map(|out| match out {
                        ShardOutput::Columns(out) => out,
                        ShardOutput::Items(_) => {
                            unreachable!("columnar job returned items output")
                        }
                    })
                    .collect()
            }
        }
    }

    /// Forgets carried weights (between independent runs). Shard RNGs
    /// keep advancing; rebuild the pool to reproduce a run from its seed.
    pub fn reset(&mut self) {
        self.store.clear();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let Engine::Threaded(workers) = &mut self.engine else {
            return;
        };
        // Hang up every job channel first so all workers begin exiting,
        // then join them. `Sender` has no explicit close, so replace each
        // with a sender whose receiver is already gone.
        for worker in workers.iter_mut() {
            let (dead_tx, _) = bounded::<Job>(1);
            worker.jobs = dead_tx;
        }
        // Join *every* worker before re-raising anything, so no thread
        // outlives the pool even when one of them panicked.
        let mut first_panic = None;
        for worker in workers.iter_mut() {
            if let Some(thread) = worker.thread.take() {
                if let Err(panic) = thread.join() {
                    first_panic.get_or_insert(panic);
                }
            }
        }
        if let Some(panic) = first_panic {
            if !std::thread::panicking() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_core::{ParallelShardedSampler, StratumId, ThetaStore};

    fn s(i: u32) -> StratumId {
        StratumId::new(i)
    }

    fn batch_of(counts: &[(u32, usize)]) -> Batch {
        let mut items = Vec::new();
        for &(stratum, n) in counts {
            for k in 0..n {
                items.push(StreamItem::with_meta(s(stratum), 1.0, k as u64, 0));
            }
        }
        Batch::from_items(items)
    }

    #[test]
    #[should_panic(expected = "workers must be positive")]
    fn rejects_zero_workers() {
        WorkerPool::new(Allocation::Uniform, 0, 0);
    }

    #[test]
    fn pool_output_is_bit_identical_to_scoped_thread_sampler() {
        // The acceptance guarantee: swapping the per-batch thread scope
        // for the persistent pool must not change a single sampled item
        // or weight, across a multi-batch stream with carried weights —
        // on both the threaded and the inline engine.
        for threaded in [false, true] {
            for workers in [1usize, 2, 4, 8] {
                let mut pool =
                    WorkerPool::with_threading(Allocation::Uniform, workers, 42, threaded);
                assert_eq!(pool.is_threaded(), threaded && workers > 1);
                let mut scoped = ParallelShardedSampler::new(Allocation::Uniform, workers, 42);
                for round in 0..5usize {
                    let mut batch = batch_of(&[(0, 5_000 + round), (1, 777), (2, 13)]);
                    if round == 0 {
                        batch.weights.set(s(1), 2.5);
                    }
                    let budget = 600 + round;
                    let from_pool = pool.sample_batch(&batch, budget);
                    let from_scope = scoped.sample_batch(&batch, budget);
                    assert_eq!(
                        from_pool, from_scope,
                        "workers={workers} threaded={threaded} round={round}: engines diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn columnar_pool_bit_identical_to_aos_pool() {
        // Threaded and inline engines, multi-batch stream with carried
        // weights: the columnar dispatch must reproduce the AoS dispatch
        // shard for shard.
        for threaded in [false, true] {
            let mut aos = WorkerPool::with_threading(Allocation::Uniform, 4, 42, threaded);
            let mut soa = WorkerPool::with_threading(Allocation::Uniform, 4, 42, threaded);
            for round in 0..3usize {
                let mut batch = batch_of(&[(0, 5_000 + round), (1, 777), (2, 13)]);
                if round == 0 {
                    batch.weights.set(s(1), 2.5);
                }
                let cols = ColumnarBatch::from_batch(&batch);
                let budget = 600 + round;
                let from_aos = aos.sample_batch(&batch, budget);
                let from_soa = soa.sample_columns(&cols, budget);
                assert_eq!(from_aos.len(), from_soa.len());
                for (a, b) in from_aos.into_iter().zip(from_soa) {
                    assert_eq!(
                        b.to_batch(),
                        a.into_batch(),
                        "threaded={threaded} round={round}: layouts diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_seed_reproduces_across_pool_instances() {
        let batch = batch_of(&[(0, 10_000), (3, 450)]);
        let run = |seed: u64| {
            let mut pool = WorkerPool::new(Allocation::Uniform, 4, seed);
            pool.sample_batch(&batch, 1_000)
        };
        assert_eq!(run(7), run(7), "fixed seed reproduces");
        assert_ne!(run(7), run(8), "different seed diverges");
    }

    #[test]
    fn budgets_sum_exactly_and_counts_reconstruct() {
        let batch = batch_of(&[(0, 20_000), (1, 1_000)]);
        let mut pool = WorkerPool::new(Allocation::Uniform, 8, 42);
        let outs = pool.sample_batch(&batch, 2_100);
        assert_eq!(outs.len(), 8);
        let total: usize = outs.iter().map(|o| o.sample.len()).sum();
        assert_eq!(total, 2_100);
        let theta: ThetaStore = outs.into_iter().collect();
        let est = theta.stratum_estimates();
        for (stratum, expected) in [(s(0), 20_000.0), (s(1), 1_000.0)] {
            let got = est[&stratum].count_hat;
            assert!(
                (got - expected).abs() < 1e-6,
                "{stratum}: reconstructed {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn carried_weights_reach_every_shard_and_reset_clears() {
        let mut pool = WorkerPool::new(Allocation::Uniform, 2, 3);
        let mut first = batch_of(&[(0, 8)]);
        first.weights.set(s(0), 3.0);
        pool.sample_batch(&first, 8);
        let outs = pool.sample_batch(&batch_of(&[(0, 8)]), 4);
        let theta: ThetaStore = outs.into_iter().collect();
        assert!(
            (theta.count_estimate() - 24.0).abs() < 1e-9,
            "carried 3.0 reaches both shards: {}",
            theta.count_estimate()
        );
        pool.reset();
        let outs = pool.sample_batch(&batch_of(&[(0, 8)]), 4);
        let theta: ThetaStore = outs.into_iter().collect();
        assert!((theta.count_estimate() - 8.0).abs() < 1e-9, "reset clears");
    }

    #[test]
    fn inline_single_worker_spawns_no_threads() {
        let mut pool = WorkerPool::with_threading(Allocation::Uniform, 1, 1, true);
        assert_eq!(pool.workers(), 1);
        assert!(!pool.is_threaded(), "one worker is always inline");
        let outs = pool.sample_batch(&batch_of(&[(0, 100)]), 10);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].sample.len(), 10);
        assert_eq!(outs[0].weights.get(s(0)), 10.0);
    }

    #[test]
    fn empty_and_tiny_batches_are_fine() {
        let mut pool = WorkerPool::with_threading(Allocation::Uniform, 4, 9, true);
        let outs = pool.sample_batch(&Batch::new(), 10);
        assert_eq!(outs.len(), 4);
        assert!(outs.iter().all(|o| o.sample.is_empty()));
        // Fewer items than shards: trailing shards see empty slices.
        let outs = pool.sample_batch(&batch_of(&[(0, 2)]), 10);
        let total: usize = outs.iter().map(|o| o.sample.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn drop_joins_all_workers_promptly() {
        // Create and drop many threaded pools; leaked threads would make
        // this explode under the high --test-threads CI run.
        for seed in 0..20u64 {
            let mut pool = WorkerPool::with_threading(Allocation::Uniform, 4, seed, true);
            assert!(pool.is_threaded());
            pool.sample_batch(&batch_of(&[(0, 1_000)]), 100);
            drop(pool);
        }
    }

    #[test]
    fn pool_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<WorkerPool>();
    }
}
