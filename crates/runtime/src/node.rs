//! Sampling nodes: the per-node behaviour of Algorithm 2, parameterised by
//! sampling strategy so the same pipeline can run ApproxIoT, the SRS
//! baseline or the native (no sampling) execution.

use crate::pool::WorkerPool;
use crate::query::QuerySpec;
use approxiot_core::{
    Allocation, Batch, ColumnarBatch, CostFunction, SamplingBudget, SketchConfig, SrsSampler,
    StratumSummaries, StreamItem, WhsSampler,
};
use approxiot_streams::TumblingWindow;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// The sampling strategy a node runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Weighted hierarchical sampling (the paper's contribution).
    Whs {
        /// Per-stratum reservoir allocation policy.
        allocation: Allocation,
    },
    /// Coin-flip simple random sampling (the paper's baseline).
    Srs,
    /// No sampling: forward everything (the paper's "native execution").
    Native,
    /// Mergeable per-stratum summaries instead of sampled items: leaves
    /// fold their input into moment/KLL/Space-Saving summaries, inner
    /// nodes merge child summaries with no per-item work, and the root
    /// answers queries from the merged state. Frame size per hop is
    /// `O(strata · k)`, independent of the item rate.
    Sketch(SketchConfig),
}

impl Strategy {
    /// The default ApproxIoT strategy (uniform allocation).
    pub fn whs() -> Self {
        Strategy::Whs {
            allocation: Allocation::Uniform,
        }
    }

    /// The sketch strategy with the default summary sizes.
    pub fn sketch() -> Self {
        Strategy::Sketch(SketchConfig::default())
    }

    /// Short label for reports ("approxiot", "srs", "native", "sketch").
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Whs { .. } => "approxiot",
            Strategy::Srs => "srs",
            Strategy::Native => "native",
            Strategy::Sketch(_) => "sketch",
        }
    }

    /// Whether the strategy runs on sampled items (WHS/SRS/native) rather
    /// than mergeable summaries.
    pub fn ships_items(&self) -> bool {
        !matches!(self, Strategy::Sketch(_))
    }

    /// Whether a root running this strategy can answer `query`.
    ///
    /// Item strategies reconstruct every query from the weighted sample.
    /// Sketch strata answer moments-backed queries always, but
    /// `Quantile(q)` needs a KLL sketch (`kll_k > 0`) and `TopK(k)` a
    /// Space-Saving summary (`heavy_capacity > 0`) — a
    /// [`SketchConfig::counts_only`] topology supports neither. The
    /// [`crate::Driver`] front door rejects unsupported combinations with
    /// [`crate::EngineError::UnsupportedQuery`] instead of answering
    /// wrong-or-empty.
    pub fn supports(&self, query: &QuerySpec) -> bool {
        match self {
            Strategy::Whs { .. } | Strategy::Srs | Strategy::Native => true,
            Strategy::Sketch(config) => match query {
                QuerySpec::Sum
                | QuerySpec::Mean
                | QuerySpec::Count
                | QuerySpec::SumPerStratum
                | QuerySpec::MeanPerStratum
                | QuerySpec::CountPerStratum => true,
                QuerySpec::Quantile(_) => config.kll_k > 0,
                QuerySpec::TopK(_) => config.heavy_capacity > 0,
            },
        }
    }
}

/// What a node emits to its parent: sampled items (WHS/SRS/native) or
/// per-window mergeable summaries (sketch). The payload-typed output is
/// what lets one tree mix per-item and per-summary hops without the
/// engines assuming "always a [`Batch`]".
#[derive(Debug, Clone, PartialEq)]
pub enum NodePayload {
    /// A `(W_out, sample)` batch of items.
    Items(Batch),
    /// Per-stratum summaries keyed by window index, in window order.
    Summaries(Vec<(u64, StratumSummaries)>),
}

impl NodePayload {
    /// Returns `true` when the payload carries nothing.
    pub fn is_empty(&self) -> bool {
        match self {
            NodePayload::Items(batch) => batch.is_empty(),
            NodePayload::Summaries(windows) => windows.iter().all(|(_, s)| s.is_empty()),
        }
    }

    /// The item batch, if this is an items payload.
    pub fn items(&self) -> Option<&Batch> {
        match self {
            NodePayload::Items(batch) => Some(batch),
            NodePayload::Summaries(_) => None,
        }
    }

    /// The windowed summaries, if this is a summary payload.
    pub fn summaries(&self) -> Option<&[(u64, StratumSummaries)]> {
        match self {
            NodePayload::Items(_) => None,
            NodePayload::Summaries(windows) => Some(windows),
        }
    }
}

/// The sketch identity of one stream item: a deterministic function of the
/// item alone (never of arrival order or node placement), so every engine
/// and every node hashes the same item to the same KLL priority.
#[inline]
pub(crate) fn sketch_identity(item: &StreamItem) -> u64 {
    item.seq ^ item.source_ts.rotate_left(32)
}

/// Merges windowed summaries into a window-keyed accumulator. Summary
/// merge is associative and commutative bit-for-bit, so accumulation
/// order never shows in the result.
pub fn merge_windowed_summaries(
    acc: &mut BTreeMap<u64, StratumSummaries>,
    input: &[(u64, StratumSummaries)],
) {
    for (window, summaries) in input {
        match acc.entry(*window) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(summaries),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(summaries.clone());
            }
        }
    }
}

/// One sampling node of the logical tree (Algorithm 2, lines 2–19).
///
/// For every incoming `(W_in, items)` batch, the node derives its sample
/// size from the cost function and produces a `(W_out, sample)` batch for
/// its parent.
///
/// # Examples
///
/// ```
/// use approxiot_core::{Batch, StratumId, StreamItem};
/// use approxiot_runtime::{SamplingNode, Strategy};
///
/// let mut node = SamplingNode::new(Strategy::whs(), 0.5, 42)?;
/// let batch = Batch::from_items(
///     (0..100).map(|i| StreamItem::new(StratumId::new(0), i as f64)).collect(),
/// );
/// let out = node.process_batch(&batch);
/// assert_eq!(out.len(), 50);
/// # Ok::<(), approxiot_core::BudgetError>(())
/// ```
#[derive(Debug)]
pub struct SamplingNode {
    strategy: Strategy,
    budget: SamplingBudget,
    whs: WhsSampler,
    srs: Option<SrsSampler>,
    /// §III-E parallel sharding engine, present when the node was built
    /// with more than one worker and runs the WHS strategy: a persistent
    /// [`WorkerPool`] whose shard threads live as long as the node.
    parallel: Option<WorkerPool>,
    /// The summary path (`Some` only for sketch nodes): config, the
    /// topology-wide sketch seed, and the window-keyed accumulator that
    /// absorbed payloads merge into until [`SamplingNode::take_summaries`].
    sketch: Option<SketchState>,
    rng: StdRng,
    items_in: u64,
    items_out: u64,
}

/// The per-node state of the summary path.
#[derive(Debug)]
struct SketchState {
    config: SketchConfig,
    /// The topology-wide sketch seed ([`crate::Topology::sketch_seed`]):
    /// shared by every node so summaries merge (KLL requires it).
    seed: u64,
    /// Window-keyed merged summaries absorbed since the last take.
    acc: BTreeMap<u64, StratumSummaries>,
}

impl SamplingNode {
    /// Creates a node keeping `fraction` of its input under `strategy`.
    ///
    /// # Errors
    ///
    /// Returns [`approxiot_core::BudgetError`] unless `0 < fraction <= 1`.
    pub fn new(
        strategy: Strategy,
        fraction: f64,
        seed: u64,
    ) -> Result<Self, approxiot_core::BudgetError> {
        SamplingNode::with_workers(strategy, fraction, seed, 1)
    }

    /// Creates a node whose WHS sampling runs on `workers` parallel shards
    /// (the paper's §III-E distributed execution). `workers == 1` is the
    /// plain single-threaded node; non-WHS strategies ignore the worker
    /// count (their samplers are per-item and already cheap).
    ///
    /// # Errors
    ///
    /// Returns [`approxiot_core::BudgetError`] unless `0 < fraction <= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_workers(
        strategy: Strategy,
        fraction: f64,
        seed: u64,
        workers: usize,
    ) -> Result<Self, approxiot_core::BudgetError> {
        assert!(workers > 0, "workers must be positive");
        let budget = SamplingBudget::new(fraction)?;
        // The budget already validated the (0, 1] domain SrsSampler requires.
        let srs = match strategy {
            // analysis: allow(P1, reason = "SamplingBudget::new above already validated the (0, 1] domain")
            Strategy::Srs => Some(SrsSampler::new(fraction).expect("fraction validated by budget")),
            _ => None,
        };
        let allocation = match strategy {
            Strategy::Whs { allocation } => allocation,
            _ => Allocation::Uniform,
        };
        let parallel = match strategy {
            Strategy::Whs { allocation } if workers > 1 => {
                // Deterministic shard seeds derive from the node seed; the
                // mixing constant keeps them disjoint from the node RNG.
                // The pool seeds shard i with `seed ^ i` exactly like the
                // scoped-thread sampler did, so fixed-seed pipeline output
                // is unchanged by the engine swap.
                Some(WorkerPool::new(allocation, workers, seed ^ 0x5A4D_BEEF))
            }
            _ => None,
        };
        let sketch = match strategy {
            Strategy::Sketch(config) => Some(SketchState {
                config,
                seed,
                acc: BTreeMap::new(),
            }),
            _ => None,
        };
        Ok(SamplingNode {
            strategy,
            budget,
            whs: WhsSampler::new(allocation),
            srs,
            parallel,
            sketch,
            // D3-allowlisted: `seed` comes from Topology::node_seed.
            #[allow(clippy::disallowed_methods)]
            rng: StdRng::seed_from_u64(seed),
            items_in: 0,
            items_out: 0,
        })
    }

    /// The node's strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Worker shards the node samples with (1 = unsharded).
    pub fn workers(&self) -> usize {
        self.parallel.as_ref().map_or(1, WorkerPool::workers)
    }

    /// The node's sampling fraction.
    pub fn fraction(&self) -> f64 {
        self.budget.fraction()
    }

    /// Replaces the sampling fraction (adaptive feedback, §IV).
    ///
    /// # Errors
    ///
    /// Returns [`approxiot_core::BudgetError`] unless `0 < fraction <= 1`.
    pub fn set_fraction(&mut self, fraction: f64) -> Result<(), approxiot_core::BudgetError> {
        self.budget = SamplingBudget::new(fraction)?;
        if self.srs.is_some() {
            // analysis: allow(P1, reason = "SamplingBudget::new above already validated the (0, 1] domain")
            self.srs = Some(SrsSampler::new(fraction).expect("same domain as budget"));
        }
        Ok(())
    }

    /// Processes one incoming batch into the batch forwarded upstream.
    ///
    /// # Panics
    ///
    /// Panics on a sketch node — summary nodes forward summaries, not
    /// items; use [`SamplingNode::process_payload`].
    pub fn process_batch(&mut self, batch: &Batch) -> Batch {
        self.items_in += batch.len() as u64;
        let out = match self.strategy {
            Strategy::Whs { .. } => {
                let size = self.budget.sample_size(batch.len());
                self.whs
                    .sample_batch(batch, size, &mut self.rng)
                    .into_batch()
            }
            Strategy::Srs => {
                let srs = self
                    .srs
                    .as_ref()
                    // analysis: allow(P1, reason = "constructor creates the sampler whenever strategy is Srs")
                    .expect("srs sampler present for Srs strategy");
                Batch::from_items(srs.sample(batch, &mut self.rng))
            }
            Strategy::Native => batch.clone(),
            Strategy::Sketch(_) => {
                // analysis: allow(P1, reason = "documented contract panic; the Driver front door never routes item batches to sketch nodes")
                panic!("sketch nodes forward summaries, not item batches; use process_payload")
            }
        };
        self.items_out += out.len() as u64;
        out
    }

    /// Like [`SamplingNode::process_batch`], but borrows the input
    /// mutably so native (no-sampling) nodes can **move** it to the output
    /// instead of cloning every item. WHS/SRS nodes sample from the batch
    /// and leave it untouched; native nodes leave it empty. Either way the
    /// caller keeps the storage and can recycle it (the pipeline returns
    /// both input and output batches to a [`approxiot_core::BatchPool`]).
    pub fn process_batch_mut(&mut self, batch: &mut Batch) -> Batch {
        if matches!(self.strategy, Strategy::Native) {
            let out = std::mem::take(batch);
            self.items_in += out.len() as u64;
            self.items_out += out.len() as u64;
            return out;
        }
        self.process_batch(batch)
    }

    /// Processes one batch using `workers` independent shards — the paper's
    /// §III-E distributed execution. Each shard samples its portion into a
    /// local reservoir of at most `N/workers` slots with its own arrival
    /// counter, producing one output batch per shard; the root's `Θ`
    /// handling accepts multiple pairs per stratum, so nothing else
    /// changes.
    ///
    /// Only meaningful for the WHS strategy; SRS and native are per-item
    /// and fall back to a single [`SamplingNode::process_batch`] output.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn process_batch_sharded(&mut self, batch: &Batch, workers: usize) -> Vec<Batch> {
        assert!(workers > 0, "workers must be positive");
        match self.strategy {
            Strategy::Whs { allocation } => {
                self.items_in += batch.len() as u64;
                let size = self.budget.sample_size(batch.len());
                // Resolve carried weights exactly like the unsharded path.
                let resolved = self.whs.resolve_weights(batch);
                let outs = approxiot_core::sharded_whs_sample(
                    batch,
                    size,
                    &resolved,
                    allocation,
                    workers,
                    &mut self.rng,
                );
                outs.into_iter()
                    .filter(|o| !o.sample.is_empty())
                    .map(|o| {
                        self.items_out += o.sample.len() as u64;
                        o.into_batch()
                    })
                    .collect()
            }
            _ => vec![self.process_batch(batch)],
        }
    }

    /// Processes one batch on the node's persistent [`WorkerPool`]
    /// (§III-E): one output batch per worker shard, sampled concurrently
    /// on the pool's long-lived threads (no per-batch spawn).
    ///
    /// Falls back to a single [`SamplingNode::process_batch`] output when
    /// the node was built with one worker or runs a non-WHS strategy.
    /// Carried weights share the same store as the unsharded path, so the
    /// two entry points can be mixed freely.
    pub fn process_batch_parallel(&mut self, batch: &Batch) -> Vec<Batch> {
        let Some(parallel) = self.parallel.as_mut() else {
            return vec![self.process_batch(batch)];
        };
        self.items_in += batch.len() as u64;
        let size = self.budget.sample_size(batch.len());
        // Resolve carried weights through the node's single weight store.
        let resolved = self.whs.resolve_weights(batch);
        let outs = parallel.sample_with_weights(&batch.items, size, &resolved);
        outs.into_iter()
            .filter(|o| !o.sample.is_empty())
            .map(|o| {
                self.items_out += o.sample.len() as u64;
                o.into_batch()
            })
            .collect()
    }

    /// Processes one incoming **columnar** batch — the hot-path twin of
    /// [`SamplingNode::process_batch`], running the flat-slice kernels.
    /// Bit-identical output for the same logical items and node state:
    /// every strategy consumes the node RNG exactly like its AoS
    /// counterpart.
    pub fn process_columns(&mut self, batch: &ColumnarBatch) -> ColumnarBatch {
        self.items_in += batch.len() as u64;
        let out = match self.strategy {
            Strategy::Whs { .. } => {
                let size = self.budget.sample_size(batch.len());
                let mut out = ColumnarBatch::new();
                self.whs
                    .sample_columns_into(batch, size, &mut out, &mut self.rng);
                out
            }
            Strategy::Srs => {
                let srs = self
                    .srs
                    .as_ref()
                    // analysis: allow(P1, reason = "constructor creates the sampler whenever strategy is Srs")
                    .expect("srs sampler present for Srs strategy");
                let mut out = ColumnarBatch::new();
                srs.sample_columns_into(batch.view(), &mut out, &mut self.rng);
                out
            }
            Strategy::Native => batch.clone(),
            Strategy::Sketch(_) => {
                // analysis: allow(P1, reason = "documented contract panic; the Driver front door never routes item batches to sketch nodes")
                panic!("sketch nodes forward summaries, not item batches; use process_payload")
            }
        };
        self.items_out += out.len() as u64;
        out
    }

    /// Like [`SamplingNode::process_columns`], but borrows the input
    /// mutably so native (no-sampling) nodes can **move** the columns to
    /// the output instead of cloning them — the columnar twin of
    /// [`SamplingNode::process_batch_mut`].
    pub fn process_columns_mut(&mut self, batch: &mut ColumnarBatch) -> ColumnarBatch {
        if matches!(self.strategy, Strategy::Native) {
            let out = std::mem::take(batch);
            self.items_in += out.len() as u64;
            self.items_out += out.len() as u64;
            return out;
        }
        self.process_columns(batch)
    }

    /// Processes one columnar batch on the node's persistent
    /// [`WorkerPool`] (§III-E) — the columnar twin of
    /// [`SamplingNode::process_batch_parallel`], with per-shard `(start,
    /// end)` ranges over the columns instead of item sub-slices. Shard
    /// outputs are bit-identical to the AoS path for the same logical
    /// items; carried weights share the same store, so the entry points
    /// can be mixed freely.
    pub fn process_columns_parallel(&mut self, batch: &ColumnarBatch) -> Vec<ColumnarBatch> {
        let Some(parallel) = self.parallel.as_mut() else {
            return vec![self.process_columns(batch)];
        };
        self.items_in += batch.len() as u64;
        let size = self.budget.sample_size(batch.len());
        // Resolve carried weights through the node's single weight store.
        let resolved = self.whs.resolve_weights_columns(batch);
        let outs = parallel.sample_columns_with_weights(batch.view(), size, &resolved);
        outs.into_iter()
            .filter(|o| !o.is_empty())
            .inspect(|o| {
                self.items_out += o.len() as u64;
            })
            .collect()
    }

    /// The payload front door: item-strategy nodes sample an items payload
    /// into forwarded item payloads immediately (one call, its outputs);
    /// sketch nodes **absorb** the payload — items are folded into the
    /// window-keyed summary accumulator, child summaries are merged — and
    /// return nothing until [`SamplingNode::take_summaries`] drains the
    /// merged state (one payload per interval, the engines' forwarding
    /// unit).
    ///
    /// # Panics
    ///
    /// Panics when an item-strategy node is handed a summaries payload —
    /// the [`crate::Driver`] front door rejects mixed topologies before
    /// any data flows.
    pub fn process_payload(
        &mut self,
        payload: &NodePayload,
        scheme: TumblingWindow,
    ) -> Vec<NodePayload> {
        if self.sketch.is_some() {
            self.absorb_payload(payload, scheme);
            return Vec::new();
        }
        let batch = payload
            .items()
            // analysis: allow(P1, reason = "documented contract panic; the Driver validates topology homogeneity before any payload flows")
            .expect("item-strategy nodes take item payloads; sketch topologies are homogeneous");
        self.process_batch_parallel(batch)
            .into_iter()
            .filter(|out| !out.is_empty())
            .map(NodePayload::Items)
            .collect()
    }

    /// Folds one item batch into fresh per-window summaries without
    /// touching the accumulator — the stateless leaf kernel behind
    /// [`SamplingNode::process_payload`], exposed for tests and the
    /// replay pipeline.
    ///
    /// # Panics
    ///
    /// Panics unless the node runs the sketch strategy.
    pub fn summarize_batch(
        &mut self,
        batch: &Batch,
        scheme: TumblingWindow,
    ) -> Vec<(u64, StratumSummaries)> {
        let state = self
            .sketch
            .as_ref()
            // analysis: allow(P1, reason = "documented # Panics contract; callers are sketch-strategy nodes by construction")
            .expect("summarize_batch requires the sketch strategy");
        let (config, seed) = (state.config, state.seed);
        self.items_in += batch.len() as u64;
        let mut windows: BTreeMap<u64, StratumSummaries> = BTreeMap::new();
        for item in &batch.items {
            windows
                .entry(scheme.index_of(item.source_ts))
                .or_insert_with(|| StratumSummaries::new(config, seed))
                .observe(item.stratum, sketch_identity(item), item.value);
        }
        windows.into_iter().filter(|(_, s)| !s.is_empty()).collect()
    }

    /// Absorbs one payload into the sketch accumulator: items are
    /// summarized in place, child summaries are merged per window.
    ///
    /// # Panics
    ///
    /// Panics unless the node runs the sketch strategy.
    pub fn absorb_payload(&mut self, payload: &NodePayload, scheme: TumblingWindow) {
        match payload {
            NodePayload::Items(batch) => self.absorb_batch(batch, scheme),
            NodePayload::Summaries(windows) => {
                let state = self
                    .sketch
                    .as_mut()
                    // analysis: allow(P1, reason = "documented # Panics contract; callers are sketch-strategy nodes by construction")
                    .expect("absorb_payload requires the sketch strategy");
                merge_windowed_summaries(&mut state.acc, windows);
            }
        }
    }

    /// Absorbs one raw item batch into the sketch accumulator — the leaf
    /// operation, [`SamplingNode::absorb_payload`]'s item arm without the
    /// payload wrapper.
    ///
    /// # Panics
    ///
    /// Panics unless the node runs the sketch strategy.
    pub fn absorb_batch(&mut self, batch: &Batch, scheme: TumblingWindow) {
        self.items_in += batch.len() as u64;
        let state = self
            .sketch
            .as_mut()
            // analysis: allow(P1, reason = "documented # Panics contract; callers are sketch-strategy nodes by construction")
            .expect("absorb_batch requires the sketch strategy");
        let (config, seed) = (state.config, state.seed);
        for item in &batch.items {
            state
                .acc
                .entry(scheme.index_of(item.source_ts))
                .or_insert_with(|| StratumSummaries::new(config, seed))
                .observe(item.stratum, sketch_identity(item), item.value);
        }
    }

    /// Drains the sketch accumulator: the merged per-window summaries
    /// absorbed since the last take, in window order (empty windows are
    /// never materialised). Returns an empty vector on item-strategy
    /// nodes, which accumulate nothing.
    pub fn take_summaries(&mut self) -> Vec<(u64, StratumSummaries)> {
        let Some(state) = self.sketch.as_mut() else {
            return Vec::new();
        };
        std::mem::take(&mut state.acc)
            .into_iter()
            .filter(|(_, s)| !s.is_empty())
            .collect()
    }

    /// Items received so far.
    pub fn items_in(&self) -> u64 {
        self.items_in
    }

    /// Items forwarded so far.
    pub fn items_out(&self) -> u64 {
        self.items_out
    }

    /// Clears carried weights, the sketch accumulator and counters
    /// (between independent runs).
    pub fn reset(&mut self) {
        self.whs.reset();
        if let Some(state) = self.sketch.as_mut() {
            state.acc.clear();
        }
        self.items_in = 0;
        self.items_out = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_core::{StratumId, StreamItem, WeightMap};

    fn batch(counts: &[(u32, usize)]) -> Batch {
        let mut items = Vec::new();
        for &(stratum, n) in counts {
            for k in 0..n {
                items.push(StreamItem::with_meta(
                    StratumId::new(stratum),
                    1.0,
                    k as u64,
                    0,
                ));
            }
        }
        Batch::from_items(items)
    }

    #[test]
    fn whs_node_samples_to_budget() {
        let mut node = SamplingNode::new(Strategy::whs(), 0.1, 1).expect("valid");
        let out = node.process_batch(&batch(&[(0, 1000)]));
        assert_eq!(out.len(), 100);
        assert_eq!(out.weights.get(StratumId::new(0)), 10.0);
        assert_eq!(node.items_in(), 1000);
        assert_eq!(node.items_out(), 100);
    }

    #[test]
    fn srs_node_flips_coins() {
        let mut node = SamplingNode::new(Strategy::Srs, 0.5, 2).expect("valid");
        let out = node.process_batch(&batch(&[(0, 10_000)]));
        assert!(
            (out.len() as f64 - 5_000.0).abs() < 300.0,
            "got {}",
            out.len()
        );
        assert!(out.weights.is_empty(), "SRS carries no weight metadata");
    }

    #[test]
    fn native_node_is_identity() {
        let mut node = SamplingNode::new(Strategy::Native, 1.0, 3).expect("valid");
        let input = batch(&[(0, 17), (1, 3)]);
        let out = node.process_batch(&input);
        assert_eq!(out, input);
    }

    #[test]
    fn process_batch_mut_moves_native_input() {
        let mut node = SamplingNode::new(Strategy::Native, 1.0, 3).expect("valid");
        let mut input = batch(&[(0, 17)]);
        let ptr = input.items.as_ptr();
        let out = node.process_batch_mut(&mut input);
        assert_eq!(out.len(), 17);
        assert_eq!(out.items.as_ptr(), ptr, "moved, not cloned");
        assert!(input.is_empty(), "input contents consumed");
        assert_eq!(node.items_in(), 17);
        assert_eq!(node.items_out(), 17);
    }

    #[test]
    fn process_batch_mut_samples_whs_without_consuming() {
        let mut node = SamplingNode::new(Strategy::whs(), 0.1, 1).expect("valid");
        let mut input = batch(&[(0, 1000)]);
        let out = node.process_batch_mut(&mut input);
        assert_eq!(out.len(), 100);
        assert_eq!(input.len(), 1000, "sampled from, not consumed");
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::whs().label(), "approxiot");
        assert_eq!(Strategy::Srs.label(), "srs");
        assert_eq!(Strategy::Native.label(), "native");
        assert_eq!(Strategy::sketch().label(), "sketch");
    }

    #[test]
    fn supports_reflects_summary_capabilities() {
        use crate::query::QuerySpec;
        let all = [
            QuerySpec::Sum,
            QuerySpec::Mean,
            QuerySpec::Count,
            QuerySpec::SumPerStratum,
            QuerySpec::MeanPerStratum,
            QuerySpec::CountPerStratum,
            QuerySpec::Quantile(0.5),
            QuerySpec::TopK(3),
        ];
        for strategy in [Strategy::whs(), Strategy::Srs, Strategy::Native] {
            for spec in &all {
                assert!(strategy.supports(spec), "{} {spec}", strategy.label());
            }
            assert!(strategy.ships_items());
        }
        let sketch = Strategy::sketch();
        assert!(!sketch.ships_items());
        for spec in &all {
            assert!(sketch.supports(spec), "full config answers {spec}");
        }
        let counts = Strategy::Sketch(SketchConfig::counts_only());
        assert!(counts.supports(&QuerySpec::Sum));
        assert!(counts.supports(&QuerySpec::MeanPerStratum));
        assert!(!counts.supports(&QuerySpec::Quantile(0.5)));
        assert!(!counts.supports(&QuerySpec::TopK(3)));
    }

    #[test]
    fn sketch_node_absorbs_items_and_takes_windowed_summaries() {
        let scheme = TumblingWindow::new(std::time::Duration::from_secs(1));
        let mut node = SamplingNode::new(Strategy::sketch(), 1.0, 7).expect("valid");
        let mut items = Vec::new();
        for k in 0..10 {
            items.push(StreamItem::with_meta(StratumId::new(0), 2.0, k, 100));
        }
        items.push(StreamItem::with_meta(
            StratumId::new(1),
            5.0,
            0,
            1_500_000_000,
        ));
        let payload = NodePayload::Items(Batch::from_items(items));
        assert!(
            node.process_payload(&payload, scheme).is_empty(),
            "absorbed"
        );
        let windows = node.take_summaries();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].0, 0);
        assert_eq!(windows[0].1.count(), 10);
        assert_eq!(windows[0].1.sum(), 20.0);
        assert_eq!(windows[1].0, 1);
        assert_eq!(windows[1].1.sum(), 5.0);
        assert_eq!(node.items_in(), 11);
        assert!(node.take_summaries().is_empty(), "drained");
    }

    #[test]
    fn merging_child_summaries_matches_single_node_ingest() {
        // Two leaves + a merging mid must reproduce one node seeing the
        // union — the tree-shape invariance the sketch strategy rests on.
        let scheme = TumblingWindow::new(std::time::Duration::from_secs(1));
        let seed = 99;
        let mk = || SamplingNode::new(Strategy::sketch(), 1.0, seed).expect("valid");
        let (mut leaf_a, mut leaf_b, mut mid, mut single) = (mk(), mk(), mk(), mk());
        let batch_a = batch(&[(0, 50), (1, 20)]);
        let batch_b = batch(&[(0, 30), (2, 10)]);
        leaf_a.absorb_payload(&NodePayload::Items(batch_a.clone()), scheme);
        leaf_b.absorb_payload(&NodePayload::Items(batch_b.clone()), scheme);
        mid.absorb_payload(&NodePayload::Summaries(leaf_a.take_summaries()), scheme);
        mid.absorb_payload(&NodePayload::Summaries(leaf_b.take_summaries()), scheme);
        single.absorb_payload(&NodePayload::Items(batch_a), scheme);
        single.absorb_payload(&NodePayload::Items(batch_b), scheme);
        assert_eq!(mid.take_summaries(), single.take_summaries());
    }

    #[test]
    #[should_panic(expected = "sketch nodes forward summaries")]
    fn sketch_node_rejects_the_item_path() {
        let mut node = SamplingNode::new(Strategy::sketch(), 1.0, 7).expect("valid");
        let _ = node.process_batch(&batch(&[(0, 1)]));
    }

    #[test]
    fn invalid_fraction_is_rejected() {
        assert!(SamplingNode::new(Strategy::whs(), 0.0, 0).is_err());
        assert!(SamplingNode::new(Strategy::Srs, 1.5, 0).is_err());
    }

    #[test]
    fn set_fraction_changes_behaviour() {
        let mut node = SamplingNode::new(Strategy::whs(), 0.1, 4).expect("valid");
        node.set_fraction(1.0).expect("valid");
        let out = node.process_batch(&batch(&[(0, 100)]));
        assert_eq!(out.len(), 100);
        assert!(node.set_fraction(2.0).is_err());
    }

    #[test]
    fn whs_node_carries_weights_between_batches() {
        let mut node = SamplingNode::new(Strategy::whs(), 0.5, 5).expect("valid");
        let mut first = batch(&[(0, 4)]);
        first.weights.set(StratumId::new(0), 2.0);
        let out1 = node.process_batch(&first);
        assert_eq!(out1.weights.get(StratumId::new(0)), 4.0, "2 * 4/2");
        // Weightless follow-up uses the carried 2.0.
        let out2 = node.process_batch(&batch(&[(0, 4)]));
        assert_eq!(out2.weights.get(StratumId::new(0)), 4.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut node = SamplingNode::new(Strategy::whs(), 0.5, 6).expect("valid");
        let mut wb = batch(&[(0, 2)]);
        wb.weights = WeightMap::new();
        wb.weights.set(StratumId::new(0), 8.0);
        node.process_batch(&wb);
        node.reset();
        assert_eq!(node.items_in(), 0);
        // 2 items into ceil(0.5*2) = 1 slot: with the carried 8.0 cleared the
        // input weight is 1, so the output weight is 1 * 2/1 = 2 (not 16).
        let out = node.process_batch(&batch(&[(0, 2)]));
        assert_eq!(out.weights.get(StratumId::new(0)), 2.0, "carry cleared");
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;
    use approxiot_core::{StratumId, StreamItem, ThetaStore, WhsOutput};

    fn batch(n: usize) -> Batch {
        Batch::from_items(
            (0..n)
                .map(|k| StreamItem::with_meta(StratumId::new(0), 1.0, k as u64, 0))
                .collect(),
        )
    }

    #[test]
    fn sharded_node_emits_one_batch_per_worker() {
        let mut node = SamplingNode::new(Strategy::whs(), 0.1, 1).expect("valid");
        let outs = node.process_batch_sharded(&batch(1_000), 4);
        assert_eq!(outs.len(), 4);
        let total: usize = outs.iter().map(Batch::len).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn sharded_outputs_reconstruct_the_count() {
        let mut node = SamplingNode::new(Strategy::whs(), 0.2, 2).expect("valid");
        let outs = node.process_batch_sharded(&batch(500), 5);
        let theta: ThetaStore = outs
            .into_iter()
            .map(|b| WhsOutput {
                weights: b.weights,
                sample: b.items,
            })
            .collect();
        assert!((theta.count_estimate() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn non_whs_strategies_fall_back_to_single_output() {
        let mut node = SamplingNode::new(Strategy::Native, 1.0, 3).expect("valid");
        let outs = node.process_batch_sharded(&batch(10), 4);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].len(), 10);
    }

    #[test]
    fn sharded_node_honours_carried_weights() {
        let mut node = SamplingNode::new(Strategy::whs(), 0.5, 4).expect("valid");
        let mut first = batch(4);
        first.weights.set(StratumId::new(0), 3.0);
        node.process_batch_sharded(&first, 2);
        // Weightless follow-up carries the 3.0 into every shard.
        let outs = node.process_batch_sharded(&batch(8), 2);
        let theta: ThetaStore = outs
            .into_iter()
            .map(|b| WhsOutput {
                weights: b.weights,
                sample: b.items,
            })
            .collect();
        assert!(
            (theta.count_estimate() - 24.0).abs() < 1e-9,
            "3.0 * 8 items"
        );
    }

    #[test]
    #[should_panic(expected = "workers must be positive")]
    fn zero_workers_rejected() {
        let mut node = SamplingNode::new(Strategy::whs(), 0.5, 5).expect("valid");
        node.process_batch_sharded(&batch(1), 0);
    }

    #[test]
    fn parallel_node_emits_one_batch_per_worker() {
        let mut node = SamplingNode::with_workers(Strategy::whs(), 0.1, 1, 4).expect("valid");
        assert_eq!(node.workers(), 4);
        let outs = node.process_batch_parallel(&batch(100_000));
        assert_eq!(outs.len(), 4);
        let total: usize = outs.iter().map(Batch::len).sum();
        assert_eq!(total, 10_000);
        assert_eq!(node.items_out(), 10_000);
    }

    #[test]
    fn parallel_node_outputs_reconstruct_the_count() {
        let mut node = SamplingNode::with_workers(Strategy::whs(), 0.2, 2, 5).expect("valid");
        let outs = node.process_batch_parallel(&batch(50_000));
        let theta: ThetaStore = outs
            .into_iter()
            .map(|b| WhsOutput {
                weights: b.weights,
                sample: b.items,
            })
            .collect();
        assert!((theta.count_estimate() - 50_000.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_node_with_one_worker_falls_back_to_single_output() {
        let mut node = SamplingNode::with_workers(Strategy::whs(), 0.5, 3, 1).expect("valid");
        assert_eq!(node.workers(), 1);
        let outs = node.process_batch_parallel(&batch(10));
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].len(), 5);
    }

    #[test]
    fn columnar_node_bit_identical_to_aos_node() {
        // Every strategy, unsharded and parallel: processing the same
        // logical batch through the columnar entries must reproduce the
        // AoS entries exactly.
        for strategy in [Strategy::whs(), Strategy::Srs, Strategy::Native] {
            let mut aos = SamplingNode::new(strategy, 0.25, 9).expect("valid");
            let mut soa = SamplingNode::new(strategy, 0.25, 9).expect("valid");
            for round in 0..3usize {
                let b = batch(1_000 + round);
                let cols = ColumnarBatch::from_batch(&b);
                let a = aos.process_batch(&b);
                let c = soa.process_columns(&cols);
                assert_eq!(c.to_batch(), a, "{}/round {round}", strategy.label());
            }
            assert_eq!(aos.items_in(), soa.items_in());
            assert_eq!(aos.items_out(), soa.items_out());
        }
        let mut aos = SamplingNode::with_workers(Strategy::whs(), 0.1, 1, 4).expect("valid");
        let mut soa = SamplingNode::with_workers(Strategy::whs(), 0.1, 1, 4).expect("valid");
        let b = batch(100_000);
        let cols = ColumnarBatch::from_batch(&b);
        let a = aos.process_batch_parallel(&b);
        let c = soa.process_columns_parallel(&cols);
        assert_eq!(a.len(), c.len());
        for (a, c) in a.into_iter().zip(c) {
            assert_eq!(c.to_batch(), a, "parallel shard outputs diverged");
        }
    }

    #[test]
    fn process_columns_mut_moves_native_columns() {
        let mut node = SamplingNode::new(Strategy::Native, 1.0, 3).expect("valid");
        let mut input = ColumnarBatch::from_batch(&batch(17));
        let ptr = input.strata.as_ptr();
        let out = node.process_columns_mut(&mut input);
        assert_eq!(out.len(), 17);
        assert_eq!(out.strata.as_ptr(), ptr, "moved, not cloned");
        assert!(input.is_empty(), "input contents consumed");
    }

    #[test]
    fn parallel_node_shares_carried_weights_with_unsharded_path() {
        let mut node = SamplingNode::with_workers(Strategy::whs(), 0.5, 4, 2).expect("valid");
        let mut first = batch(4);
        first.weights.set(StratumId::new(0), 3.0);
        // Seen on the *unsharded* path...
        node.process_batch(&first);
        // ...must carry into the parallel path.
        let outs = node.process_batch_parallel(&batch(8));
        let theta: ThetaStore = outs
            .into_iter()
            .map(|b| WhsOutput {
                weights: b.weights,
                sample: b.items,
            })
            .collect();
        assert!(
            (theta.count_estimate() - 24.0).abs() < 1e-9,
            "3.0 * 8 items"
        );
    }
}
