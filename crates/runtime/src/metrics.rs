//! Run-report metrics: the one place a [`RunReport`] is reduced to the
//! error / completeness / cost summary that used to be hand-rolled by
//! every consumer (`examples/chaos.rs`, ad-hoc bench code).
//!
//! Three kinds of consumers share this module:
//!
//! * the scenario-matrix **bench harness** (`approxiot-bench`, binary
//!   `harness`), which serializes a [`RunSummary`] per scenario and gates
//!   CI on the deterministic columns;
//! * **examples** like the chaos sweep, which print the same columns;
//! * **tests** pinning the fixed-seed determinism contract through
//!   [`results_bit_identical`].
//!
//! The error helpers compare a run against a reference — typically an
//! exact run (`Strategy::Native`, fraction `1.0`, no impairment) of the
//! same workload — via its per-window estimate map
//! ([`window_estimates`]), so "ground truth" is itself produced through
//! the engine front door rather than recomputed on the side.

use crate::engine::RunReport;
use approxiot_core::accuracy_loss;
use approxiot_streams::WindowId;
use std::collections::BTreeMap;
use std::time::Duration;

/// The scalar summary of one run: every column the scenario-matrix
/// harness records, computed one way.
///
/// At a fixed topology seed the estimate/completeness/byte/fault columns
/// are exactly reproducible (the engines are deterministic, and sharded
/// workers are bit-identical threaded or inline); only [`elapsed`] and
/// [`throughput_items_per_sec`] vary run to run.
///
/// [`elapsed`]: RunSummary::elapsed
/// [`throughput_items_per_sec`]: RunSummary::throughput_items_per_sec
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Windows the run emitted.
    pub windows: usize,
    /// Sum of the primary query's estimate over every window.
    pub estimate_total: f64,
    /// Mean per-window completeness fraction (`1.0` when no windows).
    pub mean_completeness: f64,
    /// Items lost in flight across every hop.
    pub dropped_items: u64,
    /// Extra item copies delivered across every hop.
    pub duplicated_items: u64,
    /// Items the root rejected past the allowed-lateness horizon.
    pub dropped_late: u64,
    /// Items pushed by the sources.
    pub source_items: u64,
    /// Wire bytes per hop, source-side hop first.
    pub hop_bytes: Vec<u64>,
    /// Bytes crossing the WAN segments sampling can save on (every hop
    /// past the first).
    pub wire_bytes: u64,
    /// Wall time from engine start to completion.
    pub elapsed: Duration,
    /// Source items per wall second.
    pub throughput_items_per_sec: f64,
}

impl RunSummary {
    /// Reduces a run report to its summary.
    pub fn of(report: &RunReport) -> Self {
        let windows = report.results.len();
        let mean_completeness = if windows == 0 {
            1.0
        } else {
            report.results.iter().map(|r| r.completeness).sum::<f64>() / windows as f64
        };
        RunSummary {
            windows,
            estimate_total: report.results.iter().map(|r| r.estimate.value).sum(),
            mean_completeness,
            dropped_items: report.faults.dropped_items(),
            duplicated_items: report.faults.duplicated_items(),
            dropped_late: report.results.iter().map(|r| r.dropped_late).sum(),
            source_items: report.source_items,
            hop_bytes: report.bytes.hops().to_vec(),
            wire_bytes: report.bytes.sampled_wire_bytes(),
            elapsed: report.elapsed,
            throughput_items_per_sec: report.throughput_items_per_sec,
        }
    }

    /// Relative error of the summed estimate against an exact total
    /// (the paper's headline [`accuracy_loss`] on the whole run).
    pub fn total_error_vs(&self, truth: f64) -> f64 {
        accuracy_loss(self.estimate_total, truth)
    }
}

/// The per-window primary-query estimates of a run, keyed by window id.
///
/// On an exact reference run this *is* the per-window ground truth the
/// harness measures every approximate scenario against.
pub fn window_estimates(report: &RunReport) -> BTreeMap<WindowId, f64> {
    report
        .results
        .iter()
        .map(|r| (r.window, r.estimate.value))
        .collect()
}

/// Mean per-window relative error of `report` against a reference's
/// per-window estimates (from [`window_estimates`] of an exact run).
///
/// Every reference window counts: a window the run failed to emit at all
/// contributes its full relative error (estimate `0.0`). Returns `0.0`
/// when the reference is empty.
pub fn mean_window_error(report: &RunReport, truths: &BTreeMap<WindowId, f64>) -> f64 {
    if truths.is_empty() {
        return 0.0;
    }
    let estimates = window_estimates(report);
    let total: f64 = truths
        .iter()
        .map(|(window, &truth)| accuracy_loss(estimates.get(window).copied().unwrap_or(0.0), truth))
        .sum();
    total / truths.len() as f64
}

/// Returns `true` when two runs produced the same windows with
/// bit-identical primary estimates and reconstructed counts — the
/// fixed-seed determinism contract (engine equivalence, the chaos
/// zero-loss control, harness reproducibility).
pub fn results_bit_identical(a: &RunReport, b: &RunReport) -> bool {
    a.results.len() == b.results.len()
        && a.results.iter().zip(&b.results).all(|(x, y)| {
            x.window == y.window
                && x.estimate.value.to_bits() == y.estimate.value.to_bits()
                && x.count_hat.to_bits() == y.count_hat.to_bits()
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QuerySet;
    use crate::topology::{LayerSpec, Topology};
    use crate::Driver;
    use approxiot_core::{Batch, StratumId, StreamItem};
    use approxiot_net::ImpairmentSpec;

    const SEC: u64 = 1_000_000_000;

    fn interval(sources: usize, n: usize, value: f64, ts: u64) -> Vec<Batch> {
        (0..sources)
            .map(|s| {
                Batch::from_items(
                    (0..n)
                        .map(|k| {
                            StreamItem::with_meta(StratumId::new(s as u32), value, k as u64, ts)
                        })
                        .collect(),
                )
            })
            .collect()
    }

    fn topology(fraction: f64, impaired: bool) -> Topology {
        let mut b = Topology::builder()
            .sources(4)
            .layer(LayerSpec::new(2))
            .layer(LayerSpec::new(1))
            .overall_fraction(fraction)
            .seed(9);
        if impaired {
            b = b.impair_all_hops(ImpairmentSpec::none().loss(0.2));
        }
        b.build().expect("valid")
    }

    fn run(fraction: f64, impaired: bool) -> RunReport {
        Driver::sim(topology(fraction, impaired), QuerySet::default())
            .expect("valid")
            .run(&[interval(4, 200, 2.0, 10), interval(4, 200, 2.0, SEC + 10)])
            .expect("runs")
    }

    #[test]
    fn summary_reduces_a_clean_run() {
        let report = run(0.5, false);
        let summary = RunSummary::of(&report);
        assert_eq!(summary.windows, 2);
        assert_eq!(summary.source_items, 1600);
        assert_eq!(summary.mean_completeness, 1.0);
        assert_eq!(summary.dropped_items, 0);
        assert_eq!(summary.duplicated_items, 0);
        assert_eq!(summary.dropped_late, 0);
        assert_eq!(summary.hop_bytes.len(), 3);
        assert_eq!(
            summary.wire_bytes,
            summary.hop_bytes[1] + summary.hop_bytes[2]
        );
        // Constant values reconstruct the exact total.
        assert!(summary.total_error_vs(3200.0) < 1e-9);
        assert!(summary.throughput_items_per_sec > 0.0);
    }

    #[test]
    fn summary_counts_faults_on_an_impaired_run() {
        let report = run(1.0, true);
        let summary = RunSummary::of(&report);
        assert!(summary.dropped_items > 0, "20% loss over 3 hops drops");
        assert!(summary.mean_completeness < 1.0);
        assert!(summary.mean_completeness > 0.0);
    }

    #[test]
    fn window_estimates_key_by_window() {
        let exact = run(1.0, false);
        let truths = window_estimates(&exact);
        assert_eq!(truths.len(), 2);
        assert!((truths[&0] - 1600.0).abs() < 1e-9);
        assert!((truths[&1] - 1600.0).abs() < 1e-9);
    }

    #[test]
    fn mean_window_error_is_zero_against_self_and_positive_under_loss() {
        let exact = run(1.0, false);
        let truths = window_estimates(&exact);
        assert_eq!(mean_window_error(&exact, &truths), 0.0);
        let lossy = run(1.0, true);
        let err = mean_window_error(&lossy, &truths);
        assert!(err.is_finite());
        // Constant-valued strata stay exact in expectation, but dropped
        // frames make the realized estimate differ from the exact one.
        assert!(err > 0.0, "loss must show up as window error: {err}");
        assert_eq!(mean_window_error(&exact, &BTreeMap::new()), 0.0);
    }

    #[test]
    fn mean_window_error_charges_missing_windows() {
        let exact = run(1.0, false);
        let mut truths = window_estimates(&exact);
        truths.insert(7, 100.0); // a window the run never produced
        let err = mean_window_error(&exact, &truths);
        assert!((err - 1.0 / 3.0).abs() < 1e-12, "one fully-missed window");
    }

    #[test]
    fn bit_identity_detects_equality_and_drift() {
        let a = run(0.5, false);
        let b = run(0.5, false);
        assert!(results_bit_identical(&a, &b), "fixed seed reproduces");
        let c = run(0.5, true);
        assert!(!results_bit_identical(&a, &c), "impairment changes bits");
    }
}
