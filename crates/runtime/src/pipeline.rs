//! The threaded execution engine: an arbitrary-depth [`Topology`] of edge
//! nodes connected through broker topics with WAN delay and capacity
//! emulation.
//!
//! This is the engine behind the wall-clock experiments — throughput
//! (Figure 6), bandwidth (Figure 7), latency vs sampling fraction
//! (Figure 8), latency vs window size (Figure 9) and the real-world
//! throughput runs (Figure 11b). Accuracy experiments use the faster
//! virtual-time [`crate::SimEngine`] instead; both engines run behind the
//! same [`crate::Driver`] front door.
//!
//! ## How the WAN is emulated
//!
//! * **Propagation delay**: producers stamp each record with its send time;
//!   consumers hold records until `send_time + hop_delay` before processing
//!   — equivalent to the paper's `tc` netem delay without a thread per
//!   link.
//! * **Capacity**: each sending node owns a token bucket
//!   ([`approxiot_net::RateLimiter`]) charged with the encoded frame size —
//!   the paper's 1 Gbps link cap, scaled down for laptop runs. Per-hop
//!   links come straight from the topology's [`crate::LinkSpec`]s.
//! * **Interval semantics**: in WHS mode each edge node buffers one
//!   computation window of input before sampling and forwarding — this is
//!   Algorithm 2's per-interval loop and the source of the window-size
//!   latency dependence in Figure 9. SRS and native nodes forward
//!   immediately (coin flips need no window).
//!
//! ## Fault injection
//!
//! Hops with a non-trivial [`crate::Topology::hop_impairment`] spec get
//! per-sender [`FaultInjector`] streams: the driver owns the hop-0
//! injectors (one per source), each edge node owns its outgoing hop's. In
//! wall-clock mode drops skip the limiter and the wire, duplicates send
//! twice, and jitter is added to the send timestamp so consumers hold the
//! frame longer (pair with `Topology::allowed_lateness` to keep jittered
//! stragglers countable). In deterministic mode the same decision streams
//! run against the canonical frame order, so impaired fixed-seed runs
//! remain bit-identical to the sim engine — see [`crate::fault`].
//!
//! ## Deterministic mode
//!
//! [`PipelineOptions::deterministic`] trades the WAN timing emulation for
//! bit-reproducibility: sources keep their event timestamps (no wall
//! re-stamping), records are keyed by interval, and every node defers
//! processing until its input closes, then replays it in the canonical
//! `(interval, child, arrival)` order — the exact order the virtual-time
//! engine uses. A fixed-seed topology therefore produces **identical
//! window estimates** on both engines, pinned by the engine-equivalence
//! integration test.
//!
//! ## Columnar wire path and buffer reuse
//!
//! The whole inter-node wire runs on the **v2 columnar frame** and the
//! [`ColumnarBatch`] hot-path representation: the driver encodes source
//! batches straight into v2 ([`BatchProducer::send_v2_to`]), edge nodes
//! decode frames into recycled column sets drawn from a per-node
//! [`ColumnarPool`] ([`decode_columns_into`] — four bulk copies per
//! frame), sample through the flat-slice kernels
//! ([`SamplingNode::process_columns_parallel`] /
//! [`SamplingNode::process_columns_mut`]) and forward with
//! [`BatchProducer::send_columns_to`]; the root accepts either version
//! through [`decode_batch_any_into`]. Sampling output is bit-identical to
//! the array-of-structs path (pinned by kernel-, pool- and node-level
//! parity tests), so fixed-seed estimates are unchanged — only the
//! per-item traversal cost drops.
//!
//! The wall-clock node loops are steady-state allocation-free end to end.
//! Every consumer polls through one reused record buffer
//! ([`Consumer::poll_into`] appending via the partition logs'
//! `read_into`), every producer encodes through its own reused scratch,
//! and both the input columns and the forwarded output batches return to
//! the pool once sent — native nodes even *move* the input columns to the
//! output instead of cloning them. Sharded WHS nodes sample on a
//! persistent [`crate::WorkerPool`] rather than a per-batch thread scope,
//! so thread lifecycle is off the per-batch path too; the
//! `pipeline_throughput` bench (results in `BENCH_pipeline.json`) measures
//! the combined effect at the system level.

use crate::churn::{ChurnDriver, ChurnSchedule, NodeChurnContext, NodeChurnState, NodeDisposition};
use crate::engine::{fill_completeness, Engine, EngineError, RunReport};
use crate::fault::{FaultInjector, FaultStats, HopFaults};
use crate::node::{NodePayload, SamplingNode, Strategy};
use crate::query::{Query, QuerySet};
use crate::root::{RootConfig, RootNode, WindowResult};
use crate::topology::{FractionSplit, LayerSpec, Topology};
use crate::tree::LayerBytes;
use approxiot_core::{Batch, BatchPool, BudgetError, ColumnarBatch, ColumnarPool, SketchConfig};
use approxiot_mq::codec::{
    decode_batch_any_into, decode_columns_into, decode_summaries_into, encoded_len_columns,
    encoded_len_summaries, encoded_len_v2,
};
use approxiot_mq::{BatchProducer, Broker, Consumer, MqError, Record, StartOffset};
use approxiot_net::RateLimiter;
use approxiot_streams::{TumblingWindow, WindowId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Configuration of a legacy three-stage pipeline run — the paper's
/// fixed `leaves → mids → root` shape, kept as a thin wrapper over
/// [`Topology`] ([`PipelineConfig::to_topology`]).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// First-layer edge nodes.
    pub leaves: usize,
    /// Second-layer edge nodes.
    pub mids: usize,
    /// Sampling strategy at every node.
    pub strategy: Strategy,
    /// End-to-end sampling fraction, divided across stages per `split`.
    pub overall_fraction: f64,
    /// How the fraction is divided across the three sampling stages.
    pub split: FractionSplit,
    /// Computation window (and WHS edge-buffering interval).
    pub window: Duration,
    /// Query at the root.
    pub query: Query,
    /// One-way delays per hop: sources→leaves, leaves→mids, mids→root.
    /// The paper's testbed: 10 ms, 20 ms, 40 ms (half of 20/40/80 ms RTT).
    pub hop_delays: [Duration; 3],
    /// Per-edge-node uplink capacity in bytes/second (`None` = unlimited).
    /// These are the WAN links sampling saves bytes on.
    pub capacity_bytes_per_sec: Option<u64>,
    /// Source-uplink capacity (`None` = unlimited). The paper's throughput
    /// experiments saturate the system downstream of the sources, so
    /// throughput benches leave this unlimited.
    pub source_capacity_bytes_per_sec: Option<u64>,
    /// Pace sources at one batch per `source_interval` of wall time;
    /// `None` drives sources as fast as the links accept (throughput
    /// mode).
    pub source_interval: Option<Duration>,
    /// Worker shards per WHS edge node (the paper's §III-E parallel
    /// execution): each node samples on a persistent [`crate::WorkerPool`]
    /// of this many long-lived shard threads, each emitting its own
    /// `(W_out, sample)` batch per input batch.
    /// `1` (the paper's base design) samples on the node thread itself.
    /// SRS/native nodes ignore this.
    pub edge_workers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl PipelineConfig {
    /// The paper's topology with WAN delays scaled by `delay_scale`
    /// (1.0 = the paper's 10/20/40 ms one-way).
    pub fn paper_topology(overall_fraction: f64, delay_scale: f64) -> Self {
        let ms = |m: f64| Duration::from_secs_f64(m * delay_scale / 1000.0);
        PipelineConfig {
            leaves: 4,
            mids: 2,
            strategy: Strategy::whs(),
            overall_fraction,
            split: FractionSplit::Even,
            window: Duration::from_secs(1),
            query: Query::Sum,
            hop_delays: [ms(10.0), ms(20.0), ms(40.0)],
            capacity_bytes_per_sec: None,
            source_capacity_bytes_per_sec: None,
            source_interval: None,
            edge_workers: 1,
            seed: 0x717E,
        }
    }

    /// The equivalent [`Topology`] for `sources` first-hop producers.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError`] for a fraction outside `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `leaves`, `mids`, `sources` or `edge_workers` is zero.
    pub fn to_topology(&self, sources: usize) -> Result<Topology, BudgetError> {
        let mut leaf = LayerSpec::new(self.leaves)
            .workers(self.edge_workers)
            .delay(self.hop_delays[0]);
        if let Some(c) = self.source_capacity_bytes_per_sec {
            leaf = leaf.capacity(c);
        }
        let mut mid = LayerSpec::new(self.mids)
            .workers(self.edge_workers)
            .delay(self.hop_delays[1]);
        if let Some(c) = self.capacity_bytes_per_sec {
            mid = mid.capacity(c);
        }
        let mut builder = Topology::builder()
            .sources(sources)
            .layer(leaf)
            .layer(mid)
            .root_delay(self.hop_delays[2])
            .strategy(self.strategy)
            .overall_fraction(self.overall_fraction)
            .split(self.split)
            .window(self.window)
            .seed(self.seed);
        if let Some(c) = self.capacity_bytes_per_sec {
            builder = builder.root_link(crate::topology::LinkSpec {
                delay: self.hop_delays[2],
                capacity_bytes_per_sec: Some(c),
                ..crate::topology::LinkSpec::default()
            });
        }
        builder.build()
    }
}

/// Latency summary over per-item end-to-end samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// Maximum.
    pub max: Duration,
}

impl LatencyStats {
    /// Summarises raw nanosecond samples.
    pub fn from_nanos(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        let sum: u128 = samples.iter().map(|&s| s as u128).sum();
        let pick = |q: f64| {
            let idx = ((count as f64 - 1.0) * q).round() as usize;
            Duration::from_nanos(samples[idx])
        };
        LatencyStats {
            count,
            mean: Duration::from_nanos((sum / count as u128) as u64),
            p50: pick(0.50),
            p95: pick(0.95),
            max: Duration::from_nanos(samples[count - 1]),
        }
    }
}

/// The outcome of a legacy [`run_pipeline`] call (the three-hop view of a
/// [`RunReport`]).
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Every window's approximate answer, in window order.
    pub results: Vec<WindowResult>,
    /// Wall time from first send to root completion.
    pub elapsed: Duration,
    /// Items generated by the sources.
    pub source_items: u64,
    /// Source items drained per wall second.
    pub throughput_items_per_sec: f64,
    /// End-to-end per-item latency summary (items that reached the root,
    /// measured when their window's result is available).
    pub latency: LatencyStats,
    /// Wire bytes per layer.
    pub bytes: LayerBytes,
}

/// Options of the threaded engine that are about *driving* the run rather
/// than describing the tree (which is the [`Topology`]'s job).
#[derive(Debug, Clone, Default)]
pub struct PipelineOptions {
    /// Replay mode: preserve event time and process in canonical order so
    /// fixed-seed estimates match the sim engine (see the
    /// [module docs](self)). Disables the latency/delay emulation.
    pub deterministic: bool,
    /// Pace the driver at one interval per `source_interval` of wall time
    /// (`None` = push as fast as the links accept). Ignored in
    /// deterministic mode.
    pub source_interval: Option<Duration>,
}

impl PipelineOptions {
    /// The deterministic replay mode.
    pub fn deterministic() -> Self {
        PipelineOptions {
            deterministic: true,
            source_interval: None,
        }
    }
}

/// Runs the full threaded pipeline over pre-generated source data — the
/// legacy three-stage entry point, now a wrapper over
/// [`PipelineEngine`] via [`PipelineConfig::to_topology`].
///
/// `source_intervals[t][s]` is source `s`'s batch for interval `t`. Each
/// edge node and the root run on their own threads, connected through
/// per-layer broker topics.
///
/// Item `source_ts` fields are re-stamped with wall-clock send time so the
/// report's latency statistics are true end-to-end measurements.
///
/// # Errors
///
/// Returns [`approxiot_core::BudgetError`] for an invalid sampling
/// fraction.
///
/// # Panics
///
/// Panics if `leaves`, `mids` or the source count is zero, if the interval
/// matrix is ragged, or if a worker thread panics.
pub fn run_pipeline(
    config: &PipelineConfig,
    source_intervals: Vec<Vec<Batch>>,
) -> Result<PipelineReport, BudgetError> {
    assert!(
        config.leaves > 0 && config.mids > 0,
        "topology layers must be non-empty"
    );
    assert!(config.edge_workers > 0, "edge_workers must be positive");
    let sources = source_intervals.first().map_or(0, Vec::len);
    assert!(
        sources > 0,
        "need at least one source interval with at least one source"
    );
    let topology = config.to_topology(sources)?;
    let options = PipelineOptions {
        deterministic: false,
        source_interval: config.source_interval,
    };
    let mut engine = PipelineEngine::new(topology, QuerySet::single(config.query), options)?;
    for interval in &source_intervals {
        assert_eq!(interval.len(), sources, "ragged source interval matrix");
        // A closed transport mid-stream (e.g. a decode error downstream)
        // drains gracefully, mirroring the historical source behaviour.
        if Engine::push_interval(&mut engine, interval).is_err() {
            break;
        }
    }
    let report = Box::new(engine).finish();
    Ok(PipelineReport {
        bytes: LayerBytes::from_hops(&report.bytes),
        results: report.results,
        elapsed: report.elapsed,
        source_items: report.source_items,
        throughput_items_per_sec: report.throughput_items_per_sec,
        latency: report.latency,
    })
}

/// Records drained per poll by the node loops.
const POLL_MAX: usize = 64;

/// The threaded execution engine behind [`crate::EngineKind::Pipeline`]:
/// one thread per edge node plus the root, connected through per-layer
/// broker topics, driven incrementally through the [`Engine`] trait.
///
/// The topic feeding each layer has one partition per *upstream sender*
/// (sources for the first layer, the previous layer's nodes after that),
/// and node `j` of a layer with `n` nodes consumes partitions `p` with
/// `p % n == j` — the same modular routing the sim engine uses, and the
/// property that makes deterministic replay possible: within a partition,
/// records are totally ordered by their single producer.
pub struct PipelineEngine {
    topology: Topology,
    options: PipelineOptions,
    epoch: Instant,
    /// Driver-side producer into the first layer's topic.
    producer: BatchProducer,
    /// One first-hop token bucket per source: capacity is charged per
    /// *sending node*, so N sources inject at N times the per-uplink cap
    /// in aggregate (matching the legacy per-source-thread limiters).
    source_limiters: Vec<Option<RateLimiter>>,
    /// One hop-0 fault stream per source (`None` on a perfect first hop):
    /// the driver is the sender, so it owns the injectors.
    source_injectors: Vec<Option<FaultInjector>>,
    /// Per-hop fault counters; edge threads merge their injector stats in
    /// as they exit (hop 0 is merged from `source_injectors` at finish).
    fault_cells: Vec<Arc<Mutex<FaultStats>>>,
    /// True source items pushed per root window (completeness
    /// denominator); wall mode counts by the re-stamped send time.
    window_items: BTreeMap<WindowId, u64>,
    scheme: TumblingWindow,
    /// Per-hop byte counters (hop 0 filled from `producer` at finish).
    bytes: Vec<Arc<AtomicU64>>,
    latencies: Arc<Mutex<Vec<u64>>>,
    result_rx: mpsc::Receiver<WindowResult>,
    elapsed_rx: mpsc::Receiver<Duration>,
    handles: Vec<JoinHandle<()>>,
    results: Vec<WindowResult>,
    source_items: u64,
    intervals_pushed: u64,
    closed: bool,
    /// Scratch for wall-mode re-stamping.
    stamp_scratch: Batch,
    /// Churn bookkeeping (`None` on an unchurned topology: strict no-op).
    /// The driver notes inclusion tallies at push time; the root thread
    /// reads them (through the shared handle) at answer time.
    churn: Option<ChurnDriver>,
}

impl PipelineEngine {
    /// Spawns the node and root threads for `topology` and returns the
    /// engine ready for [`Engine::push_interval`].
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError`] for a fraction outside `(0, 1]`.
    pub fn new(
        topology: Topology,
        queries: QuerySet,
        options: PipelineOptions,
    ) -> Result<Self, BudgetError> {
        let fractions = topology.stage_fractions();
        let n_layers = topology.layers().len();
        let broker = Arc::new(Broker::new());
        // feeds[l] feeds layer l; the last topic feeds the root. One
        // partition per upstream sender.
        let mut feeds = Vec::with_capacity(n_layers + 1);
        feeds.push(
            broker
                .create_topic("layer0", topology.sources() as u32)
                // analysis: allow(P1, reason = "broker was constructed empty two lines up; names cannot collide")
                .expect("fresh broker"),
        );
        for l in 1..n_layers {
            feeds.push(
                broker
                    .create_topic(&format!("layer{l}"), topology.layers()[l - 1].nodes as u32)
                    // analysis: allow(P1, reason = "broker was constructed empty above; names cannot collide")
                    .expect("fresh broker"),
            );
        }
        feeds.push(
            broker
                .create_topic("root", topology.layers()[n_layers - 1].nodes as u32)
                // analysis: allow(P1, reason = "broker was constructed empty above; names cannot collide")
                .expect("fresh broker"),
        );

        // D1-allowlisted: the pipeline's wall-clock branch anchors replay
        // timestamps to a real epoch.
        #[allow(clippy::disallowed_methods)]
        let epoch = Instant::now();
        let bytes: Vec<Arc<AtomicU64>> = (0..topology.hops())
            .map(|_| Arc::new(AtomicU64::new(0)))
            .collect();
        let fault_cells: Vec<Arc<Mutex<FaultStats>>> = (0..topology.hops())
            .map(|_| Arc::new(Mutex::new(FaultStats::default())))
            .collect();
        let latencies = Arc::new(Mutex::new(Vec::<u64>::new()));
        let (result_tx, result_rx) = mpsc::channel();
        let (elapsed_tx, elapsed_rx) = mpsc::channel();
        let mut handles = Vec::new();
        let churn = topology.has_churn().then(|| ChurnDriver::new(&topology));

        // ---- Edge layers ---------------------------------------------------
        for (l, layer) in topology.layers().iter().enumerate() {
            let closers = Arc::new(AtomicUsize::new(layer.nodes));
            for j in 0..layer.nodes {
                let partitions: Vec<u32> = (0..feeds[l].partition_count())
                    .filter(|p| (*p as usize) % layer.nodes == j)
                    .collect();
                let consumer =
                    Consumer::subscribe(Arc::clone(&feeds[l]), &partitions, StartOffset::Earliest);
                let producer = BatchProducer::new(Arc::clone(&feeds[l + 1]));
                // Sketch nodes share one tree-wide seed (KLL merges assert
                // it), mirroring the sim engine's seed selection exactly so
                // fixed-seed runs stay bit-identical across engines.
                let strategy = topology.layer_strategy(l);
                let sketch = match strategy {
                    Strategy::Sketch(config) => Some(config),
                    _ => None,
                };
                let node_seed = match strategy {
                    Strategy::Sketch(_) => topology.sketch_seed(),
                    _ => topology.node_seed(l, j),
                };
                let node =
                    SamplingNode::with_workers(strategy, fractions[l], node_seed, layer.workers)?;
                let limiter = make_limiter(topology.hop_link(l + 1).capacity_bytes_per_sec);
                let params = EdgeParams {
                    hop_delay: topology.layer_link(l).delay,
                    window: topology.window(),
                    out_partition: j as u32,
                    buffered: matches!(topology.layer_strategy(l), Strategy::Whs { .. }),
                    sharded: layer.workers > 1,
                };
                let deterministic = options.deterministic;
                let sketch_seed = topology.sketch_seed();
                let leaf = l == 0;
                let left = Arc::clone(&closers);
                let bytes_out = Arc::clone(&bytes[l + 1]);
                // The node is the sender on hop l + 1: its fault stream
                // (same spec + seed derivation as the sim engine's) rides
                // on its thread.
                let mut injector = FaultInjector::new(
                    topology.hop_impairment(l + 1),
                    topology.hop_impairment_seed(l + 1, j),
                );
                let faults_out = Arc::clone(&fault_cells[l + 1]);
                // The node's churn handle rides on its thread, applied
                // lazily at the same processing moments the sim engine
                // applies it (None on an unchurned topology).
                let mut edge_churn = topology.has_churn().then(|| EdgeChurn {
                    schedule: topology.churn().clone(),
                    ctx: NodeChurnContext::new(&topology, &fractions, l, j),
                    state: NodeChurnState::new(),
                    scheme: TumblingWindow::new(topology.window()),
                });
                handles.push(
                    thread::Builder::new()
                        .name(format!("approxiot-edge-{l}-{j}"))
                        .spawn(move || {
                            if let Some(config) = sketch {
                                // Sketch strata are replay-only (the driver
                                // rejects wall-clock sketch runs): one v3
                                // summary frame per node per interval.
                                edge_node_sketch_replay(
                                    consumer,
                                    &producer,
                                    node,
                                    &params,
                                    limiter,
                                    leaf,
                                    config,
                                    sketch_seed,
                                );
                            } else if deterministic {
                                edge_node_replay(
                                    consumer,
                                    &producer,
                                    node,
                                    &params,
                                    limiter,
                                    &mut injector,
                                    &mut edge_churn,
                                );
                            } else {
                                edge_node_loop(
                                    consumer,
                                    &producer,
                                    node,
                                    params,
                                    limiter,
                                    epoch,
                                    &mut injector,
                                    &mut edge_churn,
                                );
                            }
                            if let Some(injector) = &injector {
                                faults_out
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                                    .merge(injector.stats());
                            }
                            bytes_out.fetch_add(producer.bytes_sent(), Ordering::Relaxed);
                            if left.fetch_sub(1, Ordering::AcqRel) == 1 {
                                producer.topic().close();
                            }
                        })
                        // analysis: allow(P1, reason = "thread spawn fails only on OS resource exhaustion; no fallback exists")
                        .expect("spawn edge thread"),
                );
            }
        }

        // ---- Root ----------------------------------------------------------
        let root_is_sketch = matches!(topology.root_strategy(), Strategy::Sketch(_));
        let mut root = RootNode::new(RootConfig {
            strategy: topology.root_strategy(),
            // analysis: allow(P1, reason = "TopologyBuilder rejects depth-0 trees, so fractions is non-empty")
            fraction: *fractions.last().expect("depth >= 1"),
            overall_fraction: topology.overall_fraction(),
            window: topology.window(),
            queries,
            seed: if root_is_sketch {
                topology.sketch_seed()
            } else {
                topology.root_seed()
            },
            delivery_factor: topology.delivery_factor(),
            allowed_lateness: topology.allowed_lateness(),
        })?;
        if let Some(churn) = &churn {
            // In replay mode the root only answers after its input closes,
            // by which time every pushed interval has been noted, so the
            // inclusion map it reads is complete (wall mode reads the
            // tallies noted up to each watermark advance — approximate,
            // like all wall-mode accounting).
            root.set_inclusion(churn.inclusion());
        }
        let root_consumer =
            Consumer::subscribe_all(Arc::clone(&feeds[n_layers]), StartOffset::Earliest);
        let root_delay = topology.root_link().delay;
        let total_delay = topology.total_delay();
        let root_latencies = Arc::clone(&latencies);
        let deterministic = options.deterministic;
        handles.push(
            thread::Builder::new()
                .name("approxiot-root".into())
                .spawn(move || {
                    if root_is_sketch {
                        root_sketch_replay(root_consumer, root, &result_tx);
                    } else if deterministic {
                        root_replay(root_consumer, root, &result_tx);
                    } else {
                        root_loop(
                            root_consumer,
                            root,
                            &result_tx,
                            &root_latencies,
                            epoch,
                            root_delay,
                            total_delay,
                        );
                    }
                    let _ = elapsed_tx.send(epoch.elapsed());
                })
                // analysis: allow(P1, reason = "thread spawn fails only on OS resource exhaustion; no fallback exists")
                .expect("spawn root thread"),
        );

        let producer = BatchProducer::new(Arc::clone(&feeds[0]));
        let source_limiters = (0..topology.sources())
            .map(|_| make_limiter(topology.layer_link(0).capacity_bytes_per_sec))
            .collect();
        let source_injectors = (0..topology.sources())
            .map(|s| {
                FaultInjector::new(
                    topology.hop_impairment(0),
                    topology.hop_impairment_seed(0, s),
                )
            })
            .collect();
        let scheme = TumblingWindow::new(topology.window());
        Ok(PipelineEngine {
            topology,
            options,
            epoch,
            producer,
            source_limiters,
            source_injectors,
            fault_cells,
            window_items: BTreeMap::new(),
            scheme,
            bytes,
            latencies,
            result_rx,
            elapsed_rx,
            handles,
            results: Vec::new(),
            source_items: 0,
            intervals_pushed: 0,
            closed: false,
            stamp_scratch: Batch::new(),
            churn,
        })
    }

    /// The topology this engine runs.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Sends one source frame through its hop-0 injector (if any): the
    /// limiter and the wire are only charged for frames that survive, and
    /// wall-mode jitter is added to the send timestamp so the consumer
    /// side holds the frame longer.
    fn send_source(&mut self, partition: u32, batch: &Batch, ts: u64) -> Result<(), EngineError> {
        let limiter = &self.source_limiters[partition as usize];
        let producer = &self.producer;
        // In replay mode `ts` is the interval key: the jitter draw still
        // happens (stream alignment with the sim engine) but must never
        // perturb the key.
        let wall = !self.options.deterministic;
        let sent = match self.source_injectors[partition as usize].as_mut() {
            Some(injector) => {
                injector.transmit(std::slice::from_ref(batch), &mut |frame, extra| {
                    if let Some(l) = limiter {
                        l.acquire(encoded_len_v2(frame) as u64);
                    }
                    let stamp = if wall {
                        ts.saturating_add(extra.as_nanos() as u64)
                    } else {
                        ts
                    };
                    producer.send_v2_to(partition, frame, stamp).is_ok()
                })
            }
            None => {
                if let Some(l) = limiter {
                    l.acquire(encoded_len_v2(batch) as u64);
                }
                producer.send_v2_to(partition, batch, ts).is_ok()
            }
        };
        if !sent {
            self.closed = true;
            return Err(EngineError::Closed);
        }
        Ok(())
    }

    fn drain_results(&mut self) -> Vec<WindowResult> {
        let mut new = Vec::new();
        while let Ok(result) = self.result_rx.try_recv() {
            new.push(result);
        }
        if let Some(churn) = &self.churn {
            churn.fill_completeness(&mut new);
        } else if self.topology.has_impairment() {
            fill_completeness(
                &mut new,
                &self.window_items,
                self.topology.delivery_factor(),
            );
        }
        self.results.extend(new.iter().cloned());
        new
    }
}

impl Engine for PipelineEngine {
    fn push_interval(&mut self, interval: &[Batch]) -> Result<(), EngineError> {
        if self.closed {
            return Err(EngineError::Closed);
        }
        // The first-layer topic has one partition per declared source; an
        // oversized interval is a caller error, not a transport failure.
        if interval.len() > self.topology.sources() {
            return Err(EngineError::SourceCount {
                expected: self.topology.sources(),
                got: interval.len(),
            });
        }
        let key = self.intervals_pushed;
        self.intervals_pushed += 1;
        // Per-window true counts feed each result's completeness fraction;
        // on a perfect network completeness is 1.0 by definition, so skip
        // the bookkeeping entirely. (Churned runs track per-window counts
        // in the inclusion map instead.)
        let churned = self.churn.is_some();
        let impaired = self.topology.has_impairment() && !churned;
        if self.options.deterministic {
            if let Some(churn) = self.churn.as_mut() {
                // Same accumulation order as the sim engine: the interval's
                // batches in source order, before any send.
                churn.note_interval(key, interval);
            }
        }
        for (s, batch) in interval.iter().enumerate() {
            self.source_items += batch.len() as u64;
            if self.options.deterministic {
                if impaired {
                    for item in &batch.items {
                        *self
                            .window_items
                            .entry(self.scheme.index_of(item.source_ts))
                            .or_insert(0) += 1;
                    }
                }
                // Preserve event time; key records by interval so replay
                // can reconstruct the canonical order.
                self.send_source(s as u32, batch, key)?;
            } else {
                // Re-stamp with wall send time for true end-to-end latency.
                let ts = self.epoch.elapsed().as_nanos() as u64;
                if impaired {
                    *self
                        .window_items
                        .entry(self.scheme.index_of(ts))
                        .or_insert(0) += batch.len() as u64;
                }
                let mut stamped = std::mem::take(&mut self.stamp_scratch);
                stamped.clone_from(batch);
                for item in &mut stamped.items {
                    item.source_ts = ts;
                }
                if let Some(churn) = self.churn.as_mut() {
                    // Wall mode maps the schedule onto wall windows: the
                    // re-stamped send time decides both the window and the
                    // interval the fleet's dispositions are evaluated at.
                    churn.note_wall(s, ts, &stamped);
                }
                let sent = self.send_source(s as u32, &stamped, ts);
                self.stamp_scratch = stamped;
                sent?;
            }
        }
        if !self.options.deterministic {
            if let Some(pace) = self.options.source_interval {
                thread::sleep(pace);
            }
        }
        Ok(())
    }

    fn poll(&mut self) -> Vec<WindowResult> {
        self.drain_results()
    }

    fn finish(mut self: Box<Self>) -> RunReport {
        self.producer.topic().close();
        for handle in self.handles.drain(..) {
            // analysis: allow(P1, reason = "deliberate panic propagation: a dead worker means the report would be wrong")
            handle.join().expect("pipeline worker thread panicked");
        }
        self.drain_results();
        let elapsed = self
            .elapsed_rx
            .try_recv()
            .unwrap_or_else(|_| self.epoch.elapsed());
        self.bytes[0].fetch_add(self.producer.bytes_sent(), Ordering::Relaxed);
        // Hop 0's injectors live on the driver; the edge hops' counters
        // were merged into the cells as their threads exited.
        let mut faults = HopFaults::new(self.fault_cells.len());
        for injector in self.source_injectors.iter().flatten() {
            faults.record(0, injector.stats());
        }
        for (hop, cell) in self.fault_cells.iter().enumerate() {
            faults.record(
                hop,
                &cell
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
        }
        let mut results = std::mem::take(&mut self.results);
        results.sort_by_key(|r| r.window);
        let latency_samples = std::mem::take(
            &mut *self
                .latencies
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        RunReport {
            results,
            bytes: self
                .bytes
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect::<Vec<_>>()
                .into(),
            faults,
            churn: self
                .churn
                .as_ref()
                .map(ChurnDriver::stats)
                .unwrap_or_default(),
            source_items: self.source_items,
            elapsed,
            throughput_items_per_sec: self.source_items as f64 / elapsed.as_secs_f64().max(1e-9),
            latency: LatencyStats::from_nanos(latency_samples),
        }
    }
}

impl Drop for PipelineEngine {
    /// An engine dropped without [`Engine::finish`] still shuts its
    /// threads down: closing the source topic cascades layer by layer.
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.producer.topic().close();
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

fn make_limiter(capacity: Option<u64>) -> Option<RateLimiter> {
    capacity.map(|bps| RateLimiter::new(bps, (bps / 10).max(4096)))
}

/// Sleeps until `sent_ts + delay` of the shared epoch clock has passed —
/// the consumer-side propagation-delay emulation.
fn wait_until(epoch: Instant, sent_ts: u64, delay: Duration) {
    let target = Duration::from_nanos(sent_ts) + delay;
    let now = epoch.elapsed();
    if target > now {
        thread::sleep(target - now);
    }
}

struct EdgeParams {
    hop_delay: Duration,
    window: Duration,
    out_partition: u32,
    /// WHS nodes buffer one window of input before sampling (Algorithm 2's
    /// interval loop); SRS/native forward immediately.
    buffered: bool,
    /// Sample each batch on the node's §III-E parallel shard pool,
    /// forwarding one batch per shard.
    sharded: bool,
}

/// One edge thread's view of the fleet churn schedule: its own slot's
/// events plus the lazily-applied node state ([`NodeChurnState`]). Replay
/// mode evaluates dispositions at each record's interval key — the exact
/// timeline index the sim engine uses — which is what keeps fixed-seed
/// churn runs engine-identical; the wall loop maps wall time onto windows
/// instead.
struct EdgeChurn {
    schedule: ChurnSchedule,
    ctx: NodeChurnContext,
    state: NodeChurnState,
    scheme: TumblingWindow,
}

impl EdgeChurn {
    fn disposition(&self, interval: u64) -> NodeDisposition {
        self.schedule
            .disposition(self.ctx.layer, self.ctx.index, interval)
    }

    fn sync(&mut self, node: &mut SamplingNode, interval: u64) {
        self.state.sync(node, &self.ctx, &self.schedule, interval);
    }
}

/// The per-edge-node wall-clock loop, running entirely on the columnar
/// hot path: v2 frames decode into pooled [`ColumnarBatch`]es, the node
/// samples through the flat-slice kernels, and outputs go back out as v2
/// frames.
///
/// Steady-state allocation-free (see the module docs) **when the outgoing
/// hop is unimpaired**: records poll into a reused buffer, frames decode
/// into pooled column sets, and every batch — the decoded input and each
/// forwarded output — returns to the node's [`ColumnarPool`] after the
/// producer's reused scratch has encoded it. With an injector present the
/// node's outputs route through it instead: dropped frames never touch the
/// limiter or the wire, duplicated frames are sent twice, and jitter is
/// added to the send timestamp (the consumer side holds the frame for
/// `send + delay + jitter`).
#[allow(clippy::too_many_arguments)]
fn edge_node_loop(
    mut consumer: Consumer,
    producer: &BatchProducer,
    mut node: SamplingNode,
    params: EdgeParams,
    limiter: Option<RateLimiter>,
    epoch: Instant,
    injector: &mut Option<FaultInjector>,
    churn: &mut Option<EdgeChurn>,
) {
    // Sized to cover a window's held backlog in buffered (WHS) mode, not
    // just one poll's worth; beyond this a burst falls back to fresh
    // allocations rather than pinning memory.
    let mut pool = ColumnarPool::new(256);
    let mut records: Vec<Record> = Vec::new();
    let mut held: Vec<ColumnarBatch> = Vec::new();
    let mut last_flush = epoch.elapsed();
    let send = |out: &ColumnarBatch, extra: Duration| {
        if out.is_empty() {
            return true;
        }
        if let Some(l) = &limiter {
            l.acquire(encoded_len_columns(out) as u64);
        }
        let ts = (epoch.elapsed().as_nanos() as u64).saturating_add(extra.as_nanos() as u64);
        producer
            .send_columns_to(params.out_partition, out, ts)
            .is_ok()
    };
    let forward = |node: &mut SamplingNode,
                   pool: &mut ColumnarPool,
                   injector: &mut Option<FaultInjector>,
                   churn: &mut Option<EdgeChurn>,
                   mut batch: ColumnarBatch| {
        if let Some(churn) = churn {
            // Wall mode evaluates the schedule at the wall window of "now"
            // — the processing moment — mirroring a real fleet where an
            // outage is a property of when work happens, not of the data.
            let interval = churn.scheme.index_of(epoch.elapsed().as_nanos() as u64);
            match churn.disposition(interval) {
                NodeDisposition::Down => {
                    // Dark: the delivery is lost at this node's doorstep
                    // (the sender already billed the wire).
                    pool.put(batch);
                    return true;
                }
                NodeDisposition::Crashed { .. } => {
                    // Mid-window crash: process (the sampler RNG advances
                    // as if healthy), then lose the buffered output.
                    churn.sync(node, interval);
                    let outs = if params.sharded {
                        node.process_columns_parallel(&batch)
                    } else {
                        vec![node.process_columns_mut(&mut batch)]
                    };
                    for out in outs {
                        pool.put(out);
                    }
                    pool.put(batch);
                    return true;
                }
                NodeDisposition::Active { .. } => churn.sync(node, interval),
            }
        }
        if let Some(injector) = injector {
            // Fault-injected path: the outputs of this one input frame are
            // one transmission burst.
            let mut outs = if params.sharded {
                node.process_columns_parallel(&batch)
            } else {
                vec![node.process_columns_mut(&mut batch)]
            };
            outs.retain(|out| !out.is_empty());
            let ok = injector.transmit(&outs, &mut |out, extra| send(out, extra));
            for out in outs {
                pool.put(out);
            }
            pool.put(batch);
            return ok;
        }
        if params.sharded {
            let mut ok = true;
            for out in node.process_columns_parallel(&batch) {
                ok = ok && send(&out, Duration::ZERO);
                pool.put(out);
            }
            pool.put(batch);
            ok
        } else {
            // Native nodes move the input columns into the output here, so
            // even the unsampled baseline forwards without copying items.
            let out = node.process_columns_mut(&mut batch);
            let ok = send(&out, Duration::ZERO);
            // The pool pops LIFO, so put the larger storage last: native
            // moved the input's allocation into `out` (leaving `batch` a
            // husk), while WHS/SRS leave the big decoded input in `batch`
            // — either way the next decode gets the warmest buffer.
            if out.values.capacity() > batch.values.capacity() {
                pool.put(batch);
                pool.put(out);
            } else {
                pool.put(out);
                pool.put(batch);
            }
            ok
        }
    };
    loop {
        match consumer.poll_into(&mut records, POLL_MAX, Duration::from_millis(5)) {
            Ok(_) => {
                for record in records.drain(..) {
                    let mut batch = pool.get();
                    if decode_columns_into(&record.value, &mut batch).is_err() {
                        return;
                    }
                    wait_until(epoch, record.timestamp, params.hop_delay);
                    if params.buffered {
                        held.push(batch);
                    } else if !forward(&mut node, &mut pool, injector, churn, batch) {
                        return;
                    }
                }
            }
            Err(MqError::Closed) => {
                for batch in held.drain(..) {
                    if !forward(&mut node, &mut pool, injector, churn, batch) {
                        return;
                    }
                }
                return;
            }
            Err(_) => return,
        }
        if params.buffered {
            let now = epoch.elapsed();
            if now.saturating_sub(last_flush) >= params.window {
                for batch in held.drain(..) {
                    if !forward(&mut node, &mut pool, injector, churn, batch) {
                        return;
                    }
                }
                last_flush = now;
            }
        }
    }
}

/// The per-edge-node deterministic replay: buffer everything until the
/// input closes, then process in canonical `(interval, child, arrival)`
/// order — `(timestamp, partition, offset)` on the wire, since records are
/// keyed by interval and each partition has a single producer. Outputs
/// inherit their input's interval key so the next layer can do the same.
///
/// Fault injection composes with replay: the injector sees the same
/// canonical burst sequence the sim engine produces for this sender, so
/// every frame meets the same fate. Jitter draws happen but never touch
/// the interval key (replay has no wall time to perturb).
fn edge_node_replay(
    mut consumer: Consumer,
    producer: &BatchProducer,
    mut node: SamplingNode,
    params: &EdgeParams,
    limiter: Option<RateLimiter>,
    injector: &mut Option<FaultInjector>,
    churn: &mut Option<EdgeChurn>,
) {
    let Some(mut held) = collect_columns_until_closed(&mut consumer) else {
        return;
    };
    held.sort_by_key(|(key, _)| *key);
    for (key, mut batch) in held {
        // Replay evaluates the schedule at the record's interval key —
        // the same timeline index (and the same lazy application moments)
        // as the sim engine's churned path.
        let mut crashed = false;
        if let Some(churn) = churn.as_mut() {
            match churn.disposition(key.0) {
                NodeDisposition::Down => continue, // lost at the doorstep
                disposition => {
                    churn.sync(&mut node, key.0);
                    crashed = matches!(disposition, NodeDisposition::Crashed { .. });
                }
            }
        }
        let mut outs = if params.sharded {
            node.process_columns_parallel(&batch)
        } else {
            vec![node.process_columns_mut(&mut batch)]
        };
        outs.retain(|out| !out.is_empty());
        if crashed {
            continue; // processed, then the buffered output is lost
        }
        let sent = match injector {
            Some(injector) => injector.transmit(&outs, &mut |out, _| {
                if let Some(l) = &limiter {
                    l.acquire(encoded_len_columns(out) as u64);
                }
                producer
                    .send_columns_to(params.out_partition, out, key.0)
                    .is_ok()
            }),
            None => outs.iter().all(|out| {
                if let Some(l) = &limiter {
                    l.acquire(encoded_len_columns(out) as u64);
                }
                producer
                    .send_columns_to(params.out_partition, out, key.0)
                    .is_ok()
            }),
        };
        if !sent {
            return;
        }
    }
}

/// Drains a consumer to close, decoding every record into an AoS batch
/// (either frame version); `None` on a decode error (poisoned stream).
#[allow(clippy::type_complexity)]
fn collect_until_closed(consumer: &mut Consumer) -> Option<Vec<((u64, u32, u64), Batch)>> {
    let mut held = Vec::new();
    let mut records: Vec<Record> = Vec::new();
    loop {
        match consumer.poll_into(&mut records, POLL_MAX, Duration::from_millis(5)) {
            Ok(_) => {
                for record in records.drain(..) {
                    let mut batch = Batch::new();
                    if decode_batch_any_into(&record.value, &mut batch).is_err() {
                        return None;
                    }
                    held.push(((record.timestamp, record.partition, record.offset), batch));
                }
            }
            Err(MqError::Closed) => return Some(held),
            Err(_) => return None,
        }
    }
}

/// Columnar twin of [`collect_until_closed`]: drains to close decoding
/// every v2 frame into its own [`ColumnarBatch`] (replay holds the full
/// backlog anyway, so there is nothing to pool).
#[allow(clippy::type_complexity)]
fn collect_columns_until_closed(
    consumer: &mut Consumer,
) -> Option<Vec<((u64, u32, u64), ColumnarBatch)>> {
    let mut held = Vec::new();
    let mut records: Vec<Record> = Vec::new();
    loop {
        match consumer.poll_into(&mut records, POLL_MAX, Duration::from_millis(5)) {
            Ok(_) => {
                for record in records.drain(..) {
                    let mut batch = ColumnarBatch::new();
                    if decode_columns_into(&record.value, &mut batch).is_err() {
                        return None;
                    }
                    held.push(((record.timestamp, record.partition, record.offset), batch));
                }
            }
            Err(MqError::Closed) => return Some(held),
            Err(_) => return None,
        }
    }
}

/// Payload twin of [`collect_until_closed`] for sketch strata: leaves
/// (`items = true`) decode the driver's item frames, inner nodes decode v3
/// summary frames; `None` on a decode error (poisoned stream).
#[allow(clippy::type_complexity)]
fn collect_payloads_until_closed(
    consumer: &mut Consumer,
    items: bool,
) -> Option<Vec<((u64, u32, u64), NodePayload)>> {
    let mut held = Vec::new();
    let mut records: Vec<Record> = Vec::new();
    loop {
        match consumer.poll_into(&mut records, POLL_MAX, Duration::from_millis(5)) {
            Ok(_) => {
                for record in records.drain(..) {
                    let payload = if items {
                        let mut batch = Batch::new();
                        if decode_batch_any_into(&record.value, &mut batch).is_err() {
                            return None;
                        }
                        NodePayload::Items(batch)
                    } else {
                        let mut windows = Vec::new();
                        if decode_summaries_into(&record.value, &mut windows).is_err() {
                            return None;
                        }
                        NodePayload::Summaries(windows)
                    };
                    held.push(((record.timestamp, record.partition, record.offset), payload));
                }
            }
            Err(MqError::Closed) => return Some(held),
            Err(_) => return None,
        }
    }
}

/// The per-edge-node sketch replay: collect until closed, absorb in the
/// canonical `(interval, child, arrival)` order, and forward **one v3
/// summary frame per interval** — the same drain granularity (and the same
/// `encoded_len_summaries` bytes) as the sim engine's
/// `push_interval_sketch`, so fixed-seed runs stay bit-identical. Leaves
/// summarize item frames; inner nodes merge their children's summaries with
/// no per-item work.
#[allow(clippy::too_many_arguments)]
fn edge_node_sketch_replay(
    mut consumer: Consumer,
    producer: &BatchProducer,
    mut node: SamplingNode,
    params: &EdgeParams,
    limiter: Option<RateLimiter>,
    leaf: bool,
    config: SketchConfig,
    seed: u64,
) {
    let scheme = TumblingWindow::new(params.window);
    let Some(mut held) = collect_payloads_until_closed(&mut consumer, leaf) else {
        return;
    };
    held.sort_by_key(|(key, _)| *key);
    let mut i = 0;
    while i < held.len() {
        let interval = held[i].0 .0;
        while i < held.len() && held[i].0 .0 == interval {
            node.absorb_payload(&held[i].1, scheme);
            i += 1;
        }
        let windows = node.take_summaries();
        if windows.is_empty() {
            continue;
        }
        if let Some(l) = &limiter {
            l.acquire(encoded_len_summaries(&windows) as u64);
        }
        if producer
            .send_summaries_to(params.out_partition, config, seed, &windows, interval)
            .is_err()
        {
            return;
        }
    }
}

/// The wall-clock root loop: ingest with delay emulation and latency
/// sampling, advancing the watermark conservatively as wall time passes,
/// streaming each closed window's result as it becomes available.
fn root_loop(
    mut consumer: Consumer,
    mut root: RootNode,
    result_tx: &mpsc::Sender<WindowResult>,
    latencies: &Mutex<Vec<u64>>,
    epoch: Instant,
    root_delay: Duration,
    total_delay: Duration,
) {
    let mut pool = BatchPool::new(POLL_MAX + 2);
    let mut records: Vec<Record> = Vec::new();
    'run: loop {
        match consumer.poll_into(&mut records, POLL_MAX, Duration::from_millis(5)) {
            Ok(_) => {
                for record in records.drain(..) {
                    let mut batch = pool.get();
                    if decode_batch_any_into(&record.value, &mut batch).is_err() {
                        break 'run;
                    }
                    wait_until(epoch, record.timestamp, root_delay);
                    let now = epoch.elapsed().as_nanos() as u64;
                    {
                        let mut lat = latencies
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        if lat.len() < 500_000 {
                            lat.extend(batch.items.iter().map(|i| now.saturating_sub(i.source_ts)));
                        }
                    }
                    root.ingest_mut(&mut batch);
                    pool.put(batch);
                }
                // Advance the watermark conservatively: no item older than
                // now − 2×total network delay can still be in flight.
                let wm = epoch
                    .elapsed()
                    .as_nanos()
                    .saturating_sub(2 * total_delay.as_nanos()) as u64;
                for result in root.advance_watermark(wm) {
                    let _ = result_tx.send(result);
                }
            }
            Err(MqError::Closed) => break,
            Err(_) => break,
        }
    }
    for result in root.flush() {
        let _ = result_tx.send(result);
    }
}

/// The deterministic root: collect to close, replay in canonical order,
/// answer every window at flush.
fn root_replay(mut consumer: Consumer, mut root: RootNode, result_tx: &mpsc::Sender<WindowResult>) {
    let Some(mut held) = collect_until_closed(&mut consumer) else {
        return;
    };
    held.sort_by_key(|(key, _)| *key);
    for (_, mut batch) in held {
        root.ingest_mut(&mut batch);
    }
    let mut results = root.flush();
    results.sort_by_key(|r| r.window);
    for result in results {
        let _ = result_tx.send(result);
    }
}

/// The sketch root: collect v3 summary frames to close, ingest in the
/// canonical order (the same insertion order as the sim engine's per-interval
/// `ingest_summaries` calls), answer every window at flush.
fn root_sketch_replay(
    mut consumer: Consumer,
    mut root: RootNode,
    result_tx: &mpsc::Sender<WindowResult>,
) {
    let Some(mut held) = collect_payloads_until_closed(&mut consumer, false) else {
        return;
    };
    held.sort_by_key(|(key, _)| *key);
    for (_, payload) in held {
        if let NodePayload::Summaries(windows) = payload {
            root.ingest_summaries(windows);
        }
    }
    let mut results = root.flush();
    results.sort_by_key(|r| r.window);
    for result in results {
        let _ = result_tx.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_core::{accuracy_loss, StratumId, StreamItem};

    fn intervals(
        n_intervals: usize,
        sources: usize,
        items_per_batch: usize,
        value: f64,
    ) -> Vec<Vec<Batch>> {
        (0..n_intervals)
            .map(|_| {
                (0..sources)
                    .map(|s| {
                        Batch::from_items(
                            (0..items_per_batch)
                                .map(|k| {
                                    StreamItem::with_meta(
                                        StratumId::new(s as u32),
                                        value,
                                        k as u64,
                                        0,
                                    )
                                })
                                .collect(),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn fast_config(strategy: Strategy, fraction: f64) -> PipelineConfig {
        PipelineConfig {
            leaves: 2,
            mids: 2,
            strategy,
            overall_fraction: fraction,
            split: FractionSplit::Even,
            window: Duration::from_millis(50),
            query: Query::Sum,
            hop_delays: [Duration::from_millis(1); 3],
            capacity_bytes_per_sec: None,
            source_capacity_bytes_per_sec: None,
            source_interval: None,
            edge_workers: 1,
            seed: 42,
        }
    }

    #[test]
    fn native_pipeline_is_exact() {
        let data = intervals(3, 4, 50, 2.0);
        let truth: f64 = data.iter().flatten().map(Batch::value_sum).sum();
        let report = run_pipeline(&fast_config(Strategy::Native, 1.0), data).expect("runs");
        let total: f64 = report.results.iter().map(|r| r.estimate.value).sum();
        assert_eq!(total, truth);
        assert_eq!(report.source_items, 600);
        assert!(report.throughput_items_per_sec > 0.0);
    }

    #[test]
    fn whs_pipeline_reconstructs_counts() {
        let data = intervals(4, 4, 200, 1.0);
        let report = run_pipeline(&fast_config(Strategy::whs(), 0.2), data).expect("runs");
        let count: f64 = report.results.iter().map(|r| r.count_hat).sum();
        assert!(
            (count - 3200.0).abs() < 1e-6,
            "count reconstruction through threaded pipeline: {count}"
        );
        // Fewer bytes cross each deeper layer.
        assert!(report.bytes.leaf_to_mid < report.bytes.source_to_leaf);
        assert!(report.bytes.mid_to_root < report.bytes.leaf_to_mid);
    }

    #[test]
    fn sharded_whs_pipeline_reconstructs_counts() {
        // §III-E end to end: every edge node samples on 4 parallel shards,
        // emitting one (W_out, sample) batch per shard; the root must still
        // reconstruct the exact count from the union of pairs.
        let mut config = fast_config(Strategy::whs(), 0.2);
        config.edge_workers = 4;
        let data = intervals(4, 4, 200, 1.0);
        let report = run_pipeline(&config, data).expect("runs");
        let count: f64 = report.results.iter().map(|r| r.count_hat).sum();
        assert!(
            (count - 3200.0).abs() < 1e-6,
            "count reconstruction through sharded pipeline: {count}"
        );
    }

    #[test]
    fn srs_pipeline_estimates_approximately() {
        let data = intervals(4, 4, 500, 3.0);
        let truth: f64 = data.iter().flatten().map(Batch::value_sum).sum();
        let report = run_pipeline(&fast_config(Strategy::Srs, 0.5), data).expect("runs");
        let total: f64 = report.results.iter().map(|r| r.estimate.value).sum();
        assert!(
            accuracy_loss(total, truth) < 0.15,
            "SRS estimate {total} vs truth {truth}"
        );
    }

    #[test]
    fn latency_reflects_hop_delays() {
        let mut config = fast_config(Strategy::Native, 1.0);
        config.hop_delays = [Duration::from_millis(10); 3];
        let report = run_pipeline(&config, intervals(2, 2, 20, 1.0)).expect("runs");
        assert!(report.latency.count > 0);
        assert!(
            report.latency.p50 >= Duration::from_millis(25),
            "p50 {:?} should include ~30 ms of propagation",
            report.latency.p50
        );
    }

    #[test]
    fn whs_buffers_a_window_at_each_edge_layer() {
        // WHS latency should include the edge buffering window; native's
        // should not. Sources must be paced so the stream outlives a window
        // (otherwise edges just flush at close).
        let window = Duration::from_millis(100);
        let pace = Duration::from_millis(20);
        let mut whs_cfg = fast_config(Strategy::whs(), 0.9);
        whs_cfg.window = window;
        whs_cfg.source_interval = Some(pace);
        let mut native_cfg = fast_config(Strategy::Native, 1.0);
        native_cfg.window = window;
        native_cfg.source_interval = Some(pace);
        let whs = run_pipeline(&whs_cfg, intervals(8, 2, 50, 1.0)).expect("runs");
        let native = run_pipeline(&native_cfg, intervals(8, 2, 50, 1.0)).expect("runs");
        assert!(
            whs.latency.p50 > native.latency.p50 + Duration::from_millis(20),
            "whs {:?} vs native {:?}",
            whs.latency.p50,
            native.latency.p50
        );
    }

    #[test]
    fn capacity_throttles_throughput() {
        let mut slow = fast_config(Strategy::Native, 1.0);
        slow.capacity_bytes_per_sec = Some(200_000); // 200 KB/s
        let data = intervals(10, 2, 200, 1.0);
        let fast_report =
            run_pipeline(&fast_config(Strategy::Native, 1.0), data.clone()).expect("runs");
        let slow_report = run_pipeline(&slow, data).expect("runs");
        assert!(
            slow_report.throughput_items_per_sec < fast_report.throughput_items_per_sec,
            "limited link must reduce throughput: {} vs {}",
            slow_report.throughput_items_per_sec,
            fast_report.throughput_items_per_sec
        );
    }

    #[test]
    fn latency_stats_from_nanos() {
        let stats = LatencyStats::from_nanos(vec![100, 200, 300, 400, 1_000]);
        assert_eq!(stats.count, 5);
        assert_eq!(stats.p50, Duration::from_nanos(300));
        assert_eq!(stats.max, Duration::from_nanos(1_000));
        assert_eq!(stats.mean, Duration::from_nanos(400));
        let empty = LatencyStats::from_nanos(vec![]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn to_topology_mirrors_the_config() {
        let mut config = PipelineConfig::paper_topology(0.2, 1.0);
        config.capacity_bytes_per_sec = Some(1_000_000);
        config.source_capacity_bytes_per_sec = Some(9_999);
        let topology = config.to_topology(8).expect("valid");
        assert_eq!(topology.sources(), 8);
        assert_eq!(topology.layers()[0].nodes, 4);
        assert_eq!(topology.layers()[1].nodes, 2);
        assert_eq!(topology.layer_link(0).delay, Duration::from_millis(10));
        assert_eq!(
            topology.layer_link(0).capacity_bytes_per_sec,
            Some(9_999),
            "source capacity rides on the first hop"
        );
        assert_eq!(
            topology.layer_link(1).capacity_bytes_per_sec,
            Some(1_000_000)
        );
        assert_eq!(topology.root_link().capacity_bytes_per_sec, Some(1_000_000));
        assert_eq!(topology.root_link().delay, Duration::from_millis(40));
    }

    #[test]
    fn sketch_pipeline_replay_reconstructs_exact_moments() {
        use crate::query::QuerySpec;
        use crate::topology::Topology;
        let topology = Topology::builder()
            .sources(4)
            .layer(LayerSpec::new(2))
            .layer(LayerSpec::new(1))
            .strategy(Strategy::sketch())
            .seed(9)
            .window(Duration::from_millis(50))
            .build()
            .expect("valid");
        let queries = QuerySet::new().with(QuerySpec::Sum).with(QuerySpec::Count);
        let mut engine = PipelineEngine::new(topology, queries, PipelineOptions::deterministic())
            .expect("valid");
        let data = intervals(3, 4, 100, 2.0);
        for interval in &data {
            Engine::push_interval(&mut engine, interval).expect("open");
        }
        let report = Box::new(engine).finish();
        assert_eq!(report.results.len(), 1, "all items share one window");
        let result = &report.results[0];
        // Moments travel losslessly through the summary frames: the sum
        // and count are exact with zero variance.
        assert_eq!(result.estimate.value, 2400.0);
        assert_eq!(result.estimate.variance, 0.0);
        assert_eq!(result.count_hat, 1200.0);
        let count = result.queries.count().expect("count registered");
        assert_eq!(count.value, 1200.0);
        // Every hop carried traffic: item frames at hop 0, one v3 summary
        // frame per node per interval on the inner hops.
        for (hop, bytes) in report.bytes.hops().iter().enumerate() {
            assert!(*bytes > 0, "hop {hop} billed no bytes");
        }
    }

    #[test]
    fn dropped_engine_shuts_down_cleanly() {
        let topology = fast_config(Strategy::whs(), 0.5)
            .to_topology(2)
            .expect("valid");
        let mut engine =
            PipelineEngine::new(topology, QuerySet::default(), PipelineOptions::default())
                .expect("valid");
        Engine::push_interval(&mut engine, &intervals(1, 2, 10, 1.0)[0]).expect("open");
        drop(engine); // must join every thread without a finish()
    }
}
