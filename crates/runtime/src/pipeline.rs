//! The threaded end-to-end pipeline: sources → leaf edge nodes → mid edge
//! nodes → root, connected through broker topics with WAN delay and
//! capacity emulation.
//!
//! This is the engine behind the wall-clock experiments — throughput
//! (Figure 6), bandwidth (Figure 7), latency vs sampling fraction
//! (Figure 8), latency vs window size (Figure 9) and the real-world
//! throughput runs (Figure 11b). Accuracy experiments use the faster
//! deterministic [`crate::SimTree`] instead.
//!
//! ## How the WAN is emulated
//!
//! * **Propagation delay**: producers stamp each record with its send time;
//!   consumers hold records until `send_time + hop_delay` before processing
//!   — equivalent to the paper's `tc` netem delay without a thread per
//!   link.
//! * **Capacity**: each sending node owns a token bucket
//!   ([`approxiot_net::RateLimiter`]) charged with the encoded frame size —
//!   the paper's 1 Gbps link cap, scaled down for laptop runs.
//! * **Interval semantics**: in WHS mode each edge node buffers one
//!   computation window of input before sampling and forwarding — this is
//!   Algorithm 2's per-interval loop and the source of the window-size
//!   latency dependence in Figure 9. SRS and native nodes forward
//!   immediately (coin flips need no window).
//!
//! ## Buffer reuse on the wire path
//!
//! The node loops are steady-state allocation-free end to end. Every
//! consumer polls through one reused record buffer
//! ([`Consumer::poll_into`] appending via the partition logs'
//! `read_into`), every frame decodes into a recycled [`Batch`] drawn from
//! a per-node [`BatchPool`] ([`decode_batch_into`]), every producer
//! encodes through its own reused scratch
//! ([`approxiot_mq::codec::encode_batch_into`]), and both the input batch
//! and the forwarded output batches return to the pool once sent — native
//! nodes even *move* the input to the output instead of cloning it
//! ([`SamplingNode::process_batch_mut`]). After the first few windows of a
//! steady workload, the only per-frame allocations left are the shared
//! payload the broker's retention model requires and — in native mode at
//! the root, where decoded items move into `Θ` and live on — the storage
//! for the retained data itself. Sharded WHS nodes
//! sample on a persistent [`crate::WorkerPool`] rather than a per-batch
//! thread scope, so thread lifecycle is off the per-batch path too; the
//! `pipeline_throughput` bench (results in `BENCH_pipeline.json`) measures
//! the combined effect at the system level.

use crate::node::{SamplingNode, Strategy};
use crate::query::Query;
use crate::root::{RootConfig, RootNode, WindowResult};
use crate::tree::{FractionSplit, LayerBytes};
use approxiot_core::{Batch, BatchPool};
use approxiot_mq::codec::{decode_batch_into, encoded_len};
use approxiot_mq::{BatchProducer, Broker, Consumer, MqError, Record, StartOffset};
use approxiot_net::RateLimiter;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of a threaded pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// First-layer edge nodes.
    pub leaves: usize,
    /// Second-layer edge nodes.
    pub mids: usize,
    /// Sampling strategy at every node.
    pub strategy: Strategy,
    /// End-to-end sampling fraction, divided across stages per `split`.
    pub overall_fraction: f64,
    /// How the fraction is divided across the three sampling stages.
    pub split: FractionSplit,
    /// Computation window (and WHS edge-buffering interval).
    pub window: Duration,
    /// Query at the root.
    pub query: Query,
    /// One-way delays per hop: sources→leaves, leaves→mids, mids→root.
    /// The paper's testbed: 10 ms, 20 ms, 40 ms (half of 20/40/80 ms RTT).
    pub hop_delays: [Duration; 3],
    /// Per-edge-node uplink capacity in bytes/second (`None` = unlimited).
    /// These are the WAN links sampling saves bytes on.
    pub capacity_bytes_per_sec: Option<u64>,
    /// Source-uplink capacity (`None` = unlimited). The paper's throughput
    /// experiments saturate the system downstream of the sources, so
    /// throughput benches leave this unlimited.
    pub source_capacity_bytes_per_sec: Option<u64>,
    /// Pace sources at one batch per `source_interval` of wall time;
    /// `None` drives sources as fast as the links accept (throughput
    /// mode).
    pub source_interval: Option<Duration>,
    /// Worker shards per WHS edge node (the paper's §III-E parallel
    /// execution): each node samples on a persistent [`crate::WorkerPool`]
    /// of this many long-lived shard threads, each emitting its own
    /// `(W_out, sample)` batch per input batch.
    /// `1` (the paper's base design) samples on the node thread itself.
    /// SRS/native nodes ignore this.
    pub edge_workers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl PipelineConfig {
    /// The paper's topology with WAN delays scaled by `delay_scale`
    /// (1.0 = the paper's 10/20/40 ms one-way).
    pub fn paper_topology(overall_fraction: f64, delay_scale: f64) -> Self {
        let ms = |m: f64| Duration::from_secs_f64(m * delay_scale / 1000.0);
        PipelineConfig {
            leaves: 4,
            mids: 2,
            strategy: Strategy::whs(),
            overall_fraction,
            split: FractionSplit::Even,
            window: Duration::from_secs(1),
            query: Query::Sum,
            hop_delays: [ms(10.0), ms(20.0), ms(40.0)],
            capacity_bytes_per_sec: None,
            source_capacity_bytes_per_sec: None,
            source_interval: None,
            edge_workers: 1,
            seed: 0x717E,
        }
    }

    fn stage_fractions(&self) -> [f64; 3] {
        self.split.stage_fractions(self.overall_fraction)
    }

    fn total_delay(&self) -> Duration {
        self.hop_delays.iter().sum()
    }
}

/// Latency summary over per-item end-to-end samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// Maximum.
    pub max: Duration,
}

impl LatencyStats {
    /// Summarises raw nanosecond samples.
    pub fn from_nanos(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        let sum: u128 = samples.iter().map(|&s| s as u128).sum();
        let pick = |q: f64| {
            let idx = ((count as f64 - 1.0) * q).round() as usize;
            Duration::from_nanos(samples[idx])
        };
        LatencyStats {
            count,
            mean: Duration::from_nanos((sum / count as u128) as u64),
            p50: pick(0.50),
            p95: pick(0.95),
            max: Duration::from_nanos(samples[count - 1]),
        }
    }
}

/// The outcome of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Every window's approximate answer, in window order.
    pub results: Vec<WindowResult>,
    /// Wall time from first send to root completion.
    pub elapsed: Duration,
    /// Items generated by the sources.
    pub source_items: u64,
    /// Source items drained per wall second.
    pub throughput_items_per_sec: f64,
    /// End-to-end per-item latency summary (items that reached the root,
    /// measured when their window's result is available).
    pub latency: LatencyStats,
    /// Wire bytes per layer.
    pub bytes: LayerBytes,
}

/// Shared byte counters per layer.
#[derive(Clone, Default)]
struct ByteCounters {
    l1: Arc<AtomicU64>,
    l2: Arc<AtomicU64>,
    root: Arc<AtomicU64>,
}

/// Runs the full threaded pipeline over pre-generated source data.
///
/// `source_intervals[t][s]` is source `s`'s batch for interval `t`. Each
/// source, edge node and the root run on their own threads, connected
/// through broker topics `layer1`, `layer2` and `root`.
///
/// Item `source_ts` fields are re-stamped with wall-clock send time so the
/// report's latency statistics are true end-to-end measurements.
///
/// # Errors
///
/// Returns [`approxiot_core::BudgetError`] for an invalid sampling
/// fraction.
///
/// # Panics
///
/// Panics if `leaves`, `mids` or the source count is zero, if the interval
/// matrix is ragged, or if a worker thread panics.
pub fn run_pipeline(
    config: &PipelineConfig,
    source_intervals: Vec<Vec<Batch>>,
) -> Result<PipelineReport, approxiot_core::BudgetError> {
    assert!(
        config.leaves > 0 && config.mids > 0,
        "topology layers must be non-empty"
    );
    assert!(config.edge_workers > 0, "edge_workers must be positive");
    let sources = source_intervals.first().map_or(0, Vec::len);
    assert!(
        sources > 0,
        "need at least one source interval with at least one source"
    );
    approxiot_core::SamplingBudget::new(config.overall_fraction)?;
    let [leaf_fraction, mid_fraction, root_fraction] = config.stage_fractions();

    let broker = Arc::new(Broker::new());
    let layer1 = broker
        .create_topic("layer1", sources as u32)
        .expect("fresh broker");
    let layer2 = broker
        .create_topic("layer2", config.mids as u32)
        .expect("fresh broker");
    let root_topic = broker.create_topic("root", 1).expect("fresh broker");

    let epoch = Instant::now();
    let bytes = ByteCounters::default();
    let source_items = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();

    // ---- Sources ---------------------------------------------------------
    // Transpose the interval matrix into per-source schedules.
    let mut per_source: Vec<Vec<Batch>> = (0..sources).map(|_| Vec::new()).collect();
    for interval in source_intervals {
        assert_eq!(interval.len(), sources, "ragged source interval matrix");
        for (s, batch) in interval.into_iter().enumerate() {
            per_source[s].push(batch);
        }
    }
    let sources_left = Arc::new(AtomicUsize::new(sources));
    for (s, batches) in per_source.into_iter().enumerate() {
        let producer = BatchProducer::new(Arc::clone(&layer1));
        let counter = Arc::clone(&source_items);
        let bytes_out = Arc::clone(&bytes.l1);
        let left = Arc::clone(&sources_left);
        let limiter = make_limiter(config.source_capacity_bytes_per_sec);
        let pace = config.source_interval;
        handles.push(
            thread::Builder::new()
                .name(format!("approxiot-source-{s}"))
                .spawn(move || {
                    for mut batch in batches {
                        let ts = epoch.elapsed().as_nanos() as u64;
                        for item in &mut batch.items {
                            item.source_ts = ts;
                        }
                        counter.fetch_add(batch.len() as u64, Ordering::Relaxed);
                        if let Some(l) = &limiter {
                            l.acquire(encoded_len(&batch) as u64);
                        }
                        if producer.send_to(s as u32, &batch, ts).is_err() {
                            break;
                        }
                        if let Some(p) = pace {
                            thread::sleep(p);
                        }
                    }
                    bytes_out.fetch_add(producer.bytes_sent(), Ordering::Relaxed);
                    if left.fetch_sub(1, Ordering::AcqRel) == 1 {
                        producer.topic().close();
                    }
                })
                .expect("spawn source thread"),
        );
    }

    // ---- Leaf edge nodes ---------------------------------------------------
    let leaves_left = Arc::new(AtomicUsize::new(config.leaves));
    for j in 0..config.leaves {
        let partitions: Vec<u32> = (0..sources as u32)
            .filter(|p| (*p as usize) % config.leaves == j)
            .collect();
        let consumer = Consumer::subscribe(Arc::clone(&layer1), &partitions, StartOffset::Earliest);
        let producer = BatchProducer::new(Arc::clone(&layer2));
        let node = SamplingNode::with_workers(
            config.strategy,
            leaf_fraction,
            config.seed ^ (0xA0 + j as u64),
            config.edge_workers,
        )?;
        let left = Arc::clone(&leaves_left);
        let bytes_out = Arc::clone(&bytes.l2);
        let limiter = make_limiter(config.capacity_bytes_per_sec);
        let params = EdgeParams {
            hop_delay: config.hop_delays[0],
            window: config.window,
            out_partition: (j % config.mids) as u32,
            buffered: matches!(config.strategy, Strategy::Whs { .. }),
            sharded: config.edge_workers > 1,
        };
        handles.push(
            thread::Builder::new()
                .name(format!("approxiot-leaf-{j}"))
                .spawn(move || {
                    edge_node_loop(consumer, &producer, node, params, limiter, epoch);
                    bytes_out.fetch_add(producer.bytes_sent(), Ordering::Relaxed);
                    if left.fetch_sub(1, Ordering::AcqRel) == 1 {
                        producer.topic().close();
                    }
                })
                .expect("spawn leaf thread"),
        );
    }

    // ---- Mid edge nodes ------------------------------------------------------
    let mids_left = Arc::new(AtomicUsize::new(config.mids));
    for k in 0..config.mids {
        let consumer = Consumer::subscribe(Arc::clone(&layer2), &[k as u32], StartOffset::Earliest);
        let producer = BatchProducer::new(Arc::clone(&root_topic));
        let node = SamplingNode::with_workers(
            config.strategy,
            mid_fraction,
            config.seed ^ (0xB0 + k as u64),
            config.edge_workers,
        )?;
        let left = Arc::clone(&mids_left);
        let bytes_out = Arc::clone(&bytes.root);
        let limiter = make_limiter(config.capacity_bytes_per_sec);
        let params = EdgeParams {
            hop_delay: config.hop_delays[1],
            window: config.window,
            out_partition: 0,
            buffered: matches!(config.strategy, Strategy::Whs { .. }),
            sharded: config.edge_workers > 1,
        };
        handles.push(
            thread::Builder::new()
                .name(format!("approxiot-mid-{k}"))
                .spawn(move || {
                    edge_node_loop(consumer, &producer, node, params, limiter, epoch);
                    bytes_out.fetch_add(producer.bytes_sent(), Ordering::Relaxed);
                    if left.fetch_sub(1, Ordering::AcqRel) == 1 {
                        producer.topic().close();
                    }
                })
                .expect("spawn mid thread"),
        );
    }

    // ---- Root -------------------------------------------------------------
    let mut root = RootNode::new(RootConfig {
        strategy: config.strategy,
        fraction: root_fraction,
        overall_fraction: config.overall_fraction,
        window: config.window,
        query: config.query,
        seed: config.seed ^ 0xC0,
    })?;
    let latencies = Arc::new(Mutex::new(Vec::<u64>::new()));
    let root_latencies = Arc::clone(&latencies);
    let root_delay = config.hop_delays[2];
    let total_delay = config.total_delay();
    let (result_tx, result_rx) = std::sync::mpsc::channel::<(Vec<WindowResult>, Duration)>();
    let mut root_consumer = Consumer::subscribe_all(Arc::clone(&root_topic), StartOffset::Earliest);
    handles.push(
        thread::Builder::new()
            .name("approxiot-root".into())
            .spawn(move || {
                let mut results = Vec::new();
                let mut pool = BatchPool::new(POLL_MAX + 2);
                let mut records: Vec<Record> = Vec::new();
                'run: loop {
                    match root_consumer.poll_into(&mut records, POLL_MAX, Duration::from_millis(5))
                    {
                        Ok(_) => {
                            for record in records.drain(..) {
                                let mut batch = pool.get();
                                if decode_batch_into(&record.value, &mut batch).is_err() {
                                    break 'run;
                                }
                                wait_until(epoch, record.timestamp, root_delay);
                                let now = epoch.elapsed().as_nanos() as u64;
                                {
                                    let mut lat = root_latencies
                                        .lock()
                                        .expect("latency mutex never poisoned");
                                    if lat.len() < 500_000 {
                                        lat.extend(
                                            batch
                                                .items
                                                .iter()
                                                .map(|i| now.saturating_sub(i.source_ts)),
                                        );
                                    }
                                }
                                root.ingest_mut(&mut batch);
                                pool.put(batch);
                            }
                            // Advance the watermark conservatively: no item
                            // older than now − 2×total network delay can
                            // still be in flight.
                            let wm = epoch
                                .elapsed()
                                .as_nanos()
                                .saturating_sub(2 * total_delay.as_nanos())
                                as u64;
                            results.extend(root.advance_watermark(wm));
                        }
                        Err(MqError::Closed) => break,
                        Err(_) => break,
                    }
                }
                results.extend(root.flush());
                results.sort_by_key(|r| r.window);
                let _ = result_tx.send((results, epoch.elapsed()));
            })
            .expect("spawn root thread"),
    );

    for handle in handles {
        handle.join().expect("pipeline worker thread panicked");
    }
    let (results, elapsed) = result_rx.recv().expect("root thread reports results");

    let items = source_items.load(Ordering::Relaxed);
    let latency_samples =
        std::mem::take(&mut *latencies.lock().expect("latency mutex never poisoned"));
    Ok(PipelineReport {
        results,
        elapsed,
        source_items: items,
        throughput_items_per_sec: items as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: LatencyStats::from_nanos(latency_samples),
        bytes: LayerBytes {
            source_to_leaf: bytes.l1.load(Ordering::Relaxed),
            leaf_to_mid: bytes.l2.load(Ordering::Relaxed),
            mid_to_root: bytes.root.load(Ordering::Relaxed),
        },
    })
}

/// Records drained per poll by the node loops.
const POLL_MAX: usize = 64;

fn make_limiter(capacity: Option<u64>) -> Option<RateLimiter> {
    capacity.map(|bps| RateLimiter::new(bps, (bps / 10).max(4096)))
}

/// Sleeps until `sent_ts + delay` of the shared epoch clock has passed —
/// the consumer-side propagation-delay emulation.
fn wait_until(epoch: Instant, sent_ts: u64, delay: Duration) {
    let target = Duration::from_nanos(sent_ts) + delay;
    let now = epoch.elapsed();
    if target > now {
        thread::sleep(target - now);
    }
}

struct EdgeParams {
    hop_delay: Duration,
    window: Duration,
    out_partition: u32,
    /// WHS nodes buffer one window of input before sampling (Algorithm 2's
    /// interval loop); SRS/native forward immediately.
    buffered: bool,
    /// Sample each batch on the node's §III-E parallel shard pool,
    /// forwarding one batch per shard.
    sharded: bool,
}

/// The per-edge-node loop shared by leaves and mids.
///
/// Steady-state allocation-free (see the module docs): records poll into
/// a reused buffer, frames decode into pooled batches, and every batch —
/// the decoded input and each forwarded output — returns to the node's
/// [`BatchPool`] after the producer's reused scratch has encoded it.
fn edge_node_loop(
    mut consumer: Consumer,
    producer: &BatchProducer,
    mut node: SamplingNode,
    params: EdgeParams,
    limiter: Option<RateLimiter>,
    epoch: Instant,
) {
    // Sized to cover a window's held backlog in buffered (WHS) mode, not
    // just one poll's worth; beyond this a burst falls back to fresh
    // allocations rather than pinning memory.
    let mut pool = BatchPool::new(256);
    let mut records: Vec<Record> = Vec::new();
    let mut held: Vec<Batch> = Vec::new();
    let mut last_flush = epoch.elapsed();
    let send = |out: &Batch| {
        if out.is_empty() {
            return true;
        }
        if let Some(l) = &limiter {
            l.acquire(encoded_len(out) as u64);
        }
        let ts = epoch.elapsed().as_nanos() as u64;
        producer.send_to(params.out_partition, out, ts).is_ok()
    };
    let forward = |node: &mut SamplingNode, pool: &mut BatchPool, mut batch: Batch| {
        if params.sharded {
            let mut ok = true;
            for out in node.process_batch_parallel(&batch) {
                ok = ok && send(&out);
                pool.put(out);
            }
            pool.put(batch);
            ok
        } else {
            // Native nodes move the input into the output here, so even
            // the unsampled baseline forwards without copying items.
            let out = node.process_batch_mut(&mut batch);
            let ok = send(&out);
            // The pool pops LIFO, so put the larger storage last: native
            // moved the input's allocation into `out` (leaving `batch` a
            // husk), while WHS/SRS leave the big decoded input in `batch`
            // — either way the next decode gets the warmest buffer.
            if out.items.capacity() > batch.items.capacity() {
                pool.put(batch);
                pool.put(out);
            } else {
                pool.put(out);
                pool.put(batch);
            }
            ok
        }
    };
    loop {
        match consumer.poll_into(&mut records, POLL_MAX, Duration::from_millis(5)) {
            Ok(_) => {
                for record in records.drain(..) {
                    let mut batch = pool.get();
                    if decode_batch_into(&record.value, &mut batch).is_err() {
                        return;
                    }
                    wait_until(epoch, record.timestamp, params.hop_delay);
                    if params.buffered {
                        held.push(batch);
                    } else if !forward(&mut node, &mut pool, batch) {
                        return;
                    }
                }
            }
            Err(MqError::Closed) => {
                for batch in held.drain(..) {
                    if !forward(&mut node, &mut pool, batch) {
                        return;
                    }
                }
                return;
            }
            Err(_) => return,
        }
        if params.buffered {
            let now = epoch.elapsed();
            if now.saturating_sub(last_flush) >= params.window {
                for batch in held.drain(..) {
                    if !forward(&mut node, &mut pool, batch) {
                        return;
                    }
                }
                last_flush = now;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_core::{accuracy_loss, StratumId, StreamItem};

    fn intervals(
        n_intervals: usize,
        sources: usize,
        items_per_batch: usize,
        value: f64,
    ) -> Vec<Vec<Batch>> {
        (0..n_intervals)
            .map(|_| {
                (0..sources)
                    .map(|s| {
                        Batch::from_items(
                            (0..items_per_batch)
                                .map(|k| {
                                    StreamItem::with_meta(
                                        StratumId::new(s as u32),
                                        value,
                                        k as u64,
                                        0,
                                    )
                                })
                                .collect(),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn fast_config(strategy: Strategy, fraction: f64) -> PipelineConfig {
        PipelineConfig {
            leaves: 2,
            mids: 2,
            strategy,
            overall_fraction: fraction,
            split: FractionSplit::Even,
            window: Duration::from_millis(50),
            query: Query::Sum,
            hop_delays: [Duration::from_millis(1); 3],
            capacity_bytes_per_sec: None,
            source_capacity_bytes_per_sec: None,
            source_interval: None,
            edge_workers: 1,
            seed: 42,
        }
    }

    #[test]
    fn native_pipeline_is_exact() {
        let data = intervals(3, 4, 50, 2.0);
        let truth: f64 = data.iter().flatten().map(Batch::value_sum).sum();
        let report = run_pipeline(&fast_config(Strategy::Native, 1.0), data).expect("runs");
        let total: f64 = report.results.iter().map(|r| r.estimate.value).sum();
        assert_eq!(total, truth);
        assert_eq!(report.source_items, 600);
        assert!(report.throughput_items_per_sec > 0.0);
    }

    #[test]
    fn whs_pipeline_reconstructs_counts() {
        let data = intervals(4, 4, 200, 1.0);
        let report = run_pipeline(&fast_config(Strategy::whs(), 0.2), data).expect("runs");
        let count: f64 = report.results.iter().map(|r| r.count_hat).sum();
        assert!(
            (count - 3200.0).abs() < 1e-6,
            "count reconstruction through threaded pipeline: {count}"
        );
        // Fewer bytes cross each deeper layer.
        assert!(report.bytes.leaf_to_mid < report.bytes.source_to_leaf);
        assert!(report.bytes.mid_to_root < report.bytes.leaf_to_mid);
    }

    #[test]
    fn sharded_whs_pipeline_reconstructs_counts() {
        // §III-E end to end: every edge node samples on 4 parallel shards,
        // emitting one (W_out, sample) batch per shard; the root must still
        // reconstruct the exact count from the union of pairs.
        let mut config = fast_config(Strategy::whs(), 0.2);
        config.edge_workers = 4;
        let data = intervals(4, 4, 200, 1.0);
        let report = run_pipeline(&config, data).expect("runs");
        let count: f64 = report.results.iter().map(|r| r.count_hat).sum();
        assert!(
            (count - 3200.0).abs() < 1e-6,
            "count reconstruction through sharded pipeline: {count}"
        );
    }

    #[test]
    fn srs_pipeline_estimates_approximately() {
        let data = intervals(4, 4, 500, 3.0);
        let truth: f64 = data.iter().flatten().map(Batch::value_sum).sum();
        let report = run_pipeline(&fast_config(Strategy::Srs, 0.5), data).expect("runs");
        let total: f64 = report.results.iter().map(|r| r.estimate.value).sum();
        assert!(
            accuracy_loss(total, truth) < 0.15,
            "SRS estimate {total} vs truth {truth}"
        );
    }

    #[test]
    fn latency_reflects_hop_delays() {
        let mut config = fast_config(Strategy::Native, 1.0);
        config.hop_delays = [Duration::from_millis(10); 3];
        let report = run_pipeline(&config, intervals(2, 2, 20, 1.0)).expect("runs");
        assert!(report.latency.count > 0);
        assert!(
            report.latency.p50 >= Duration::from_millis(25),
            "p50 {:?} should include ~30 ms of propagation",
            report.latency.p50
        );
    }

    #[test]
    fn whs_buffers_a_window_at_each_edge_layer() {
        // WHS latency should include the edge buffering window; native's
        // should not. Sources must be paced so the stream outlives a window
        // (otherwise edges just flush at close).
        let window = Duration::from_millis(100);
        let pace = Duration::from_millis(20);
        let mut whs_cfg = fast_config(Strategy::whs(), 0.9);
        whs_cfg.window = window;
        whs_cfg.source_interval = Some(pace);
        let mut native_cfg = fast_config(Strategy::Native, 1.0);
        native_cfg.window = window;
        native_cfg.source_interval = Some(pace);
        let whs = run_pipeline(&whs_cfg, intervals(8, 2, 50, 1.0)).expect("runs");
        let native = run_pipeline(&native_cfg, intervals(8, 2, 50, 1.0)).expect("runs");
        assert!(
            whs.latency.p50 > native.latency.p50 + Duration::from_millis(20),
            "whs {:?} vs native {:?}",
            whs.latency.p50,
            native.latency.p50
        );
    }

    #[test]
    fn capacity_throttles_throughput() {
        let mut slow = fast_config(Strategy::Native, 1.0);
        slow.capacity_bytes_per_sec = Some(200_000); // 200 KB/s
        let data = intervals(10, 2, 200, 1.0);
        let fast_report =
            run_pipeline(&fast_config(Strategy::Native, 1.0), data.clone()).expect("runs");
        let slow_report = run_pipeline(&slow, data).expect("runs");
        assert!(
            slow_report.throughput_items_per_sec < fast_report.throughput_items_per_sec,
            "limited link must reduce throughput: {} vs {}",
            slow_report.throughput_items_per_sec,
            fast_report.throughput_items_per_sec
        );
    }

    #[test]
    fn latency_stats_from_nanos() {
        let stats = LatencyStats::from_nanos(vec![100, 200, 300, 400, 1_000]);
        assert_eq!(stats.count, 5);
        assert_eq!(stats.p50, Duration::from_nanos(300));
        assert_eq!(stats.max, Duration::from_nanos(1_000));
        assert_eq!(stats.mean, Duration::from_nanos(400));
        let empty = LatencyStats::from_nanos(vec![]);
        assert_eq!(empty.count, 0);
    }
}
