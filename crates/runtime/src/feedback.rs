//! The adaptive feedback loop of §IV: when a window's error bound exceeds
//! the user's accuracy budget, refine the sampling parameters at all layers
//! for subsequent windows.

use crate::root::WindowResult;
use approxiot_core::{AdaptiveController, BudgetError, Confidence};

/// Drives an [`AdaptiveController`] from the root's window results and
/// exposes the refined per-layer fraction the pipeline should apply.
///
/// # Examples
///
/// ```
/// use approxiot_runtime::FeedbackLoop;
///
/// let mut feedback = FeedbackLoop::new(0.2, 0.01)?; // start 20%, budget 1% error
/// assert_eq!(feedback.overall_fraction(), 0.2);
/// # Ok::<(), approxiot_core::BudgetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FeedbackLoop {
    controller: AdaptiveController,
    confidence: Confidence,
    /// Sampling stages the refined fraction divides across (edge layers
    /// plus root); the paper's testbed has 3.
    depth: usize,
    refinements: u64,
    gated: u64,
}

impl FeedbackLoop {
    /// Creates a loop starting at `fraction` with a relative error budget,
    /// assuming the paper's three sampling stages; see
    /// [`FeedbackLoop::with_depth`] and [`FeedbackLoop::for_topology`] for
    /// deeper trees.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError`] unless `0 < fraction <= 1`.
    pub fn new(fraction: f64, target_rel_error: f64) -> Result<Self, BudgetError> {
        Ok(FeedbackLoop {
            controller: AdaptiveController::new(fraction, target_rel_error)?,
            confidence: Confidence::P95,
            depth: 3,
            refinements: 0,
            gated: 0,
        })
    }

    /// Uses a different confidence level for the observed bound.
    pub fn with_confidence(mut self, confidence: Confidence) -> Self {
        self.confidence = confidence;
        self
    }

    /// Divides the refined fraction across `depth` sampling stages
    /// instead of the paper's 3.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "a tree has at least one sampling stage");
        self.depth = depth;
        self
    }

    /// Drives the per-stage fraction from a [`crate::Topology`]'s depth.
    pub fn for_topology(self, topology: &crate::Topology) -> Self {
        self.with_depth(topology.depth())
    }

    /// The current end-to-end sampling fraction.
    pub fn overall_fraction(&self) -> f64 {
        self.controller.fraction()
    }

    /// The sampling-stage count the per-stage fraction assumes.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The per-stage fraction: `overall^(1/depth)`, so the stages
    /// compound back to the refined overall fraction.
    pub fn per_stage_fraction(&self) -> f64 {
        self.controller
            .fraction()
            .powf(1.0 / self.depth as f64)
            .min(1.0)
    }

    /// Number of times the fraction actually changed.
    pub fn refinements(&self) -> u64 {
        self.refinements
    }

    /// Number of windows skipped because their completeness fell below
    /// [`COMPLETENESS_GATE`](Self::COMPLETENESS_GATE).
    pub fn gated(&self) -> u64 {
        self.gated
    }

    /// Windows with completeness below this are not fed to the
    /// controller: their inflated error bound reflects missing data (a
    /// dark subtree, heavy loss), not an under-sampled fleet, and raising
    /// the fraction fleet-wide would not recover the lost strata.
    pub const COMPLETENESS_GATE: f64 = 0.95;

    /// Feeds one window result back; returns the (possibly refined)
    /// overall fraction for the next window.
    ///
    /// Windows whose `completeness` falls below
    /// [`COMPLETENESS_GATE`](Self::COMPLETENESS_GATE) leave the fraction
    /// untouched — outage-driven inaccuracy must not escalate the sampling
    /// fraction across the healthy part of the fleet.
    pub fn observe(&mut self, result: &WindowResult) -> f64 {
        if result.completeness < Self::COMPLETENESS_GATE {
            self.gated += 1;
            return self.controller.fraction();
        }
        let observed = result
            .estimate
            .relative_bound(self.confidence)
            .unwrap_or(0.0);
        let before = self.controller.fraction();
        let after = self.controller.observe(observed);
        if (after - before).abs() > f64::EPSILON {
            self.refinements += 1;
        }
        after
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_core::Estimate;
    use std::collections::BTreeMap;

    fn result(value: f64, variance: f64) -> WindowResult {
        WindowResult {
            window: 0,
            start_nanos: 0,
            end_nanos: 1,
            estimate: Estimate::new(value, variance),
            per_stratum: BTreeMap::new(),
            queries: Default::default(),
            sampled_items: 0,
            count_hat: 0.0,
            completeness: 1.0,
            dropped_late: 0,
        }
    }

    #[test]
    fn noisy_windows_raise_the_fraction() {
        let mut feedback = FeedbackLoop::new(0.1, 0.01).expect("valid");
        // value 100, sigma 10 → 2-sigma relative bound 0.2, 20x over budget.
        let f = feedback.observe(&result(100.0, 100.0));
        assert!(f > 0.1);
        assert_eq!(feedback.refinements(), 1);
    }

    #[test]
    fn quiet_windows_relax_the_fraction() {
        let mut feedback = FeedbackLoop::new(0.8, 0.10).expect("valid");
        // Essentially exact result → shrink.
        let f = feedback.observe(&result(100.0, 1e-9));
        assert!(f < 0.8);
    }

    #[test]
    fn per_stage_is_cube_root_at_paper_depth() {
        let feedback = FeedbackLoop::new(0.125, 0.01).expect("valid");
        assert_eq!(feedback.depth(), 3);
        assert!((feedback.per_stage_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_stage_fraction_tracks_tree_depth() {
        let feedback = FeedbackLoop::new(0.0625, 0.01).expect("valid");
        assert!((feedback.clone().with_depth(4).per_stage_fraction() - 0.5).abs() < 1e-12);
        assert!((feedback.clone().with_depth(2).per_stage_fraction() - 0.25).abs() < 1e-12);
        assert!((feedback.clone().with_depth(1).per_stage_fraction() - 0.0625).abs() < 1e-12);
        // Stages always compound back to the overall fraction.
        let deep = feedback.with_depth(5);
        let product = deep.per_stage_fraction().powi(5);
        assert!((product - deep.overall_fraction()).abs() < 1e-12);
    }

    #[test]
    fn topology_drives_the_depth() {
        use crate::{LayerSpec, Topology};
        let topology = Topology::builder()
            .sources(4)
            .layer(LayerSpec::new(3))
            .layer(LayerSpec::new(2))
            .layer(LayerSpec::new(1))
            .build()
            .expect("valid");
        let feedback = FeedbackLoop::new(0.5, 0.01)
            .expect("valid")
            .for_topology(&topology);
        assert_eq!(feedback.depth(), 4);
    }

    #[test]
    fn incomplete_windows_do_not_escalate_the_fraction() {
        let mut feedback = FeedbackLoop::new(0.1, 0.01).expect("valid");
        // Same 20x-over-budget bound as `noisy_windows_raise_the_fraction`,
        // but the window is missing a subtree: the fraction must hold.
        let mut dark = result(100.0, 100.0);
        dark.completeness = 0.5;
        let f = feedback.observe(&dark);
        assert_eq!(f, 0.1);
        assert_eq!(feedback.refinements(), 0);
        assert_eq!(feedback.gated(), 1);
        // Right at the gate the controller is consulted again.
        let mut healthy = result(100.0, 100.0);
        healthy.completeness = FeedbackLoop::COMPLETENESS_GATE;
        let f = feedback.observe(&healthy);
        assert!(f > 0.1);
        assert_eq!(feedback.refinements(), 1);
        assert_eq!(feedback.gated(), 1);
    }

    #[test]
    fn zero_value_estimates_do_not_panic() {
        let mut feedback = FeedbackLoop::new(0.5, 0.01).expect("valid");
        let f = feedback.observe(&result(0.0, 4.0));
        assert!(f > 0.0);
    }

    #[test]
    fn rejects_bad_fraction() {
        assert!(FeedbackLoop::new(0.0, 0.01).is_err());
    }
}
