//! # approxiot-runtime
//!
//! The assembled ApproxIoT system behind a topology-first API: describe
//! any logical edge tree once, register any number of window queries, and
//! run it on either execution engine.
//!
//! ## The three core types
//!
//! * [`Topology`] — a builder for an arbitrary-depth, heterogeneous edge
//!   tree: per-layer fan-in, [`Strategy`] overrides, §III-E worker
//!   shards, per-hop link delay/capacity, and a depth-aware
//!   [`FractionSplit`] dividing the end-to-end sampling fraction across
//!   every stage.
//! * [`QuerySet`] — concurrent window queries ([`QuerySpec`]): SUM, MEAN,
//!   COUNT, their per-stratum variants, plus `Quantile(q)` and `TopK(k)`
//!   backed by [`approxiot_core::quantile`]. Each [`WindowResult`] carries
//!   a per-query [`QueryResults`] map.
//! * [`Driver`] — the one front door over the [`Engine`] trait, with two
//!   backends: [`SimEngine`] (deterministic virtual time, the accuracy
//!   engine) and the threaded [`pipeline::PipelineEngine`] (broker topics
//!   plus WAN emulation, the wall-clock engine). The pipeline's
//!   deterministic mode replays the sim engine's canonical processing
//!   order over the real wire path, so fixed-seed runs produce identical
//!   estimates on both engines.
//!
//! ## Fault injection
//!
//! Every hop's [`LinkSpec`] can carry an
//! [`approxiot_net::ImpairmentSpec`] (loss, jitter, duplication, bounded
//! reorder). Both engines honour it through per-sender [`FaultInjector`]
//! streams — seeded by [`Topology::hop_impairment_seed`], so fixed-seed
//! impaired runs stay **bit-identical** across Sim and Pipeline-replay —
//! and the analytics stay loss-aware: the root divides stratum weights by
//! [`Topology::delivery_factor`] (Horvitz–Thompson, keeping SUM/COUNT
//! unbiased under uniform loss), each [`WindowResult`] reports its
//! `completeness` fraction and `dropped_late` count, runs report per-hop
//! [`HopFaults`], and `Topology::builder().allowed_lateness(..)` keeps
//! windows open for jitter-delayed stragglers. An all-zero spec is a
//! strict no-op. See [`fault`] for the determinism contract and
//! `examples/chaos.rs` for a loss sweep.
//!
//! ## Fleet churn
//!
//! Node-level failures ride the same determinism contract: a
//! [`ChurnSchedule`] attaches per-node events to the virtual timeline —
//! down/up at interval boundaries, mid-window crashes that lose a node's
//! buffered samples, replacement nodes joining a layer (fresh samplers
//! seeded by [`Topology::replacement_seed`]), and degradation modes
//! (low-power with a shrunken sampling fraction, or silent). Both engines
//! honour the schedule identically — fixed-seed churn runs stay
//! bit-identical across Sim and Pipeline-replay — and the analytics stay
//! unbiased: the root generalizes the run-global Horvitz–Thompson rescale
//! to per-window, per-stratum inclusion factors built from per-sender
//! [`Topology::path_delivery_factor`]s, so SUM/COUNT hold up while a
//! subtree is dark and `completeness` reflects outages, not just packet
//! loss. An empty schedule is a strict no-op. See [`churn`] for the event
//! semantics and `examples/churn.rs` for a rolling-reboot sweep.
//!
//! The paper's fixed `leaves/mids/root` shape survives as thin wrappers:
//! [`TreeConfig`]/[`SimTree`] and [`PipelineConfig`]/[`run_pipeline`].
//!
//! ## Example
//!
//! ```
//! use approxiot_core::{Batch, StratumId, StreamItem};
//! use approxiot_runtime::{Driver, EngineKind, LayerSpec, QuerySet, QuerySpec, Topology};
//!
//! // An asymmetric 4-layer tree: 5 sources → 3 edge → 2 edge → root,
//! // sampling 20% end to end, answering three queries per window.
//! let topology = Topology::builder()
//!     .sources(5)
//!     .layer(LayerSpec::new(3))
//!     .layer(LayerSpec::new(2))
//!     .overall_fraction(0.2)
//!     .seed(7)
//!     .build()?;
//! let queries = QuerySet::new()
//!     .with(QuerySpec::Sum)
//!     .with(QuerySpec::Quantile(0.5))
//!     .with(QuerySpec::TopK(3));
//! let mut driver = Driver::new(topology, queries, EngineKind::Sim)?;
//!
//! let interval: Vec<Batch> = (0..5)
//!     .map(|s| {
//!         Batch::from_items(
//!             (0..1000).map(|k| StreamItem::with_meta(StratumId::new(s), 1.0, k, 0)).collect(),
//!         )
//!     })
//!     .collect();
//! driver.push_interval(&interval)?;
//! let report = driver.finish();
//! // ~20% of 5000 items reconstruct the original count...
//! assert!((report.results[0].count_hat - 5000.0).abs() < 1e-6);
//! // ...and every query in the set got its per-window answer.
//! assert_eq!(report.results[0].queries.len(), 3);
//! # Ok::<(), approxiot_runtime::EngineError>(())
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod churn;
pub mod engine;
pub mod fault;
pub mod feedback;
pub mod metrics;
pub mod node;
pub mod pipeline;
pub mod pool;
pub mod query;
pub mod root;
pub mod topology;
pub mod tree;

pub use churn::{ChurnSchedule, ChurnStats, DegradedMode, NodeDisposition};
pub use engine::{Driver, Engine, EngineError, EngineKind, RunReport, SimEngine};
pub use fault::{FaultFrame, FaultInjector, FaultStats, HopFaults};
pub use feedback::FeedbackLoop;
pub use metrics::{mean_window_error, results_bit_identical, window_estimates, RunSummary};
pub use node::{merge_windowed_summaries, NodePayload, SamplingNode, Strategy};
pub use pipeline::{
    run_pipeline, LatencyStats, PipelineConfig, PipelineEngine, PipelineOptions, PipelineReport,
};
pub use pool::WorkerPool;
pub use query::{Query, QueryResults, QuerySet, QuerySpec, QueryValue};
pub use root::{RootConfig, RootNode, WindowResult};
pub use topology::{FractionSplit, HopBytes, LayerSpec, LinkSpec, Topology, TopologyBuilder};
pub use tree::{LayerBytes, SimTree, TreeConfig};
