//! # approxiot-runtime
//!
//! The assembled ApproxIoT system: sampling nodes, the windowed root node,
//! logical-tree topologies and end-to-end pipelines over the messaging and
//! network substrates.
//!
//! Two execution modes cover the paper's evaluation:
//!
//! * [`SimTree`] — the four-layer topology in deterministic virtual time,
//!   used by every *accuracy* experiment (Figures 5, 10, 11a). Thousands of
//!   windows run in milliseconds with seeded randomness.
//! * [`run_pipeline`] — the fully threaded pipeline over `approxiot-mq`
//!   topics with WAN delay/capacity emulation, used by the *wall-clock*
//!   experiments (Figures 6–9, 11b).
//!
//! Both run any of three strategies side by side: ApproxIoT's weighted
//! hierarchical sampling, the coin-flip SRS baseline, and the native
//! (unsampled) execution — exactly the three systems the paper compares.
//!
//! ## Example
//!
//! ```
//! use approxiot_core::{Batch, StratumId, StreamItem};
//! use approxiot_runtime::{SimTree, TreeConfig};
//!
//! // The paper's topology at a 10% end-to-end sampling fraction.
//! let mut tree = SimTree::new(TreeConfig::paper_topology(0.10))?;
//! let sources: Vec<Batch> = (0..8)
//!     .map(|s| {
//!         Batch::from_items(
//!             (0..1000)
//!                 .map(|k| StreamItem::with_meta(StratumId::new(s), 1.0, k, 0))
//!                 .collect(),
//!         )
//!     })
//!     .collect();
//! tree.push_interval(&sources);
//! let results = tree.flush();
//! // 8000 original items reconstructed from ~800 sampled ones.
//! assert!((results[0].count_hat - 8000.0).abs() < 1e-6);
//! # Ok::<(), approxiot_core::BudgetError>(())
//! ```

pub mod feedback;
pub mod node;
pub mod pipeline;
pub mod pool;
pub mod query;
pub mod root;
pub mod tree;

pub use feedback::FeedbackLoop;
pub use node::{SamplingNode, Strategy};
pub use pipeline::{run_pipeline, LatencyStats, PipelineConfig, PipelineReport};
pub use pool::WorkerPool;
pub use query::Query;
pub use root::{RootConfig, RootNode, WindowResult};
pub use tree::{FractionSplit, LayerBytes, SimTree, TreeConfig};
