//! The synchronous logical tree, as the paper's fixed three-stage shape:
//! a thin wrapper over the generalized [`crate::SimEngine`].
//!
//! [`SimTree`] is the engine behind all *accuracy* experiments (Figures 5,
//! 10 and 11a): it wires sources → leaf edge nodes → mid edge nodes → root
//! exactly like the paper's four-layer testbed, but advances time
//! virtually so thousands of windows run in milliseconds with seeded
//! randomness. The threaded [`crate::pipeline`] covers the wall-clock
//! experiments (throughput, latency, bandwidth).
//!
//! New code should describe its tree with [`Topology`] and run it through
//! [`crate::Driver`] — that unlocks arbitrary depth, per-layer strategies
//! and multi-query windows. [`TreeConfig`] survives as the compatibility
//! surface for the paper's `leaves/mids/root` shape
//! ([`TreeConfig::to_topology`] is the bridge).

use crate::engine::SimEngine;
use crate::node::Strategy;
use crate::query::{Query, QuerySet};
use crate::root::WindowResult;
use crate::topology::{HopBytes, LayerSpec, Topology};
use approxiot_core::Batch;
use std::time::Duration;

pub use crate::topology::FractionSplit;

/// Shape and behaviour of a [`SimTree`] — the paper's fixed
/// `leaves/mids/root` tree. A thin wrapper over [`Topology`].
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// First-layer edge nodes (the paper's testbed uses 4).
    pub leaves: usize,
    /// Second-layer edge nodes (the paper uses 2).
    pub mids: usize,
    /// Sampling strategy at every node.
    pub strategy: Strategy,
    /// End-to-end sampling fraction, divided across stages per `split`.
    pub overall_fraction: f64,
    /// How the fraction is divided across the three sampling stages.
    pub split: FractionSplit,
    /// Computation window at the root.
    pub window: Duration,
    /// Query run per window.
    pub query: Query,
    /// Base RNG seed (per-node seeds derive from it).
    pub seed: u64,
}

impl TreeConfig {
    /// The paper's four-layer topology (8 sources → 4 → 2 → 1) running
    /// ApproxIoT at `overall_fraction`.
    pub fn paper_topology(overall_fraction: f64) -> Self {
        TreeConfig {
            leaves: 4,
            mids: 2,
            strategy: Strategy::whs(),
            overall_fraction,
            split: FractionSplit::Even,
            window: Duration::from_secs(1),
            query: Query::Sum,
            seed: 0x10D5,
        }
    }

    /// Same topology with a different fraction split.
    pub fn with_split(mut self, split: FractionSplit) -> Self {
        self.split = split;
        self
    }

    /// Same topology with a different strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Same topology with a different query.
    pub fn with_query(mut self, query: Query) -> Self {
        self.query = query;
        self
    }

    /// Same topology with a different window.
    pub fn with_window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Same topology with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The per-stage fractions `[leaf, mid, root]` under this config's
    /// split. Native ignores them.
    pub fn stage_fractions(&self) -> [f64; 3] {
        self.split.stage_fractions(self.overall_fraction)
    }

    /// The equivalent [`Topology`] for `sources` first-hop producers
    /// (the sim engine routes any source count; the threaded engine needs
    /// it declared).
    ///
    /// # Errors
    ///
    /// Returns [`approxiot_core::BudgetError`] for a fraction outside
    /// `(0, 1]`.
    pub fn to_topology(&self, sources: usize) -> Result<Topology, approxiot_core::BudgetError> {
        Topology::builder()
            .sources(sources)
            .layer(LayerSpec::new(self.leaves))
            .layer(LayerSpec::new(self.mids))
            .strategy(self.strategy)
            .overall_fraction(self.overall_fraction)
            .split(self.split)
            .window(self.window)
            .seed(self.seed)
            .build()
    }
}

/// Wire-byte accounting per tree layer — the named three-hop view of
/// [`HopBytes`] for the paper's fixed shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerBytes {
    /// Sources → leaf edge nodes (always unsampled).
    pub source_to_leaf: u64,
    /// Leaf → mid edge nodes (after the first sampling stage).
    pub leaf_to_mid: u64,
    /// Mid → root (after the second sampling stage).
    pub mid_to_root: u64,
}

impl LayerBytes {
    /// The three-hop view of a per-hop byte vector: the first two hops by
    /// name, everything deeper folded into `mid_to_root`.
    pub fn from_hops(hops: &HopBytes) -> Self {
        let hops = hops.hops();
        LayerBytes {
            source_to_leaf: hops.first().copied().unwrap_or(0),
            leaf_to_mid: hops.get(1).copied().unwrap_or(0),
            mid_to_root: hops.iter().skip(2).sum(),
        }
    }

    /// Bytes crossing the WAN segments that sampling can save on
    /// (everything past the first hop).
    pub fn sampled_wire_bytes(&self) -> u64 {
        self.leaf_to_mid + self.mid_to_root
    }
}

/// The assembled synchronous tree.
///
/// # Examples
///
/// ```
/// use approxiot_core::{Batch, StratumId, StreamItem};
/// use approxiot_runtime::{SimTree, TreeConfig};
///
/// let mut tree = SimTree::new(TreeConfig::paper_topology(0.5))?;
/// let batch = Batch::from_items(
///     (0..1000).map(|i| StreamItem::with_meta(StratumId::new(0), 1.0, i, 0)).collect(),
/// );
/// tree.push_interval(&[batch]);
/// let results = tree.flush();
/// // The estimate reconstructs the original count despite sampling.
/// assert!((results[0].count_hat - 1000.0).abs() < 1e-6);
/// # Ok::<(), approxiot_core::BudgetError>(())
/// ```
#[derive(Debug)]
pub struct SimTree {
    config: TreeConfig,
    engine: SimEngine,
}

impl SimTree {
    /// Builds the tree.
    ///
    /// # Errors
    ///
    /// Returns [`approxiot_core::BudgetError`] for a fraction outside
    /// `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` or `mids` is zero.
    pub fn new(config: TreeConfig) -> Result<Self, approxiot_core::BudgetError> {
        assert!(config.leaves > 0, "need at least one leaf node");
        assert!(config.mids > 0, "need at least one mid node");
        // The sim engine accepts any per-interval source count, so the
        // declared count is nominal (two sources per leaf, as the paper).
        let topology = config.to_topology(config.leaves * 2)?;
        let engine = SimEngine::new(topology, QuerySet::single(config.query))?;
        Ok(SimTree { config, engine })
    }

    /// The tree's configuration.
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Pushes one interval of source batches through every layer.
    ///
    /// Source `i` connects to leaf `i % leaves`; leaf `j` forwards to mid
    /// `j % mids`; mids forward to the root. Wire bytes are accounted with
    /// the real codec frame sizes.
    pub fn push_interval(&mut self, source_batches: &[Batch]) {
        self.engine.push_interval(source_batches);
    }

    /// Advances the root's event-time watermark, returning closed windows'
    /// results.
    pub fn advance_watermark(&mut self, watermark_nanos: u64) -> Vec<WindowResult> {
        self.engine.advance_watermark(watermark_nanos)
    }

    /// Flushes every open window (end of stream).
    pub fn flush(&mut self) -> Vec<WindowResult> {
        self.engine.flush()
    }

    /// Wire bytes so far, per layer.
    pub fn bytes(&self) -> LayerBytes {
        LayerBytes::from_hops(self.engine.bytes())
    }

    /// Total items generated by sources so far.
    pub fn source_items(&self) -> u64 {
        self.engine.source_items()
    }

    /// Items that reached the root (post mid-layer sampling).
    pub fn root_items_in(&self) -> u64 {
        self.engine.root_items_in()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_core::{accuracy_loss, Confidence, StratumId, StreamItem};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const SEC: u64 = 1_000_000_000;

    fn source_batch(
        stratum: u32,
        n: usize,
        mut value_of: impl FnMut(usize) -> f64,
        ts: u64,
    ) -> Batch {
        Batch::from_items(
            (0..n)
                .map(|k| StreamItem::with_meta(StratumId::new(stratum), value_of(k), k as u64, ts))
                .collect(),
        )
    }

    #[test]
    fn per_stage_fraction_compounds_to_overall() {
        let config = TreeConfig::paper_topology(0.125);
        let [l, m, r] = config.stage_fractions();
        assert!((l - 0.5).abs() < 1e-12);
        assert!((l * m * r - 0.125).abs() < 1e-12);
        let leafy = config
            .with_split(FractionSplit::LeafHeavy)
            .stage_fractions();
        assert_eq!(leafy, [0.125, 1.0, 1.0]);
    }

    #[test]
    fn native_tree_is_exact() {
        let mut tree =
            SimTree::new(TreeConfig::paper_topology(1.0).with_strategy(Strategy::Native))
                .expect("valid");
        let batches: Vec<Batch> = (0..8)
            .map(|s| source_batch(s, 100, |k| k as f64, 10))
            .collect();
        let truth: f64 = batches.iter().map(Batch::value_sum).sum();
        tree.push_interval(&batches);
        let results = tree.flush();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].estimate.value, truth);
        assert_eq!(tree.source_items(), 800);
    }

    #[test]
    fn count_reconstruction_survives_three_sampling_stages() {
        let mut tree = SimTree::new(TreeConfig::paper_topology(0.3)).expect("valid");
        let batches: Vec<Batch> = (0..8).map(|s| source_batch(s, 500, |_| 1.0, 10)).collect();
        tree.push_interval(&batches);
        let results = tree.flush();
        assert!(
            (results[0].count_hat - 4000.0).abs() < 1e-6,
            "count_hat {} != 4000",
            results[0].count_hat
        );
        // All values are 1, so the SUM estimate is exactly the count.
        assert!((results[0].estimate.value - 4000.0).abs() < 1e-6);
    }

    #[test]
    fn sampling_reduces_wire_bytes_downstream() {
        let mut tree = SimTree::new(TreeConfig::paper_topology(0.1)).expect("valid");
        let batches: Vec<Batch> = (0..8)
            .map(|s| source_batch(s, 1000, |k| k as f64, 10))
            .collect();
        tree.push_interval(&batches);
        let bytes = tree.bytes();
        assert!(bytes.leaf_to_mid < bytes.source_to_leaf / 2);
        assert!(bytes.mid_to_root < bytes.leaf_to_mid);
        assert!(bytes.sampled_wire_bytes() > 0);
    }

    #[test]
    fn whs_estimate_is_close_and_covered_by_bounds() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut tree = SimTree::new(TreeConfig::paper_topology(0.4)).expect("valid");
        // Two strata with different scales, noisy values.
        let mut truth = 0.0;
        for interval in 0..5u64 {
            let ts = interval * SEC + 1;
            let batches: Vec<Batch> = (0..8)
                .map(|s| {
                    let scale = if s % 2 == 0 { 1.0 } else { 100.0 };
                    let b = source_batch(s, 400, |_| scale * (1.0 + rng.random::<f64>()), ts);
                    truth += b.value_sum();
                    b
                })
                .collect();
            tree.push_interval(&batches);
        }
        let results = tree.flush();
        let est_total: f64 = results.iter().map(|r| r.estimate.value).sum();
        let loss = accuracy_loss(est_total, truth);
        assert!(loss < 0.05, "accuracy loss {loss}");
        // Coverage per window at 3 sigma should mostly hold; check the
        // aggregate is inside the summed bound (conservative).
        let bound: f64 = results
            .iter()
            .map(|r| r.error_bound(Confidence::P997))
            .sum();
        assert!(
            (est_total - truth).abs() <= bound * 2.0,
            "way outside bounds"
        );
    }

    #[test]
    fn watermark_splits_windows_across_intervals() {
        let mut tree = SimTree::new(TreeConfig::paper_topology(1.0)).expect("valid");
        tree.push_interval(&[source_batch(0, 10, |_| 1.0, 10)]);
        tree.push_interval(&[source_batch(0, 10, |_| 1.0, SEC + 10)]);
        let first = tree.advance_watermark(SEC);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].window, 0);
        let rest = tree.flush();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].window, 1);
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn zero_leaves_rejected() {
        let mut config = TreeConfig::paper_topology(0.5);
        config.leaves = 0;
        let _ = SimTree::new(config);
    }

    #[test]
    fn whs_beats_srs_on_skewed_strata() {
        // The paper's headline claim, end-to-end through the full tree:
        // a rare stratum with huge values ruins SRS but not ApproxIoT.
        let make_batches = |rng: &mut StdRng, ts: u64| -> (Vec<Batch>, f64) {
            let mut truth = 0.0;
            let batches: Vec<Batch> = (0..8)
                .map(|s| {
                    // Stratum 7: 5 items of value 1e6; others: 2000 items of ~1.
                    let b = if s == 7 {
                        source_batch(s, 5, |_| 1_000_000.0, ts)
                    } else {
                        let noise: f64 = rng.random();
                        source_batch(s, 2000, move |_| 1.0 + noise, ts)
                    };
                    truth += b.value_sum();
                    b
                })
                .collect();
            (batches, truth)
        };
        let run = |strategy: Strategy, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(1234);
            let mut tree = SimTree::new(
                TreeConfig::paper_topology(0.05)
                    .with_strategy(strategy)
                    .with_seed(seed),
            )
            .expect("valid");
            let mut truth_total = 0.0;
            for i in 0..10u64 {
                let (batches, truth) = make_batches(&mut rng, i * SEC + 1);
                truth_total += truth;
                tree.push_interval(&batches);
            }
            let est: f64 = tree.flush().iter().map(|r| r.estimate.value).sum();
            accuracy_loss(est, truth_total)
        };
        // Average a few seeds to avoid a lucky SRS draw.
        let whs_loss: f64 = (0..5).map(|s| run(Strategy::whs(), s)).sum::<f64>() / 5.0;
        let srs_loss: f64 = (0..5).map(|s| run(Strategy::Srs, s)).sum::<f64>() / 5.0;
        assert!(
            whs_loss * 3.0 < srs_loss,
            "WHS loss {whs_loss} should be ≪ SRS loss {srs_loss}"
        );
    }
}
