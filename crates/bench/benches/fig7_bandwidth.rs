//! Figure 7: bandwidth saving rate vs sampling fraction.
//!
//! Paper shape to reproduce: the saving rate on the WAN segments tracks
//! `1 − fraction` for both ApproxIoT and SRS (a 10% fraction needs only
//! ~10% of the link capacity).

use approxiot_bench::{figure_header, print_row, split_by_stratum, PAPER_FRACTIONS_WITH_FULL_PCT};
use approxiot_net::bandwidth_saving;
use approxiot_runtime::{FractionSplit, Query, SimTree, Strategy, TreeConfig};
use approxiot_workload::scenarios;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Runs the tree over a fixed workload and returns the bytes crossing the
/// sampled WAN segments (leaf→mid + mid→root).
fn wire_bytes(strategy: Strategy, fraction: f64, split: FractionSplit) -> u64 {
    let config = TreeConfig {
        leaves: 4,
        mids: 2,
        strategy,
        overall_fraction: fraction,
        split,
        window: Duration::from_millis(100),
        query: Query::Sum,
        seed: 7,
    };
    let mut tree = SimTree::new(config).expect("valid fraction");
    let mut rng = StdRng::seed_from_u64(0x77);
    let mut mix = scenarios::gaussian_mix(40_000.0, Duration::from_millis(100));
    for _ in 0..20 {
        let batch = mix.next_interval(&mut rng);
        tree.push_interval(&split_by_stratum(&batch));
    }
    tree.flush();
    tree.bytes().sampled_wire_bytes()
}

fn main() {
    figure_header(
        "Figure 7",
        "bandwidth saving rate vs sampling fraction (WAN segments)",
    );
    let native = wire_bytes(Strategy::Native, 1.0, FractionSplit::LeafHeavy);
    println!("(leaf-heavy budget: the paper's evaluation setting — fraction = capacity share)");
    print_row(&[
        "fraction %".into(),
        "ApproxIoT %".into(),
        "SRS %".into(),
        "ApproxIoT(even) %".into(),
    ]);
    for f_pct in PAPER_FRACTIONS_WITH_FULL_PCT {
        let fraction = f_pct as f64 / 100.0;
        let whs = bandwidth_saving(
            wire_bytes(Strategy::whs(), fraction, FractionSplit::LeafHeavy),
            native,
        );
        let srs = bandwidth_saving(
            wire_bytes(Strategy::Srs, fraction, FractionSplit::LeafHeavy),
            native,
        );
        let even = bandwidth_saving(
            wire_bytes(Strategy::whs(), fraction, FractionSplit::Even),
            native,
        );
        print_row(&[
            format!("{f_pct}"),
            format!("{:.1}", whs * 100.0),
            format!("{:.1}", srs * 100.0),
            format!("{:.1}", even * 100.0),
        ]);
    }
    println!("\nExpected shape: saving ≈ 100% − fraction for both systems under the");
    println!("paper's leaf-heavy budget; the even split trades some first-hop saving");
    println!("for deeper hierarchical sampling.");
}
