//! AoS vs SoA kernel comparison backing the columnar hot-path switch.
//!
//! Each group runs the same kernel over both layouts at a small (1k) and
//! large (64k) window so the crossover is visible: at 1k the columnar
//! path must be no slower than the array-of-structs one; at 64k the flat
//! `u32`/`f64` scans should win on cache traffic (28-byte `StreamItem`
//! strides vs contiguous columns).
//!
//! Inputs are round-robin interleaved across 8 strata — the worst case
//! for grouping, forcing the scatter pass instead of the grouped-input
//! fast path both layouts share.

use approxiot_core::{
    Allocation, Batch, ColumnarBatch, StrataIndex, StratumId, StreamItem, WhsSampler,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const STRATA: u32 = 8;

/// Round-robin interleaved batch: stratum `i % STRATA` at position `i`.
fn interleaved(total: usize) -> Batch {
    let items = (0..total)
        .map(|i| {
            StreamItem::with_meta(
                StratumId::new(i as u32 % STRATA),
                i as f64,
                i as u64,
                i as u64,
            )
        })
        .collect();
    Batch::from_items(items)
}

/// Grouping: `StrataIndex::build` over 28-byte items (scatter copies
/// whole items) vs `build_columns` over the raw `u32` column (scatter
/// fills a `u32` permutation only).
fn bench_grouping(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_kernels/grouping");
    for &total in &[1_024usize, 65_536] {
        let aos = interleaved(total);
        let soa = ColumnarBatch::from_batch(&aos);
        group.throughput(Throughput::Elements(total as u64));
        group.bench_with_input(BenchmarkId::new("aos", total), &aos, |b, aos| {
            let mut index = StrataIndex::new();
            b.iter(|| {
                index.build(black_box(&aos.items));
                black_box(index.strata().count())
            })
        });
        group.bench_with_input(BenchmarkId::new("soa", total), &soa, |b, soa| {
            let mut index = StrataIndex::new();
            b.iter(|| {
                index.build_columns(black_box(&soa.strata));
                black_box(index.strata().count())
            })
        });
    }
    group.finish();
}

/// Weight-sum reduction: summing `item.value` through the item stride vs
/// a flat `f64` slice reduction.
fn bench_value_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_kernels/value_sum");
    for &total in &[1_024usize, 65_536] {
        let aos = interleaved(total);
        let soa = ColumnarBatch::from_batch(&aos);
        group.throughput(Throughput::Elements(total as u64));
        group.bench_with_input(BenchmarkId::new("aos", total), &aos, |b, aos| {
            b.iter(|| black_box(black_box(aos).value_sum()))
        });
        group.bench_with_input(BenchmarkId::new("soa", total), &soa, |b, soa| {
            b.iter(|| black_box(black_box(soa).value_sum()))
        });
    }
    group.finish();
}

/// Selection: the full WHS pass (group → allocate → Floyd select →
/// reweight) per layout at a 10% budget. Bit-identical outputs by
/// construction; this measures the layout cost alone.
fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_kernels/whs_select");
    for &total in &[1_024usize, 65_536] {
        let budget = total / 10;
        let aos = interleaved(total);
        let soa = ColumnarBatch::from_batch(&aos);
        group.throughput(Throughput::Elements(total as u64));
        group.bench_with_input(BenchmarkId::new("aos", total), &aos, |b, aos| {
            let mut sampler = WhsSampler::new(Allocation::Uniform);
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(sampler.sample_batch(black_box(aos), budget, &mut rng))
            })
        });
        group.bench_with_input(BenchmarkId::new("soa", total), &soa, |b, soa| {
            let mut sampler = WhsSampler::new(Allocation::Uniform);
            let mut out = ColumnarBatch::new();
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                sampler.sample_columns_into(black_box(soa), budget, &mut out, &mut rng);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Same smoke-level configuration as micro_samplers: cost checks, not
    // variance-sensitive regressions.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_grouping, bench_value_sum, bench_selection
}
criterion_main!(benches);
