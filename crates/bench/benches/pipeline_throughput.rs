//! End-to-end pipeline throughput: the system-level benchmark for the
//! persistent edge worker pool and the zero-allocation wire path.
//!
//! Where `micro_samplers` measures the WHS kernel in isolation, this
//! group drives the paper topology (4 leaves, 2 mids, 1 root over broker
//! topics) through [`approxiot_runtime::run_pipeline`] and reports
//! whole-run cost per source item — encode, produce, poll, decode, sample
//! and root reconstruction included. Strategies: WHS (with
//! `edge_workers` ∈ {1, 2, 4} on the persistent [`WorkerPool`]), the SRS
//! baseline, and native forwarding. Delays are zeroed and links
//! uncapped so the measurement is the software path, not the emulated
//! WAN. Baseline numbers live in `BENCH_pipeline.json` at the repository
//! root.
//!
//! [`WorkerPool`]: approxiot_runtime::WorkerPool

use approxiot_core::{Batch, StratumId, StreamItem};
use approxiot_runtime::{
    run_pipeline, Driver, EngineKind, FractionSplit, LayerSpec, PipelineConfig, Query, QuerySet,
    Strategy, Topology,
};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

/// Intervals × sources × items per batch; 8 sources × 16 intervals × 512
/// items = 64k source items per run — enough batches that steady-state
/// (post-warm-up) behaviour dominates, small enough that one run stays in
/// the low tens of milliseconds and the group finishes in CI.
const INTERVALS: usize = 16;
const SOURCES: usize = 8;
const ITEMS_PER_BATCH: usize = 512;

fn source_data() -> Vec<Vec<Batch>> {
    (0..INTERVALS)
        .map(|_| {
            (0..SOURCES)
                .map(|s| {
                    Batch::from_items(
                        (0..ITEMS_PER_BATCH)
                            .map(|k| {
                                StreamItem::with_meta(
                                    StratumId::new(s as u32),
                                    (k % 100) as f64,
                                    k as u64,
                                    0,
                                )
                            })
                            .collect(),
                    )
                })
                .collect()
        })
        .collect()
}

fn config(strategy: Strategy, edge_workers: usize) -> PipelineConfig {
    PipelineConfig {
        leaves: 4,
        mids: 2,
        strategy,
        overall_fraction: 0.1,
        split: FractionSplit::Even,
        // A short window so WHS edges flush several times per run rather
        // than only at stream close.
        window: Duration::from_millis(10),
        query: Query::Sum,
        // Zero emulated delay and unlimited links: measure the software
        // path (codec, broker, sampler, pool), not sleeps.
        hop_delays: [Duration::ZERO; 3],
        capacity_bytes_per_sec: None,
        source_capacity_bytes_per_sec: None,
        source_interval: None,
        edge_workers,
        seed: 0x717E,
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let data = source_data();
    let total_items = (INTERVALS * SOURCES * ITEMS_PER_BATCH) as u64;
    let mut group = c.benchmark_group("pipeline_throughput");
    group.throughput(Throughput::Elements(total_items));
    let native_full = |strategy: Strategy| match strategy {
        Strategy::Native => 1.0,
        _ => 0.1,
    };
    for (label, strategy, workers) in [
        ("whs", Strategy::whs(), 1usize),
        ("whs", Strategy::whs(), 2),
        ("whs", Strategy::whs(), 4),
        ("srs", Strategy::Srs, 1),
        ("native", Strategy::Native, 1),
    ] {
        let mut cfg = config(strategy, workers);
        cfg.overall_fraction = native_full(strategy);
        group.bench_with_input(BenchmarkId::new(label, workers), &cfg, |b, cfg| {
            // The pipeline consumes its source data, so each iteration
            // clones it — in the setup closure, outside the timing.
            b.iter_batched(
                || data.clone(),
                |data| {
                    let report = run_pipeline(black_box(cfg), data).expect("valid config");
                    black_box(report.throughput_items_per_sec)
                },
                BatchSize::LargeInput,
            )
        });
    }
    // A depth-4 tree (8 → 4 → 2 → 1 edge → root) through the unified
    // driver: one extra sampling stage and one extra wire hop over the
    // paper shape, from the same Topology description.
    let deep = || {
        Topology::builder()
            .sources(SOURCES)
            .layer(LayerSpec::new(4))
            .layer(LayerSpec::new(2))
            .layer(LayerSpec::new(1))
            .overall_fraction(0.1)
            .window(Duration::from_millis(10))
            .seed(0x717E)
            .build()
            .expect("valid fraction")
    };
    group.bench_function(BenchmarkId::new("whs-deep", 1), |b| {
        b.iter(|| {
            let driver = Driver::new(deep(), QuerySet::default(), EngineKind::pipeline())
                .expect("valid topology");
            let report = driver.run(black_box(&data)).expect("source count matches");
            black_box(report.throughput_items_per_sec)
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(8));
    targets = bench_pipeline
);
criterion_main!(benches);
