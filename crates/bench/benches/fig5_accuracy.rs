//! Figure 5: accuracy loss vs sampling fraction, ApproxIoT vs SRS, on the
//! Gaussian (a) and Poisson (b) four-sub-stream mixes.
//!
//! Paper shape to reproduce: ApproxIoT's loss stays ≤ ~0.035% (Gaussian)
//! and ≤ ~0.013% (Poisson); SRS is an order of magnitude worse at small
//! fractions (10× / 30× at 10%), with the gap closing as the fraction
//! approaches 90%.

use approxiot_bench::{
    accuracy_interval, figure_header, mean_accuracy, pct, print_row, PAPER_FRACTIONS_PCT,
};
use approxiot_runtime::Strategy;
use approxiot_workload::scenarios;

fn sweep(dataset: &str, mix_builder: impl Fn() -> approxiot_workload::StreamMix + Copy) {
    println!("\n--- {dataset} distribution ---");
    print_row(&[
        "fraction %".into(),
        "ApproxIoT %".into(),
        "SRS %".into(),
        "SRS/ApproxIoT".into(),
    ]);
    let seeds = [11, 22, 33, 44, 55];
    let intervals = 20;
    for f_pct in PAPER_FRACTIONS_PCT {
        let fraction = f_pct as f64 / 100.0;
        let whs = mean_accuracy(mix_builder, Strategy::whs(), fraction, intervals, &seeds);
        let srs = mean_accuracy(mix_builder, Strategy::Srs, fraction, intervals, &seeds);
        print_row(&[
            format!("{f_pct}"),
            format!("{:.4}", pct(whs)),
            format!("{:.4}", pct(srs)),
            format!("{:.1}x", srs / whs.max(1e-12)),
        ]);
    }
}

fn main() {
    figure_header(
        "Figure 5",
        "accuracy loss vs sampling fraction (ApproxIoT vs SRS)",
    );
    // Rates scaled down 10x from the paper's saturation point; ratios and
    // distributions are the paper's exactly.
    let rate = 40_000.0;
    sweep("(a) Gaussian", move || {
        scenarios::gaussian_mix(rate, accuracy_interval())
    });
    sweep("(b) Poisson", move || {
        scenarios::poisson_mix(rate, accuracy_interval())
    });
    println!("\nExpected shape: ApproxIoT ≪ SRS at 10-40%, gap closes by 90%.");
}
