//! Figure 8: end-to-end latency vs sampling fraction (1-second window in
//! the paper, scaled ×0.1 here so a full sweep runs in seconds).
//!
//! Paper shape to reproduce: latency grows with the fraction as the
//! capacity-limited links queue up; the native execution is the worst
//! (≈6× ApproxIoT's latency at a 10% fraction); ApproxIoT ≈ SRS plus the
//! sampling window.

use approxiot_bench::{figure_header, print_row, PAPER_FRACTIONS_WITH_FULL_PCT};
use approxiot_core::{Batch, StratumId, StreamItem};
use approxiot_runtime::{run_pipeline, FractionSplit, PipelineConfig, Query, Strategy};
use std::time::Duration;

fn source_data(intervals: usize, sources: usize, n: usize) -> Vec<Vec<Batch>> {
    (0..intervals)
        .map(|_| {
            (0..sources)
                .map(|s| {
                    Batch::from_items(
                        (0..n)
                            .map(|k| {
                                StreamItem::with_meta(StratumId::new(s as u32), 1.0, k as u64, 0)
                            })
                            .collect(),
                    )
                })
                .collect()
        })
        .collect()
}

fn config(strategy: Strategy, fraction: f64) -> PipelineConfig {
    PipelineConfig {
        leaves: 4,
        mids: 2,
        strategy,
        overall_fraction: fraction,
        split: FractionSplit::LeafHeavy,
        // The paper's 1 s window scaled ×0.1.
        window: Duration::from_millis(100),
        query: Query::Sum,
        // The paper's 10/20/40 ms one-way delays, unscaled.
        hop_delays: [
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(40),
        ],
        // Oversubscribed WAN: the offered load exceeds the link capacity at
        // high fractions, so queues build exactly as in the paper's
        // saturated testbed.
        capacity_bytes_per_sec: Some(900_000),
        source_capacity_bytes_per_sec: None,
        source_interval: Some(Duration::from_millis(25)),
        edge_workers: 1,
        seed: 8,
    }
}

fn main() {
    figure_header(
        "Figure 8",
        "latency vs sampling fraction (window = 0.1 s scaled)",
    );
    let data = source_data(80, 8, 400);
    print_row(&[
        "fraction %".into(),
        "ApproxIoT ms".into(),
        "SRS ms".into(),
        "Native ms".into(),
    ]);
    let native = run_pipeline(&config(Strategy::Native, 1.0), data.clone())
        .expect("valid config")
        .latency;
    for f_pct in PAPER_FRACTIONS_WITH_FULL_PCT {
        let fraction = f_pct as f64 / 100.0;
        let whs = run_pipeline(&config(Strategy::whs(), fraction), data.clone())
            .expect("valid")
            .latency;
        let srs = run_pipeline(&config(Strategy::Srs, fraction), data.clone())
            .expect("valid")
            .latency;
        print_row(&[
            format!("{f_pct}"),
            format!("{:.1}", whs.p50.as_secs_f64() * 1000.0),
            format!("{:.1}", srs.p50.as_secs_f64() * 1000.0),
            format!("{:.1}", native.p50.as_secs_f64() * 1000.0),
        ]);
    }
    println!("\nExpected shape: latency grows with fraction; native is the worst;");
    println!("ApproxIoT ≈ SRS + window buffering.");
}
