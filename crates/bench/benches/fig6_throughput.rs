//! Figure 6: throughput vs sampling fraction — ApproxIoT, SRS and native.
//!
//! Paper shape to reproduce: ApproxIoT ≈ SRS at every fraction (both are
//! coordination-free); both rise as the fraction drops (less data crosses
//! the capacity-limited WAN links); at 100% both match the native
//! execution, demonstrating negligible sampling overhead.

use approxiot_bench::{figure_header, print_row, PAPER_FRACTIONS_WITH_FULL_PCT};
use approxiot_core::{Batch, StratumId, StreamItem};
use approxiot_runtime::{run_pipeline, FractionSplit, PipelineConfig, Query, Strategy};
use std::time::Duration;

/// Pre-generated source data: `intervals × sources` batches of `n` items.
fn source_data(intervals: usize, sources: usize, n: usize) -> Vec<Vec<Batch>> {
    (0..intervals)
        .map(|_| {
            (0..sources)
                .map(|s| {
                    Batch::from_items(
                        (0..n)
                            .map(|k| {
                                StreamItem::with_meta(
                                    StratumId::new(s as u32),
                                    (k % 100) as f64,
                                    k as u64,
                                    0,
                                )
                            })
                            .collect(),
                    )
                })
                .collect()
        })
        .collect()
}

fn config(strategy: Strategy, fraction: f64) -> PipelineConfig {
    PipelineConfig {
        leaves: 4,
        mids: 2,
        strategy,
        overall_fraction: fraction,
        split: FractionSplit::LeafHeavy,
        window: Duration::from_millis(100),
        query: Query::Sum,
        // Tiny delays: this figure is about bandwidth saturation, not RTT.
        hop_delays: [Duration::from_millis(1); 3],
        // The WAN links between edge layers are the bottleneck (the paper's
        // 1 Gbps scaled to laptop size).
        capacity_bytes_per_sec: Some(3_000_000),
        // Sources can feed at most 10x the WAN capacity, bounding the
        // attainable speedup near the paper's ~10x at a 10% fraction.
        source_capacity_bytes_per_sec: Some(7_500_000),
        source_interval: None,
        edge_workers: 1,
        seed: 6,
    }
}

fn main() {
    figure_header(
        "Figure 6",
        "throughput vs sampling fraction (items/s at the root)",
    );
    let data = source_data(40, 8, 800); // 256k items per run
    print_row(&[
        "fraction %".into(),
        "ApproxIoT".into(),
        "SRS".into(),
        "Native".into(),
    ]);
    let native = run_pipeline(&config(Strategy::Native, 1.0), data.clone())
        .expect("valid config")
        .throughput_items_per_sec;
    for f_pct in PAPER_FRACTIONS_WITH_FULL_PCT {
        let fraction = f_pct as f64 / 100.0;
        let whs = run_pipeline(&config(Strategy::whs(), fraction), data.clone())
            .expect("valid config")
            .throughput_items_per_sec;
        let srs = run_pipeline(&config(Strategy::Srs, fraction), data.clone())
            .expect("valid config")
            .throughput_items_per_sec;
        print_row(&[
            format!("{f_pct}"),
            format!("{whs:.0}"),
            format!("{srs:.0}"),
            format!("{native:.0}"),
        ]);
    }
    println!("\nExpected shape: ApproxIoT ≈ SRS; throughput rises as fraction falls;");
    println!("at 100% both match native (low sampling overhead).");
}
