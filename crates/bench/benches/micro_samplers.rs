//! Criterion micro-benchmarks backing the paper's "low overhead of our
//! sampling mechanism" claim (the Figure 6 discussion): per-item and
//! per-batch costs of the samplers and estimators.

use approxiot_core::{
    sharded_whs_sample, whs_sample, Allocation, Batch, ParallelShardedSampler, Reservoir,
    SkipReservoir, SrsSampler, StratumId, StreamItem, ThetaStore, WeightMap, WhsSampler,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn batch(strata: u32, items_per_stratum: usize) -> Batch {
    let mut items = Vec::with_capacity(strata as usize * items_per_stratum);
    for s in 0..strata {
        for k in 0..items_per_stratum {
            items.push(StreamItem::with_meta(
                StratumId::new(s),
                k as f64,
                k as u64,
                0,
            ));
        }
    }
    Batch::from_items(items)
}

fn bench_reservoirs(c: &mut Criterion) {
    let mut group = c.benchmark_group("reservoir");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("algorithm_r", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut res = Reservoir::new(1_000);
            res.offer_all(black_box(0..n), &mut rng);
            black_box(res.len())
        })
    });
    group.bench_function("algorithm_l_skip", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut res = SkipReservoir::new(1_000);
            res.offer_all(black_box(0..n), &mut rng);
            black_box(res.len())
        })
    });
    group.finish();
}

/// The hot-path acceptance benchmark: 64k items over a strata sweep,
/// sampled at 10%. `whs_seed` is the original per-batch-allocating
/// Algorithm R path (`whs_sample`, kept as the comparison baseline);
/// `whs` is the rebuilt zero-copy `WhsSampler` hot path (StrataIndex +
/// slice allocation + Floyd's selection sampling for overflow — see the
/// `reservoir` group above for why Algorithm L's transcendental-heavy
/// draws lose to both Algorithm R and Floyd under a cheap RNG).
fn bench_whs_vs_srs(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler_per_batch");
    const TOTAL_ITEMS: usize = 65_536;
    const BUDGET: usize = TOTAL_ITEMS / 10;
    for &strata in &[1u32, 8, 64] {
        let input = batch(strata, TOTAL_ITEMS / strata as usize);
        group.throughput(Throughput::Elements(input.len() as u64));
        group.bench_with_input(BenchmarkId::new("whs_seed", strata), &input, |b, input| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                black_box(whs_sample(
                    black_box(input),
                    BUDGET,
                    &WeightMap::new(),
                    Allocation::Uniform,
                    &mut rng,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("whs", strata), &input, |b, input| {
            let mut sampler = WhsSampler::new(Allocation::Uniform);
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                black_box(sampler.sample_batch(black_box(input), BUDGET, &mut rng))
            })
        });
        group.bench_with_input(BenchmarkId::new("srs", strata), &input, |b, input| {
            let srs = SrsSampler::new(0.1).expect("valid");
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                black_box(srs.sample(black_box(input), &mut rng))
            })
        });
    }
    group.finish();
}

/// §III-E sharded execution: the sequential reference (`sharded_whs_sample`,
/// round-robin dealing on one thread) against the scoped-thread
/// `ParallelShardedSampler` across worker counts. Same 8-strata 64k-item
/// window and 10% budget as the hot-path group.
fn bench_sharded_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_sampler");
    const TOTAL_ITEMS: usize = 65_536;
    const BUDGET: usize = TOTAL_ITEMS / 10;
    let input = batch(8, TOTAL_ITEMS / 8);
    group.throughput(Throughput::Elements(input.len() as u64));
    group.bench_with_input(BenchmarkId::new("sequential", 8), &input, |b, input| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(sharded_whs_sample(
                black_box(input),
                BUDGET,
                &WeightMap::new(),
                Allocation::Uniform,
                8,
                &mut rng,
            ))
        })
    });
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", workers), &input, |b, input| {
            let mut sampler = ParallelShardedSampler::new(Allocation::Uniform, workers, 3);
            b.iter(|| black_box(sampler.sample_batch(black_box(input), BUDGET)))
        });
    }
    group.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    // A realistic root window: 100 pairs of 100 sampled items over 16 strata.
    let theta: ThetaStore = (0..100)
        .map(|_| {
            let input = batch(16, 64);
            whs_sample(
                &input,
                100,
                &WeightMap::new(),
                Allocation::Uniform,
                &mut rng,
            )
        })
        .collect();
    let mut group = c.benchmark_group("estimator");
    group.bench_function("sum_with_variance", |b| {
        b.iter(|| black_box(theta.sum_estimate()))
    });
    group.bench_function("mean_with_variance", |b| {
        b.iter(|| black_box(theta.mean_estimate()))
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let input = batch(8, 1_000);
    let frame = approxiot_mq::codec::encode_batch(&input);
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| black_box(approxiot_mq::codec::encode_batch(black_box(&input))))
    });
    group.bench_function("decode", |b| {
        b.iter(|| black_box(approxiot_mq::codec::decode_batch(black_box(&frame)).expect("valid")))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: these are smoke-level cost checks backing
    // the "low overhead" claim, not variance-sensitive regressions.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_reservoirs, bench_whs_vs_srs, bench_sharded_scaling, bench_estimator, bench_codec
}
criterion_main!(benches);
