//! Criterion micro-benchmarks backing the paper's "low overhead of our
//! sampling mechanism" claim (the Figure 6 discussion): per-item and
//! per-batch costs of the samplers and estimators.

use approxiot_core::{
    whs_sample, Allocation, Batch, Reservoir, SkipReservoir, SrsSampler, StratumId, StreamItem,
    ThetaStore, WeightMap,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn batch(strata: u32, items_per_stratum: usize) -> Batch {
    let mut items = Vec::with_capacity(strata as usize * items_per_stratum);
    for s in 0..strata {
        for k in 0..items_per_stratum {
            items.push(StreamItem::with_meta(StratumId::new(s), k as f64, k as u64, 0));
        }
    }
    Batch::from_items(items)
}

fn bench_reservoirs(c: &mut Criterion) {
    let mut group = c.benchmark_group("reservoir");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("algorithm_r", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut res = Reservoir::new(1_000);
            res.offer_all(black_box(0..n), &mut rng);
            black_box(res.len())
        })
    });
    group.bench_function("algorithm_l_skip", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut res = SkipReservoir::new(1_000);
            res.offer_all(black_box(0..n), &mut rng);
            black_box(res.len())
        })
    });
    group.finish();
}

fn bench_whs_vs_srs(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler_per_batch");
    for &strata in &[1u32, 4, 16, 64] {
        let input = batch(strata, 40_000 / strata as usize);
        group.throughput(Throughput::Elements(input.len() as u64));
        group.bench_with_input(BenchmarkId::new("whs", strata), &input, |b, input| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                black_box(whs_sample(
                    black_box(input),
                    4_000,
                    &WeightMap::new(),
                    Allocation::Uniform,
                    &mut rng,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("srs", strata), &input, |b, input| {
            let srs = SrsSampler::new(0.1).expect("valid");
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                black_box(srs.sample(black_box(input), &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    // A realistic root window: 100 pairs of 100 sampled items over 16 strata.
    let theta: ThetaStore = (0..100)
        .map(|_| {
            let input = batch(16, 64);
            whs_sample(&input, 100, &WeightMap::new(), Allocation::Uniform, &mut rng)
        })
        .collect();
    let mut group = c.benchmark_group("estimator");
    group.bench_function("sum_with_variance", |b| {
        b.iter(|| black_box(theta.sum_estimate()))
    });
    group.bench_function("mean_with_variance", |b| {
        b.iter(|| black_box(theta.mean_estimate()))
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let input = batch(8, 1_000);
    let frame = approxiot_mq::codec::encode_batch(&input);
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| black_box(approxiot_mq::codec::encode_batch(black_box(&input))))
    });
    group.bench_function("decode", |b| {
        b.iter(|| black_box(approxiot_mq::codec::decode_batch(black_box(&frame)).expect("valid")))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: these are smoke-level cost checks backing
    // the "low overhead" claim, not variance-sensitive regressions.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_reservoirs, bench_whs_vs_srs, bench_estimator, bench_codec
}
criterion_main!(benches);
