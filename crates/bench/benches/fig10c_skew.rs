//! Figure 10(c): accuracy loss under an extremely skewed input stream.
//!
//! The workload: four Poisson sub-streams with λ = 10, 100, 1 000 and 10⁷,
//! where sub-stream A carries 80% of arrivals but D — 0.01% of arrivals —
//! carries values seven orders of magnitude larger, i.e. virtually all of
//! the answer.
//!
//! Paper shape to reproduce: ApproxIoT stays accurate (≤ ~0.035% mean
//! loss); SRS is catastrophically wrong at small fractions (the paper
//! reports a 2 600× accuracy gap at 10%, with SRS sometimes *overestimating*
//! wildly because a lucky draw of D items gets scaled by 1/fraction).

use approxiot_bench::{
    accuracy_interval, figure_header, mean_accuracy, pct, print_row, PAPER_FRACTIONS_PCT,
};
use approxiot_runtime::Strategy;
use approxiot_workload::scenarios;

fn main() {
    figure_header(
        "Figure 10(c)",
        "accuracy loss on an extremely skewed stream",
    );
    let builder = || scenarios::skewed_mix(40_000.0, accuracy_interval());
    let seeds = [7, 17, 27, 37, 47, 57, 67, 77];
    print_row(&[
        "fraction %".into(),
        "ApproxIoT %".into(),
        "SRS %".into(),
        "SRS/ApproxIoT".into(),
    ]);
    for f_pct in PAPER_FRACTIONS_PCT {
        let fraction = f_pct as f64 / 100.0;
        let whs = mean_accuracy(builder, Strategy::whs(), fraction, 20, &seeds);
        let srs = mean_accuracy(builder, Strategy::Srs, fraction, 20, &seeds);
        print_row(&[
            format!("{f_pct}"),
            format!("{:.4}", pct(whs)),
            format!("{:.4}", pct(srs)),
            format!("{:.0}x", srs / whs.max(1e-12)),
        ]);
    }
    println!("\nExpected shape: ApproxIoT small and flat; SRS enormous at 10-20%");
    println!("(orders of magnitude, possibly overestimating), converging as the");
    println!("fraction grows.");
}
