//! Figure 9: latency vs window size at a fixed 10% sampling fraction
//! (paper windows 0.5–4 s, scaled ×0.1 here).
//!
//! Paper shape to reproduce: ApproxIoT's latency grows with the window size
//! (each edge node buffers one window of input before sampling — Algorithm
//! 2's interval loop), while SRS's stays flat (coin flips need no window).

use approxiot_bench::{figure_header, print_row};
use approxiot_core::{Batch, StratumId, StreamItem};
use approxiot_runtime::{run_pipeline, FractionSplit, PipelineConfig, Query, Strategy};
use std::time::Duration;

fn source_data(intervals: usize, sources: usize, n: usize) -> Vec<Vec<Batch>> {
    (0..intervals)
        .map(|_| {
            (0..sources)
                .map(|s| {
                    Batch::from_items(
                        (0..n)
                            .map(|k| {
                                StreamItem::with_meta(StratumId::new(s as u32), 1.0, k as u64, 0)
                            })
                            .collect(),
                    )
                })
                .collect()
        })
        .collect()
}

fn config(strategy: Strategy, window: Duration) -> PipelineConfig {
    PipelineConfig {
        leaves: 4,
        mids: 2,
        strategy,
        overall_fraction: 0.10,
        split: FractionSplit::Even,
        window,
        query: Query::Sum,
        hop_delays: [
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(40),
        ],
        capacity_bytes_per_sec: None, // uncongested: isolate the window effect
        source_capacity_bytes_per_sec: None,
        source_interval: Some(Duration::from_millis(20)),
        edge_workers: 1,
        seed: 9,
    }
}

fn main() {
    figure_header(
        "Figure 9",
        "latency vs window size (fraction = 10%, windows scaled x0.1)",
    );
    // The paper's 0.5–4 s windows, scaled ×0.1.
    let windows_ms = [50u64, 100, 200, 300, 400];
    print_row(&["window ms".into(), "ApproxIoT ms".into(), "SRS ms".into()]);
    for w in windows_ms {
        let window = Duration::from_millis(w);
        // Stream long enough to cover several windows.
        let intervals = ((w * 6) / 20).max(20) as usize;
        let data = source_data(intervals, 8, 100);
        let whs = run_pipeline(&config(Strategy::whs(), window), data.clone())
            .expect("valid")
            .latency;
        let srs = run_pipeline(&config(Strategy::Srs, window), data)
            .expect("valid")
            .latency;
        print_row(&[
            format!("{w}"),
            format!("{:.1}", whs.p50.as_secs_f64() * 1000.0),
            format!("{:.1}", srs.p50.as_secs_f64() * 1000.0),
        ]);
    }
    println!("\nExpected shape: ApproxIoT grows with the window; SRS stays flat.");
}
