//! Figure 10(a,b): accuracy loss under fluctuating sub-stream arrival
//! rates, sampling fraction fixed at 60%.
//!
//! Settings (items/s for sub-streams A:B:C:D, scaled ×0.1 by the shorter
//! interval): Setting1 (50k:25k:12.5k:625), Setting2 (25k×4),
//! Setting3 (625:12.5k:25k:50k).
//!
//! Paper shape to reproduce: ApproxIoT beats SRS in every setting; the gap
//! is largest in Setting1, where the most valuable sub-stream (D) is the
//! rarest and SRS starves it; accuracy improves from Setting1 to Setting3
//! as D's arrival rate grows.

use approxiot_bench::{accuracy_interval, figure_header, mean_accuracy, pct, print_row};
use approxiot_runtime::Strategy;
use approxiot_workload::{scenarios, RateSetting};

fn sweep(dataset: &str, builder: impl Fn(RateSetting) -> approxiot_workload::StreamMix + Copy) {
    println!("\n--- {dataset} distribution (fraction = 60%) ---");
    print_row(&[
        "setting".into(),
        "ApproxIoT %".into(),
        "SRS %".into(),
        "SRS/ApproxIoT".into(),
    ]);
    let seeds = [101, 202, 303, 404, 505];
    for setting in RateSetting::all() {
        let whs = mean_accuracy(|| builder(setting), Strategy::whs(), 0.6, 20, &seeds);
        let srs = mean_accuracy(|| builder(setting), Strategy::Srs, 0.6, 20, &seeds);
        print_row(&[
            setting.label().into(),
            format!("{:.4}", pct(whs)),
            format!("{:.4}", pct(srs)),
            format!("{:.1}x", srs / whs.max(1e-12)),
        ]);
    }
}

fn main() {
    figure_header(
        "Figure 10(a,b)",
        "accuracy under fluctuating sub-stream rates",
    );
    sweep("(a) Gaussian", |s| {
        scenarios::gaussian_rate_mix(s, accuracy_interval())
    });
    sweep("(b) Poisson", |s| {
        scenarios::poisson_rate_mix(s, accuracy_interval())
    });
    println!("\nExpected shape: ApproxIoT < SRS everywhere; largest gap in Setting1");
    println!("(rare-but-valuable sub-stream D); both improve towards Setting3.");
}
