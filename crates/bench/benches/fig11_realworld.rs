//! Figure 11: the two real-world case studies — NYC taxi rides and Brasov
//! pollution (trace-shaped generators; see DESIGN.md for the
//! substitution).
//!
//! (a) Accuracy loss vs sampling fraction for both datasets. Paper shape:
//!     both curves fall with the fraction; the pollution curve sits *below*
//!     the taxi curve because pollution readings are much stabler than taxi
//!     fares.
//! (b) Throughput vs sampling fraction. Paper shape: throughput falls as
//!     the fraction grows; at 10% it is many times the native execution's.

use approxiot_bench::{
    accuracy_run_trace, figure_header, print_row, split_by_stratum, PAPER_FRACTIONS_PCT,
    PAPER_FRACTIONS_WITH_FULL_PCT,
};
use approxiot_core::Batch;
use approxiot_runtime::{run_pipeline, FractionSplit, PipelineConfig, Query, Strategy};
use approxiot_workload::{PollutionTrace, TaxiTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const WINDOW: Duration = Duration::from_millis(100);

fn taxi_accuracy(strategy: Strategy, fraction: f64, seed: u64) -> f64 {
    let mut trace = TaxiTrace::new(40_000.0, WINDOW);
    accuracy_run_trace(
        |rng| trace.next_interval(rng),
        WINDOW,
        strategy,
        fraction,
        20,
        seed,
    )
}

fn pollution_accuracy(strategy: Strategy, fraction: f64, seed: u64) -> f64 {
    let mut trace = PollutionTrace::new(1_000, WINDOW);
    accuracy_run_trace(
        |rng| trace.next_interval(rng),
        WINDOW,
        strategy,
        fraction,
        20,
        seed,
    )
}

/// Pre-generates interval batches from a trace, split per stratum into
/// "sources" for the threaded pipeline.
fn trace_intervals(
    mut next: impl FnMut(&mut StdRng) -> Batch,
    intervals: usize,
) -> Vec<Vec<Batch>> {
    let mut rng = StdRng::seed_from_u64(0xF16);
    (0..intervals)
        .map(|_| {
            let batch = next(&mut rng);
            let mut parts = split_by_stratum(&batch);
            // Pad to a fixed source count so the matrix is rectangular.
            while parts.len() < 8 {
                parts.push(Batch::new());
            }
            parts.truncate(8);
            parts
        })
        .collect()
}

fn throughput(data: &[Vec<Batch>], strategy: Strategy, fraction: f64) -> f64 {
    let config = PipelineConfig {
        leaves: 4,
        mids: 2,
        strategy,
        overall_fraction: fraction,
        split: FractionSplit::LeafHeavy,
        window: WINDOW,
        query: Query::Sum,
        hop_delays: [Duration::from_millis(1); 3],
        capacity_bytes_per_sec: Some(3_000_000),
        // Sources can feed at most 10x the WAN capacity, bounding the
        // attainable speedup near the paper's ~10x at a 10% fraction.
        source_capacity_bytes_per_sec: Some(7_500_000),
        source_interval: None,
        edge_workers: 1,
        seed: 11,
    };
    run_pipeline(&config, data.to_vec())
        .expect("valid config")
        .throughput_items_per_sec
}

fn main() {
    figure_header(
        "Figure 11(a)",
        "accuracy loss vs fraction, real-world traces",
    );
    let seeds = [3, 13, 23, 33, 43];
    print_row(&[
        "fraction %".into(),
        "NYC Taxi %".into(),
        "Brasov Pollution %".into(),
    ]);
    for f_pct in PAPER_FRACTIONS_PCT {
        let fraction = f_pct as f64 / 100.0;
        let taxi: f64 = seeds
            .iter()
            .map(|&s| taxi_accuracy(Strategy::whs(), fraction, s))
            .sum::<f64>()
            / seeds.len() as f64;
        let pollution: f64 = seeds
            .iter()
            .map(|&s| pollution_accuracy(Strategy::whs(), fraction, s))
            .sum::<f64>()
            / seeds.len() as f64;
        print_row(&[
            format!("{f_pct}"),
            format!("{:.4}", taxi * 100.0),
            format!("{:.4}", pollution * 100.0),
        ]);
    }
    println!("\nExpected shape: both fall with the fraction; pollution sits below taxi");
    println!("(stabler values).");

    figure_header("Figure 11(b)", "throughput vs fraction, real-world traces");
    let taxi_data = {
        let mut trace = TaxiTrace::new(60_000.0, WINDOW);
        trace_intervals(move |rng| trace.next_interval(rng), 10)
    };
    let pollution_data = {
        let mut trace = PollutionTrace::new(1_500, WINDOW);
        trace_intervals(move |rng| trace.next_interval(rng), 10)
    };
    let native_taxi = throughput(&taxi_data, Strategy::Native, 1.0);
    let native_pollution = throughput(&pollution_data, Strategy::Native, 1.0);
    print_row(&[
        "fraction %".into(),
        "NYC Taxi".into(),
        "Brasov Pollution".into(),
        "Native (taxi)".into(),
    ]);
    for f_pct in PAPER_FRACTIONS_WITH_FULL_PCT {
        let fraction = f_pct as f64 / 100.0;
        let taxi = throughput(&taxi_data, Strategy::whs(), fraction);
        let pollution = throughput(&pollution_data, Strategy::whs(), fraction);
        print_row(&[
            format!("{f_pct}"),
            format!("{taxi:.0}"),
            format!("{pollution:.0}"),
            format!("{native_taxi:.0}"),
        ]);
    }
    let _ = native_pollution;
    println!("\nExpected shape: throughput falls as the fraction rises; both traces");
    println!("behave similarly; 10% is many times the native rate.");
}
