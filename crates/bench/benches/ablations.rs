//! Ablations: which pieces of the ApproxIoT design actually buy the
//! accuracy and bandwidth wins? (DESIGN.md §8.)
//!
//! 1. **Allocation policy** — uniform (fair) per-stratum reservoir shares
//!    vs proportional shares. Proportional degenerates towards SRS on
//!    skewed streams: the rare-but-valuable stratum is starved.
//! 2. **Edge sampling vs root-only sampling** — ApproxIoT's multi-level
//!    sampling vs a StreamApprox-style centralised sampler with the same
//!    end-to-end fraction. Accuracy is comparable, but root-only sampling
//!    forfeits the WAN bandwidth savings — the system's reason to exist.

use approxiot_bench::{accuracy_interval, figure_header, pct, print_row, split_by_stratum};
use approxiot_core::Allocation;
use approxiot_runtime::{FractionSplit, Query, SimTree, Strategy, TreeConfig};
use approxiot_workload::scenarios;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Accuracy with all four strata flowing through a *single* source (so a
/// node's batch mixes strata and the allocation policy actually arbitrates
/// the reservoir budget between them).
fn mixed_source_accuracy(allocation: Allocation, fraction: f64, seeds: &[u64]) -> f64 {
    let mut total = 0.0;
    for &seed in seeds {
        let config = TreeConfig {
            leaves: 4,
            mids: 2,
            strategy: Strategy::Whs { allocation },
            overall_fraction: fraction,
            split: FractionSplit::Even,
            window: accuracy_interval(),
            query: Query::Sum,
            seed,
        };
        let mut tree = SimTree::new(config).expect("valid fraction");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let mut mix = scenarios::skewed_mix(40_000.0, accuracy_interval());
        let mut truth = 0.0;
        for _ in 0..20 {
            let batch = mix.next_interval(&mut rng);
            truth += batch.value_sum();
            tree.push_interval(std::slice::from_ref(&batch));
        }
        let estimate: f64 = tree.flush().iter().map(|r| r.estimate.value).sum();
        total += approxiot_core::accuracy_loss(estimate, truth);
    }
    total / seeds.len() as f64
}

fn main() {
    figure_header(
        "Ablation 1",
        "uniform vs proportional reservoir allocation (skewed mix)",
    );
    println!("(single mixed source: the allocation policy arbitrates the budget)");
    let seeds = [5, 15, 25, 35, 45];
    print_row(&[
        "fraction %".into(),
        "uniform %".into(),
        "proportional %".into(),
    ]);
    for f_pct in [10u32, 20, 40, 60] {
        let fraction = f_pct as f64 / 100.0;
        let uniform = mixed_source_accuracy(Allocation::Uniform, fraction, &seeds);
        let proportional = mixed_source_accuracy(Allocation::Proportional, fraction, &seeds);
        print_row(&[
            format!("{f_pct}"),
            format!("{:.4}", pct(uniform)),
            format!("{:.4}", pct(proportional)),
        ]);
    }
    println!("\nExpected: proportional allocation starves the rare stratum and loses");
    println!("accuracy exactly where stratification is supposed to help.");

    figure_header(
        "Ablation 2",
        "edge sampling vs root-only sampling (same end-to-end fraction)",
    );
    print_row(&[
        "fraction %".into(),
        "edge WAN bytes".into(),
        "root-only WAN bytes".into(),
        "edge loss %".into(),
        "root-only loss %".into(),
    ]);
    for f_pct in [10u32, 40, 80] {
        let fraction = f_pct as f64 / 100.0;
        let (edge_bytes, edge_loss) = run_tree(fraction, false);
        let (root_bytes, root_loss) = run_tree(fraction, true);
        print_row(&[
            format!("{f_pct}"),
            format!("{edge_bytes}"),
            format!("{root_bytes}"),
            format!("{:.4}", pct(edge_loss)),
            format!("{:.4}", pct(root_loss)),
        ]);
    }
    println!("\nExpected: similar accuracy, but root-only sampling ships the full");
    println!("stream across the WAN — no bandwidth saving at all.");
}

/// Runs the Gaussian mix through the tree; `root_only` makes the edge
/// layers native and concentrates the whole fraction at the root
/// (StreamApprox-style).
fn run_tree(fraction: f64, root_only: bool) -> (u64, f64) {
    let config = if root_only {
        // Edges forward everything; the root samples at the full fraction.
        // Modelled by a 1-stage tree config where the per-stage fraction is
        // the overall fraction: leaves/mids native is not directly
        // expressible in TreeConfig, so we build a custom tree below.
        TreeConfig {
            leaves: 4,
            mids: 2,
            strategy: Strategy::Native,
            overall_fraction: 1.0,
            split: FractionSplit::Even,
            window: accuracy_interval(),
            query: Query::Sum,
            seed: 0xAB1,
        }
    } else {
        TreeConfig {
            leaves: 4,
            mids: 2,
            strategy: Strategy::whs(),
            overall_fraction: fraction,
            split: FractionSplit::Even,
            window: accuracy_interval(),
            query: Query::Sum,
            seed: 0xAB1,
        }
    };
    let mut rng = StdRng::seed_from_u64(0xAB17);
    let mut mix = scenarios::gaussian_mix(40_000.0, accuracy_interval());
    let mut truth = 0.0;
    let mut estimate = 0.0;

    if root_only {
        // Native edges + a separate WHS "root" stage at the overall
        // fraction: run the native tree, then sample its root input.
        use approxiot_core::{
            whs_sample, Allocation, CostFunction, SamplingBudget, ThetaStore, WeightMap,
        };
        let mut tree = SimTree::new(config).expect("valid");
        let budget = SamplingBudget::new(fraction).expect("valid");
        let mut theta = ThetaStore::new();
        for _ in 0..20 {
            let batch = mix.next_interval(&mut rng);
            truth += batch.value_sum();
            tree.push_interval(&split_by_stratum(&batch));
            // Sample at the "root" over the raw batch (centralised).
            let size = budget.sample_size(batch.len());
            let out = whs_sample(
                &batch,
                size,
                &WeightMap::new(),
                Allocation::Uniform,
                &mut rng,
            );
            theta.push(out);
        }
        tree.flush();
        estimate = theta.sum_estimate().value;
        (
            tree.bytes().sampled_wire_bytes(),
            approxiot_core::accuracy_loss(estimate, truth),
        )
    } else {
        let mut tree = SimTree::new(config).expect("valid");
        for _ in 0..20 {
            let batch = mix.next_interval(&mut rng);
            truth += batch.value_sum();
            tree.push_interval(&split_by_stratum(&batch));
        }
        for r in tree.flush() {
            estimate += r.estimate.value;
        }
        (
            tree.bytes().sampled_wire_bytes(),
            approxiot_core::accuracy_loss(estimate, truth),
        )
    }
}
