//! End-to-end tests of the `harness` binary: two real invocations must
//! reproduce the deterministic columns bit for bit, a self-baseline must
//! pass `--check`, and a perturbed baseline must fail it with a non-zero
//! exit.

use approxiot_bench::harness::MatrixReport;
use std::path::PathBuf;
use std::process::{Command, Output};

fn run_harness(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_harness"))
        .args(args)
        .output()
        .expect("harness binary runs")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("approxiot_harness_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

#[test]
fn two_invocations_reproduce_and_the_check_gates() {
    let first = scratch("first.json");
    let second = scratch("second.json");

    // Invocation 1: write a baseline.
    let out = run_harness(&["--quick", "--out", first.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("| paper/approxiot/w1/loss0/f10 |"),
        "markdown summary on stdout:\n{stdout}"
    );

    // Invocation 2: a fresh process must reproduce every deterministic
    // column bit for bit.
    let out = run_harness(&["--quick", "--out", second.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let a = MatrixReport::parse(&std::fs::read_to_string(&first).unwrap()).unwrap();
    let b = MatrixReport::parse(&std::fs::read_to_string(&second).unwrap()).unwrap();
    assert_eq!(a.rows.len(), b.rows.len());
    for (x, y) in a.rows.iter().zip(&b.rows) {
        assert_eq!(x.id, y.id);
        assert_eq!(
            x.mean_error.to_bits(),
            y.mean_error.to_bits(),
            "mean_error of {} differs across invocations",
            x.id
        );
        assert_eq!(
            x.mean_completeness.to_bits(),
            y.mean_completeness.to_bits(),
            "mean_completeness of {} differs across invocations",
            x.id
        );
        assert_eq!(x.total_error.to_bits(), y.total_error.to_bits(), "{}", x.id);
        assert_eq!(x.hop_bytes, y.hop_bytes, "{}", x.id);
        assert_eq!(
            (
                x.windows,
                x.dropped_items,
                x.duplicated_items,
                x.source_items
            ),
            (
                y.windows,
                y.dropped_items,
                y.duplicated_items,
                y.source_items
            ),
            "{}",
            x.id
        );
    }

    // Invocation 3: checking against our own fresh baseline passes.
    let out = run_harness(&["--quick", "--check", "--baseline", first.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "self-baseline check failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("PASSED"));

    // Invocation 4: a 1-ulp perturbation of one error cell fails the
    // check with a non-zero exit that names the drifted column.
    let mut drifted = a.clone();
    drifted.rows[5].mean_error = f64::from_bits(drifted.rows[5].mean_error.to_bits() + 1);
    let perturbed = scratch("perturbed.json");
    std::fs::write(&perturbed, drifted.to_pretty()).unwrap();
    let out = run_harness(&[
        "--quick",
        "--check",
        "--baseline",
        perturbed.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "perturbed baseline must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mean_error"), "names the column:\n{stderr}");
    assert!(
        stderr.contains(&drifted.rows[5].id),
        "names the row:\n{stderr}"
    );
}

#[test]
fn missing_and_malformed_baselines_fail_clearly() {
    let out = run_harness(&["--quick", "--check"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--baseline"));

    let garbage = scratch("garbage.json");
    std::fs::write(&garbage, "{ not json").unwrap();
    let out = run_harness(&[
        "--quick",
        "--check",
        "--baseline",
        garbage.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("malformed"));

    let out = run_harness(&["--bogus-flag"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));

    // A flag where a value belongs is a parse error, not a value — the
    // gate must never be silently skipped by an argument slip.
    let out = run_harness(&["--out", "--check", "--baseline", "x.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out needs a value"));
}
