//! The scenario-matrix benchmark harness — the engine behind the
//! `harness` binary.
//!
//! One declarative matrix crosses every axis the paper's accuracy-vs-cost
//! trade-off has: topology **shape** (the paper's 8→4→2 tree, a deeper
//! 4-hop variant, a fully sharded variant) × sampling **strategy**
//! (WHS / SRS / native / mergeable sketch strata) × §III-E edge
//! **workers** {1, 2, 4} × [`ImpairmentSpec`] **loss** {0, 1%, 5%, 10%}
//! × end-to-end **fraction** {10%, 20%}. Sketch scenarios additionally
//! sweep the [`SketchConfig`] fidelity axis (compact / default /
//! high-fidelity) on the clean trees — the driver rejects impairment and
//! churn on the summary path, so those axes stay item-strategy-only. Every scenario runs the same fixed-seed workload through
//! the [`Driver`] front door on the deterministic virtual-time engine and
//! is measured against an **exact native reference run** of the same
//! shape (`Strategy::Native`, fraction 1.0, no impairment), producing one
//! [`ScenarioRow`] of error / completeness / per-hop bytes / wall-clock
//! columns.
//!
//! The result table serializes to the schema-versioned
//! `BENCH_harness.json` ([`MatrixReport`]); [`check`] implements the CI
//! baseline gate:
//!
//! * **deterministic columns** (error, completeness, bytes, fault and
//!   item counts) must reproduce the baseline **bit for bit** at fixed
//!   seed — any drift is a behaviour change, not noise;
//! * **wall-clock columns** get noise-aware bands: wide on 1-CPU hosts
//!   (scheduler noise dominates), tighter on multi-core hosts, and
//!   skipped entirely when the baseline was recorded on a host with a
//!   different CPU count (cross-machine wall-clock comparisons are
//!   meaningless — the fresh numbers still land in the CI artifact).

use crate::json::Json;
use approxiot_core::{accuracy_loss, SketchConfig};
use approxiot_net::ImpairmentSpec;
use approxiot_runtime::{
    mean_window_error, window_estimates, ChurnSchedule, Driver, EngineKind, LayerSpec, QuerySet,
    QuerySpec, RunReport, RunSummary, Strategy, Topology,
};
use approxiot_workload::scenarios::{self, ChaosLevel};
use approxiot_workload::StreamMix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::Duration;

/// Version of the `BENCH_harness.json` schema this build reads/writes.
/// v2 added the churn scenario rows and their five exact-integer columns;
/// v3 added the sketch-strategy rows, whose ids carry a `/k{K}h{H}`
/// [`SketchConfig`] suffix.
pub const SCHEMA_VERSION: u64 = 3;

/// Every shape feeds this many sources, so one fixed-seed dataset serves
/// the whole matrix.
pub const SOURCES: usize = 8;

/// The topology shapes the matrix sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// The paper's testbed: 8 sources → 4 edge → 2 edge → root, worker
    /// shards on the first (leaf) layer.
    Paper,
    /// One hop deeper: 8 → 4 → 2 → 1 → root — a fourth sampling stage
    /// and a fourth metered WAN hop.
    Deep4,
    /// The paper shape with §III-E worker shards on *every* edge layer.
    Sharded,
}

impl Shape {
    /// Scenario-id slug.
    pub fn slug(self) -> &'static str {
        match self {
            Shape::Paper => "paper",
            Shape::Deep4 => "deep4",
            Shape::Sharded => "sharded",
        }
    }
}

/// Named fleet-churn schedules the matrix sweeps on the paper tree
/// (layers 4 → 2); each is a deterministic [`ChurnSchedule`] scaled to
/// the workload's interval count so the quick and full workloads both
/// exercise it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnPreset {
    /// One leaf crashes mid-run, losing its buffered window.
    CrashOneLeaf,
    /// A staggered one-interval reboot walks across all four leaves.
    RollingReboot,
    /// A mid node goes dark for the second half of the run, taking its
    /// whole subtree's output with it.
    DarkSubtree,
    /// Every leaf drops to a half-fraction low-power mode after warm-up.
    LowPowerFleet,
}

impl ChurnPreset {
    /// Scenario-id slug.
    pub fn slug(self) -> &'static str {
        match self {
            ChurnPreset::CrashOneLeaf => "crash-one-leaf",
            ChurnPreset::RollingReboot => "rolling-reboot",
            ChurnPreset::DarkSubtree => "dark-subtree",
            ChurnPreset::LowPowerFleet => "low-power-fleet",
        }
    }

    /// The schedule, scaled to `intervals` windows of workload.
    pub fn schedule(self, intervals: u64) -> ChurnSchedule {
        let mid = (intervals / 2).max(1);
        match self {
            ChurnPreset::CrashOneLeaf => ChurnSchedule::new().crash(0, 0, mid),
            ChurnPreset::RollingReboot => (0..4u64).fold(ChurnSchedule::new(), |s, k| {
                s.down(0, k as usize, 1 + k, 2 + k)
            }),
            ChurnPreset::DarkSubtree => ChurnSchedule::new().down(1, 0, mid, mid + intervals),
            ChurnPreset::LowPowerFleet => (0..4).fold(ChurnSchedule::new(), |s, k| {
                s.low_power(0, k, 1, intervals.max(2), 0.5)
            }),
        }
    }
}

/// One cell of the scenario matrix.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Topology shape.
    pub shape: Shape,
    /// Sampling strategy at every stage.
    pub strategy: Strategy,
    /// §III-E worker shards (where the shape places them).
    pub workers: usize,
    /// Impairment level on every hop.
    pub level: ChaosLevel,
    /// End-to-end sampling fraction.
    pub fraction: f64,
    /// Fleet-churn schedule, if any (paper shape only).
    pub churn: Option<ChurnPreset>,
}

impl Scenario {
    /// The stable row id baselines are matched by, e.g.
    /// `paper/approxiot/w2/loss5/f20` — churn rows append their preset
    /// slug (`.../f20/churn-rolling-reboot`) and sketch rows their
    /// [`SketchConfig`] (`.../f100/k256h64`), so pre-existing ids are
    /// untouched.
    pub fn id(&self) -> String {
        let base = format!(
            "{}/{}/w{}/loss{}/f{}",
            self.shape.slug(),
            self.strategy.label(),
            self.workers,
            self.level.loss_pct(),
            (self.fraction * 100.0).round() as u32
        );
        let base = match self.strategy {
            Strategy::Sketch(config) => {
                format!("{base}/k{}h{}", config.kll_k, config.heavy_capacity)
            }
            _ => base,
        };
        match self.churn {
            Some(preset) => format!("{base}/churn-{}", preset.slug()),
            None => base,
        }
    }

    /// The topology this cell runs.
    pub fn topology(&self, opts: &HarnessOptions) -> Topology {
        let spec = ImpairmentSpec::none()
            .loss(self.level.loss)
            .duplicate(self.level.duplicate)
            .jitter(opts.window.mul_f64(self.level.jitter_window_fraction));
        let builder = Topology::builder().sources(SOURCES);
        let builder = match self.shape {
            Shape::Paper => builder
                .layer(LayerSpec::new(4).workers(self.workers))
                .layer(LayerSpec::new(2)),
            Shape::Deep4 => builder
                .layer(LayerSpec::new(4).workers(self.workers))
                .layer(LayerSpec::new(2))
                .layer(LayerSpec::new(1)),
            Shape::Sharded => builder
                .layer(LayerSpec::new(4).workers(self.workers))
                .layer(LayerSpec::new(2).workers(self.workers)),
        };
        let builder = match self.churn {
            Some(preset) => builder.churn(preset.schedule(opts.intervals)),
            None => builder,
        };
        builder
            .impair_all_hops(spec)
            .strategy(self.strategy)
            .overall_fraction(self.fraction)
            .window(opts.window)
            .seed(opts.seed)
            .build()
            .expect("matrix fractions are valid")
    }
}

/// The default matrix: the full ROADMAP loss × fraction × workers sweep
/// on the paper tree, the SRS/native strategy baselines, the shape
/// sweep, the fleet-churn preset sweep, and the sketch-strata fidelity
/// sweep — 43 scenarios.
pub fn default_matrix() -> Vec<Scenario> {
    let levels = scenarios::matrix_levels();
    let mut matrix = Vec::new();
    // 1. The ROADMAP sweep: loss {0,1,5,10}% × fraction {10,20}% ×
    //    workers {1,2,4} on the paper tree under WHS.
    for level in levels {
        for fraction in scenarios::MATRIX_FRACTIONS {
            for workers in scenarios::MATRIX_WORKERS {
                matrix.push(Scenario {
                    shape: Shape::Paper,
                    strategy: Strategy::whs(),
                    workers,
                    level,
                    fraction,
                    churn: None,
                });
            }
        }
    }
    // 2. Strategy baselines on the same tree at the control and mid-loss
    //    levels: SRS (the paper's coin-flip baseline) across both
    //    fractions; native (the exactness control) ignores the fraction
    //    axis entirely — SamplingNode forwards everything — so it gets
    //    one row per level at its true fraction of 100% instead of
    //    bit-identical duplicates per fraction.
    for fraction in scenarios::MATRIX_FRACTIONS {
        for level in [levels[0], levels[2]] {
            matrix.push(Scenario {
                shape: Shape::Paper,
                strategy: Strategy::Srs,
                workers: 1,
                level,
                fraction,
                churn: None,
            });
        }
    }
    for level in [levels[0], levels[2]] {
        matrix.push(Scenario {
            shape: Shape::Paper,
            strategy: Strategy::Native,
            workers: 1,
            level,
            fraction: 1.0,
            churn: None,
        });
    }
    // 3. Shape sweep at the 20% fraction: one hop deeper, and shards on
    //    every layer.
    for shape in [Shape::Deep4, Shape::Sharded] {
        for level in [levels[0], levels[2]] {
            matrix.push(Scenario {
                shape,
                strategy: Strategy::whs(),
                workers: 4,
                level,
                fraction: 0.2,
                churn: None,
            });
        }
    }
    // 4. Fleet-churn presets on the clean paper tree at the 20% fraction:
    //    each scored against the same (unchurned) native reference, so
    //    the error columns show what the node-level Horvitz–Thompson
    //    rescale recovers under outages.
    for churn in [
        ChurnPreset::CrashOneLeaf,
        ChurnPreset::RollingReboot,
        ChurnPreset::DarkSubtree,
        ChurnPreset::LowPowerFleet,
    ] {
        matrix.push(Scenario {
            shape: Shape::Paper,
            strategy: Strategy::whs(),
            workers: 1,
            level: levels[0],
            fraction: 0.2,
            churn: Some(churn),
        });
    }
    // 5. Mergeable sketch strata on the clean trees (the driver rejects
    //    impairment and churn on the summary path, and the fraction axis
    //    does not apply — summaries absorb everything, so rows carry the
    //    f100 slug like native). The default config runs on every shape;
    //    the paper tree additionally spans the fidelity axis with a
    //    compact and a high-fidelity config, bracketing the error/bytes
    //    trade-off the README table quotes.
    for shape in [Shape::Paper, Shape::Deep4, Shape::Sharded] {
        matrix.push(Scenario {
            shape,
            strategy: Strategy::sketch(),
            workers: if shape == Shape::Sharded { 4 } else { 1 },
            level: levels[0],
            fraction: 1.0,
            churn: None,
        });
    }
    for config in [SketchConfig::new(64, 8), SketchConfig::new(1024, 64)] {
        matrix.push(Scenario {
            shape: Shape::Paper,
            strategy: Strategy::Sketch(config),
            workers: 1,
            level: levels[0],
            fraction: 1.0,
            churn: None,
        });
    }
    matrix
}

/// Workload parameters shared by every scenario (part of the baseline
/// identity: [`check`] refuses to compare runs with different ones).
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Windows of data to generate and push.
    pub intervals: u64,
    /// Workload rate, items per window across all strata.
    pub rate: f64,
    /// Computation window (and workload interval).
    pub window: Duration,
    /// Base seed: topologies use it directly, the workload derives from
    /// it.
    pub seed: u64,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            intervals: 8,
            rate: 24_000.0,
            window: Duration::from_secs(1),
            seed: 0x10D5,
        }
    }
}

impl HarnessOptions {
    /// A smaller workload for smoke tests (`--quick`).
    pub fn quick() -> Self {
        HarnessOptions {
            intervals: 3,
            rate: 4_000.0,
            ..HarnessOptions::default()
        }
    }
}

/// The fixed-seed dataset every scenario consumes: `intervals` windows of
/// the four-strata chaos mix, split round-robin over the [`SOURCES`]
/// through the same [`scenarios::split_interval`] the chaos example uses.
pub fn dataset(opts: &HarnessOptions) -> Vec<Vec<approxiot_core::Batch>> {
    // analysis: allow(D3, reason = "bench-only workload generator; engine RNGs still derive from Topology seeds")
    #[allow(clippy::disallowed_methods)]
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5EED_DA7A);
    let mut mix: StreamMix = scenarios::chaos_mix(opts.rate, opts.window);
    (0..opts.intervals)
        .map(|t| scenarios::split_interval(mix.next_interval(&mut rng), t, opts.window, SOURCES))
        .collect()
}

/// Runs one scenario over prepared data through the driver front door.
pub fn run_scenario(
    scenario: &Scenario,
    opts: &HarnessOptions,
    data: &[Vec<approxiot_core::Batch>],
) -> RunReport {
    Driver::new(
        scenario.topology(opts),
        QuerySet::new().with(QuerySpec::Sum),
        EngineKind::Sim,
    )
    .expect("valid topology")
    .run(data)
    .expect("sim run")
}

/// Runs the exact reference for a shape: native strategy, full fraction,
/// no impairment — the per-window ground truth of every approximate
/// scenario on that shape.
pub fn run_reference(
    shape: Shape,
    opts: &HarnessOptions,
    data: &[Vec<approxiot_core::Batch>],
) -> RunReport {
    let exact = Scenario {
        shape,
        strategy: Strategy::Native,
        workers: 1,
        level: scenarios::matrix_levels()[0],
        fraction: 1.0,
        churn: None,
    };
    run_scenario(&exact, opts, data)
}

/// One scenario's measured row.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// Stable id ([`Scenario::id`]).
    pub id: String,
    /// Windows the run emitted.
    pub windows: u64,
    /// Mean per-window relative error vs the exact native reference.
    pub mean_error: f64,
    /// Relative error of the summed estimate vs the exact total.
    pub total_error: f64,
    /// Mean per-window completeness fraction.
    pub mean_completeness: f64,
    /// Items lost in flight.
    pub dropped_items: u64,
    /// Extra item copies delivered.
    pub duplicated_items: u64,
    /// Items the root rejected past the allowed-lateness horizon.
    /// Always zero on the virtual-time engine (jitter perturbs wall
    /// clock only); recorded so the late-drop channel is gated the day a
    /// scenario runs the wall-clock pipeline.
    pub dropped_late: u64,
    /// Items pushed by the sources.
    pub source_items: u64,
    /// Node-intervals spent down across the fleet ([`RunReport::churn`]).
    pub node_downtime: u64,
    /// Windows in which any node was not fully healthy.
    pub windows_degraded: u64,
    /// Mid-window crashes that fired.
    pub churn_crashes: u64,
    /// Down→up transitions observed on the timeline.
    pub churn_reboots: u64,
    /// Replacement nodes that joined a layer.
    pub churn_replacements: u64,
    /// Wire bytes per hop, source-side hop first.
    pub hop_bytes: Vec<u64>,
    /// Bytes past the first hop (what sampling saves on).
    pub wire_bytes: u64,
    /// Wall time of the run, seconds (noise; not gated bit-exactly).
    pub elapsed_secs: f64,
    /// Source items per wall second (noise; band-gated).
    pub throughput_items_per_sec: f64,
}

/// The whole matrix's results plus everything needed to reproduce them.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Producing tool, `"approxiot-harness"`.
    pub tool: String,
    /// Workload parameters ([`HarnessOptions`]).
    pub opts: HarnessOptions,
    /// Detected logical CPUs on the recording host.
    pub cpus: u64,
    /// One row per scenario, matrix order.
    pub rows: Vec<ScenarioRow>,
}

/// Detected logical CPU count (1 when detection fails).
pub fn detected_cpus() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

/// Whether a scenario *is* its shape's exact reference configuration
/// (native, full fraction, single worker, unimpaired) — such rows reuse
/// the cached reference run instead of repeating the most expensive run
/// in the matrix.
fn is_reference(scenario: &Scenario) -> bool {
    matches!(scenario.strategy, Strategy::Native)
        && scenario.fraction == 1.0
        && scenario.workers == 1
        && scenario.level == scenarios::matrix_levels()[0]
}

/// Executes `matrix` and measures every scenario against its shape's
/// exact reference run.
pub fn run_matrix(matrix: &[Scenario], opts: &HarnessOptions) -> MatrixReport {
    let data = dataset(opts);
    // One exact native reference per shape; its report doubles as the
    // matrix's own native control row.
    let mut references: BTreeMap<&'static str, RunReport> = BTreeMap::new();
    let rows = matrix
        .iter()
        .map(|scenario| {
            let reference = references
                .entry(scenario.shape.slug())
                .or_insert_with(|| run_reference(scenario.shape, opts, &data));
            let truth = window_estimates(reference);
            let report = if is_reference(scenario) {
                reference.clone()
            } else {
                run_scenario(scenario, opts, &data)
            };
            let summary = RunSummary::of(&report);
            let exact_total: f64 = truth.values().sum();
            ScenarioRow {
                id: scenario.id(),
                windows: summary.windows as u64,
                mean_error: mean_window_error(&report, &truth),
                total_error: accuracy_loss(summary.estimate_total, exact_total),
                mean_completeness: summary.mean_completeness,
                dropped_items: summary.dropped_items,
                duplicated_items: summary.duplicated_items,
                dropped_late: summary.dropped_late,
                source_items: summary.source_items,
                node_downtime: report.churn.node_downtime,
                windows_degraded: report.churn.windows_degraded,
                churn_crashes: report.churn.crashes,
                churn_reboots: report.churn.reboots,
                churn_replacements: report.churn.replacements,
                hop_bytes: summary.hop_bytes,
                wire_bytes: summary.wire_bytes,
                elapsed_secs: summary.elapsed.as_secs_f64(),
                throughput_items_per_sec: summary.throughput_items_per_sec,
            }
        })
        .collect();
    MatrixReport {
        schema_version: SCHEMA_VERSION,
        tool: "approxiot-harness".to_string(),
        opts: opts.clone(),
        cpus: detected_cpus(),
        rows,
    }
}

impl MatrixReport {
    /// Serializes to the `BENCH_harness.json` schema.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::from(self.schema_version)),
            ("tool", Json::from(self.tool.as_str())),
            (
                "workload",
                Json::obj([
                    ("intervals", Json::from(self.opts.intervals)),
                    ("rate_items_per_window", Json::from(self.opts.rate)),
                    ("window_secs", Json::from(self.opts.window.as_secs_f64())),
                    ("seed", Json::from(self.opts.seed)),
                    ("sources", Json::from(SOURCES)),
                ]),
            ),
            ("cpus", Json::from(self.cpus)),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|row| {
                            Json::obj([
                                ("id", Json::from(row.id.as_str())),
                                ("windows", Json::from(row.windows)),
                                ("mean_error", Json::from(row.mean_error)),
                                ("total_error", Json::from(row.total_error)),
                                ("mean_completeness", Json::from(row.mean_completeness)),
                                ("dropped_items", Json::from(row.dropped_items)),
                                ("dropped_late", Json::from(row.dropped_late)),
                                ("duplicated_items", Json::from(row.duplicated_items)),
                                ("source_items", Json::from(row.source_items)),
                                ("node_downtime", Json::from(row.node_downtime)),
                                ("windows_degraded", Json::from(row.windows_degraded)),
                                ("churn_crashes", Json::from(row.churn_crashes)),
                                ("churn_reboots", Json::from(row.churn_reboots)),
                                ("churn_replacements", Json::from(row.churn_replacements)),
                                (
                                    "hop_bytes",
                                    Json::Arr(
                                        row.hop_bytes.iter().map(|&b| Json::from(b)).collect(),
                                    ),
                                ),
                                ("wire_bytes", Json::from(row.wire_bytes)),
                                ("elapsed_secs", Json::from(row.elapsed_secs)),
                                (
                                    "throughput_items_per_sec",
                                    Json::from(row.throughput_items_per_sec),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The pretty-printed document (what `--out` writes).
    pub fn to_pretty(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parses a `BENCH_harness.json` document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed or missing field.
    pub fn parse(text: &str) -> Result<MatrixReport, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        MatrixReport::from_json(&doc)
    }

    /// Decodes the schema from a parsed JSON tree.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed or missing field.
    pub fn from_json(doc: &Json) -> Result<MatrixReport, String> {
        let field_u64 = |v: &Json, key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| missing(key))
        };
        let field_f64 = |v: &Json, key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| missing(key))
        };
        let workload = doc.get("workload").ok_or_else(|| missing("workload"))?;
        // `sources` is part of the workload identity but a compile-time
        // constant, not an option — refuse baselines recorded with a
        // different source count instead of misreporting every row as
        // seed drift.
        let sources = field_u64(workload, "sources")?;
        if sources != SOURCES as u64 {
            return Err(format!(
                "baseline recorded with {sources} sources, this build uses {SOURCES}"
            ));
        }
        let rows = doc
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| missing("rows"))?
            .iter()
            .map(|row| {
                Ok(ScenarioRow {
                    id: row
                        .get("id")
                        .and_then(Json::as_str)
                        .ok_or_else(|| missing("rows[].id"))?
                        .to_string(),
                    windows: field_u64(row, "windows")?,
                    mean_error: field_f64(row, "mean_error")?,
                    total_error: field_f64(row, "total_error")?,
                    mean_completeness: field_f64(row, "mean_completeness")?,
                    dropped_items: field_u64(row, "dropped_items")?,
                    dropped_late: field_u64(row, "dropped_late")?,
                    duplicated_items: field_u64(row, "duplicated_items")?,
                    source_items: field_u64(row, "source_items")?,
                    node_downtime: field_u64(row, "node_downtime")?,
                    windows_degraded: field_u64(row, "windows_degraded")?,
                    churn_crashes: field_u64(row, "churn_crashes")?,
                    churn_reboots: field_u64(row, "churn_reboots")?,
                    churn_replacements: field_u64(row, "churn_replacements")?,
                    hop_bytes: row
                        .get("hop_bytes")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| missing("rows[].hop_bytes"))?
                        .iter()
                        .map(|b| b.as_u64().ok_or_else(|| missing("rows[].hop_bytes[]")))
                        .collect::<Result<_, _>>()?,
                    wire_bytes: field_u64(row, "wire_bytes")?,
                    elapsed_secs: field_f64(row, "elapsed_secs")?,
                    throughput_items_per_sec: field_f64(row, "throughput_items_per_sec")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(MatrixReport {
            schema_version: field_u64(doc, "schema_version")?,
            tool: doc
                .get("tool")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("tool"))?
                .to_string(),
            opts: HarnessOptions {
                intervals: field_u64(workload, "intervals")?,
                rate: field_f64(workload, "rate_items_per_window")?,
                window: Duration::try_from_secs_f64(field_f64(workload, "window_secs")?)
                    .map_err(|e| format!("invalid 'window_secs': {e}"))?,
                seed: field_u64(workload, "seed")?,
            },
            cpus: field_u64(doc, "cpus")?,
            rows,
        })
    }
}

fn missing(key: &str) -> String {
    format!("missing or mistyped field '{key}'")
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Everything that failed, one human-readable line each; empty =
    /// pass.
    pub failures: Vec<String>,
    /// Whether the aggregate wall-clock gate was applied (same CPU count
    /// on both sides and both runs long enough to measure).
    pub perf_gated: bool,
    /// Human-readable description of the wall-clock gate's status.
    pub perf_note: String,
    /// Rows compared.
    pub compared: usize,
}

impl CheckReport {
    /// `true` when nothing failed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Allowed relative regression of **aggregate** throughput before the
/// perf gate fails: wide on 1-CPU hosts (shared-runner scheduler noise
/// dominates there), tighter with real parallelism.
pub fn throughput_band(cpus: u64) -> f64 {
    if cpus <= 1 {
        0.60
    } else {
        0.30
    }
}

/// Minimum summed scenario wall time (seconds) before throughput is
/// gated at all. Individual scenarios run in microseconds to
/// milliseconds, where a single scheduler preemption reads as a fake
/// multi-× "regression" — only the matrix-level aggregate is signal,
/// and only once there is enough of it.
pub const MIN_PERF_ELAPSED_SECS: f64 = 0.1;

/// Summed `(source_items, elapsed_secs)` over rows.
fn totals<'a>(rows: impl Iterator<Item = &'a ScenarioRow>) -> (u64, f64) {
    rows.fold((0, 0.0), |(items, secs), row| {
        (items + row.source_items, secs + row.elapsed_secs)
    })
}

/// Compares a fresh run against a baseline.
///
/// Deterministic columns (error, completeness, counts, bytes) must match
/// **bit for bit**. Wall-clock is gated on the *aggregate* throughput of
/// the matched rows (total items over total scenario seconds), within
/// [`throughput_band`], and only when both runs saw the same CPU count
/// and both aggregates clear [`MIN_PERF_ELAPSED_SECS`] — per-row
/// wall-clock numbers are recorded for the artifact but never gated.
pub fn check(current: &MatrixReport, baseline: &MatrixReport) -> CheckReport {
    let mut failures = Vec::new();
    if baseline.schema_version != current.schema_version {
        failures.push(format!(
            "schema version mismatch: baseline v{}, current v{} — refresh the baseline",
            baseline.schema_version, current.schema_version
        ));
        return CheckReport {
            failures,
            perf_gated: false,
            perf_note: "off: incomparable reports".to_string(),
            compared: 0,
        };
    }
    if baseline.opts != current.opts {
        failures.push(format!(
            "workload mismatch: baseline {:?}, current {:?} — deterministic columns are only \
             comparable on identical workloads",
            baseline.opts, current.opts
        ));
        return CheckReport {
            failures,
            perf_gated: false,
            perf_note: "off: incomparable reports".to_string(),
            compared: 0,
        };
    }
    let base_rows: BTreeMap<&str, &ScenarioRow> =
        baseline.rows.iter().map(|r| (r.id.as_str(), r)).collect();
    let current_ids: std::collections::BTreeSet<&str> =
        current.rows.iter().map(|r| r.id.as_str()).collect();
    for stale in baseline
        .rows
        .iter()
        .filter(|r| !current_ids.contains(r.id.as_str()))
    {
        failures.push(format!(
            "{}: in the baseline but not in the current matrix — refresh the baseline",
            stale.id
        ));
    }
    let mut compared = 0;
    for row in &current.rows {
        let Some(base) = base_rows.get(row.id.as_str()) else {
            failures.push(format!(
                "{}: not in the baseline — refresh it to cover the new scenario",
                row.id
            ));
            continue;
        };
        compared += 1;
        let mut exact_f64 = |name: &str, got: f64, want: f64| {
            if got.to_bits() != want.to_bits() {
                failures.push(format!(
                    "{}: {} drifted at fixed seed: baseline {}, got {}",
                    row.id, name, want, got
                ));
            }
        };
        exact_f64("mean_error", row.mean_error, base.mean_error);
        exact_f64("total_error", row.total_error, base.total_error);
        exact_f64(
            "mean_completeness",
            row.mean_completeness,
            base.mean_completeness,
        );
        let mut exact_u64 = |name: &str, got: u64, want: u64| {
            if got != want {
                failures.push(format!(
                    "{}: {} drifted at fixed seed: baseline {}, got {}",
                    row.id, name, want, got
                ));
            }
        };
        exact_u64("windows", row.windows, base.windows);
        exact_u64("dropped_items", row.dropped_items, base.dropped_items);
        exact_u64("dropped_late", row.dropped_late, base.dropped_late);
        exact_u64(
            "duplicated_items",
            row.duplicated_items,
            base.duplicated_items,
        );
        exact_u64("source_items", row.source_items, base.source_items);
        exact_u64("node_downtime", row.node_downtime, base.node_downtime);
        exact_u64(
            "windows_degraded",
            row.windows_degraded,
            base.windows_degraded,
        );
        exact_u64("churn_crashes", row.churn_crashes, base.churn_crashes);
        exact_u64("churn_reboots", row.churn_reboots, base.churn_reboots);
        exact_u64(
            "churn_replacements",
            row.churn_replacements,
            base.churn_replacements,
        );
        exact_u64("wire_bytes", row.wire_bytes, base.wire_bytes);
        if row.hop_bytes != base.hop_bytes {
            failures.push(format!(
                "{}: hop_bytes drifted at fixed seed: baseline {:?}, got {:?}",
                row.id, base.hop_bytes, row.hop_bytes
            ));
        }
    }
    // The wall-clock gate: aggregate throughput over the matched rows.
    let (cur_items, cur_secs) = totals(
        current
            .rows
            .iter()
            .filter(|r| base_rows.contains_key(r.id.as_str())),
    );
    let (base_items, base_secs) = totals(
        baseline
            .rows
            .iter()
            .filter(|r| current_ids.contains(r.id.as_str())),
    );
    let (perf_gated, perf_note) = if baseline.cpus != current.cpus {
        (
            false,
            format!(
                "off: baseline recorded on {} CPU(s), this host has {} — cross-machine \
                 wall-clock comparisons are meaningless",
                baseline.cpus, current.cpus
            ),
        )
    } else if cur_secs < MIN_PERF_ELAPSED_SECS || base_secs < MIN_PERF_ELAPSED_SECS {
        (
            false,
            format!(
                "off: aggregate run too short to measure ({cur_secs:.3} s vs baseline \
                 {base_secs:.3} s, floor {MIN_PERF_ELAPSED_SECS} s)"
            ),
        )
    } else {
        let band = throughput_band(current.cpus);
        let cur_tp = cur_items as f64 / cur_secs;
        let base_tp = base_items as f64 / base_secs;
        if cur_tp < base_tp * (1.0 - band) {
            failures.push(format!(
                "aggregate throughput regressed beyond the {:.0}% band: baseline {:.2} Mitems/s, \
                 got {:.2} Mitems/s",
                band * 100.0,
                base_tp / 1e6,
                cur_tp / 1e6
            ));
        }
        (
            true,
            format!(
                "on: aggregate {:.2} Mitems/s vs baseline {:.2} Mitems/s, {:.0}% band",
                cur_tp / 1e6,
                base_tp / 1e6,
                throughput_band(current.cpus) * 100.0
            ),
        )
    };
    CheckReport {
        failures,
        perf_gated,
        perf_note,
        compared,
    }
}

/// The compact markdown table printed to the CI job log (and step
/// summary): one row per scenario, the columns an engineer scans for.
pub fn markdown_summary(report: &MatrixReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### approxiot-harness — {} scenarios, {} windows × {:.0} items/window, seed {:#x}, {} CPU(s)",
        report.rows.len(),
        report.opts.intervals,
        report.opts.rate,
        report.opts.seed,
        report.cpus
    );
    out.push_str(
        "\n| scenario | err % | total err % | compl % | dropped | downtime | wire KiB | Mitems/s |\n\
         |---|---:|---:|---:|---:|---:|---:|---:|\n",
    );
    for row in &report.rows {
        let _ = writeln!(
            out,
            "| {} | {:.3} | {:.3} | {:.1} | {} | {} | {:.1} | {:.2} |",
            row.id,
            row.mean_error * 100.0,
            row.total_error * 100.0,
            row.mean_completeness * 100.0,
            row.dropped_items,
            row.node_downtime,
            row.wire_bytes as f64 / 1024.0,
            row.throughput_items_per_sec / 1e6
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_runtime::results_bit_identical;

    fn tiny_opts() -> HarnessOptions {
        HarnessOptions {
            intervals: 3,
            rate: 2_000.0,
            ..HarnessOptions::default()
        }
    }

    /// A small but representative slice of the matrix: sharded workers,
    /// mid loss, both fractions, a non-paper shape and a non-WHS
    /// strategy.
    fn subset() -> Vec<Scenario> {
        let levels = scenarios::matrix_levels();
        vec![
            Scenario {
                shape: Shape::Paper,
                strategy: Strategy::whs(),
                workers: 1,
                level: levels[0],
                fraction: 0.2,
                churn: None,
            },
            Scenario {
                shape: Shape::Paper,
                strategy: Strategy::whs(),
                workers: 2,
                level: levels[2],
                fraction: 0.1,
                churn: None,
            },
            Scenario {
                shape: Shape::Deep4,
                strategy: Strategy::whs(),
                workers: 4,
                level: levels[3],
                fraction: 0.2,
                churn: None,
            },
            Scenario {
                shape: Shape::Paper,
                strategy: Strategy::Srs,
                workers: 1,
                level: levels[1],
                fraction: 0.1,
                churn: None,
            },
            Scenario {
                shape: Shape::Paper,
                strategy: Strategy::whs(),
                workers: 1,
                level: levels[0],
                fraction: 0.2,
                churn: Some(ChurnPreset::RollingReboot),
            },
        ]
    }

    #[test]
    fn matrix_covers_the_roadmap_sweep() {
        let matrix = default_matrix();
        let ids: Vec<String> = matrix.iter().map(Scenario::id).collect();
        // Ids are unique: the baseline join key.
        let unique: std::collections::BTreeSet<&String> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len(), "duplicate scenario ids");
        // The full loss × fraction × workers cross product under WHS.
        for loss in [0u32, 1, 5, 10] {
            for frac in [10u32, 20] {
                for workers in [1u32, 2, 4] {
                    let id = format!("paper/approxiot/w{workers}/loss{loss}/f{frac}");
                    assert!(ids.contains(&id), "matrix is missing {id}");
                }
            }
        }
        // Baseline strategies and both extra shapes are present. Native
        // ignores the fraction axis, so it appears exactly once per
        // swept loss level, at its true fraction of 100%.
        assert!(ids.iter().any(|id| id.contains("/srs/")));
        assert_eq!(
            ids.iter().filter(|id| id.contains("/native/")).count(),
            2,
            "one native control per loss level, no duplicate rows"
        );
        assert!(ids.contains(&"paper/native/w1/loss5/f100".to_string()));
        assert!(ids.iter().any(|id| id.starts_with("deep4/")));
        assert!(ids.iter().any(|id| id.starts_with("sharded/")));
        // The four churn presets, each on the clean paper tree — and
        // never suffixing a pre-churn id.
        for slug in [
            "crash-one-leaf",
            "rolling-reboot",
            "dark-subtree",
            "low-power-fleet",
        ] {
            let id = format!("paper/approxiot/w1/loss0/f20/churn-{slug}");
            assert!(ids.contains(&id), "matrix is missing {id}");
        }
        assert!(ids.contains(&"paper/approxiot/w1/loss0/f20".to_string()));
        // The sketch fidelity sweep: the default config on every shape,
        // compact and high-fidelity brackets on the paper tree, all on
        // the clean trees (the driver rejects impaired/churned sketch).
        for id in [
            "paper/sketch/w1/loss0/f100/k256h64",
            "deep4/sketch/w1/loss0/f100/k256h64",
            "sharded/sketch/w4/loss0/f100/k256h64",
            "paper/sketch/w1/loss0/f100/k64h8",
            "paper/sketch/w1/loss0/f100/k1024h64",
        ] {
            assert!(ids.contains(&id.to_string()), "matrix is missing {id}");
        }
        assert!(
            ids.iter()
                .all(|id| !id.contains("/sketch/") || id.contains("/loss0/")),
            "sketch rows must stay unimpaired"
        );
        assert_eq!(matrix.len(), 43);
    }

    /// The PR-10 acceptance gate: at the full workload size, the default
    /// sketch scenario ships strictly fewer total wire bytes than the
    /// paper tree's 10%-fraction WHS row while answering SUM at least as
    /// accurately (moments are exact sums, so its error is float noise).
    #[test]
    fn sketch_row_beats_the_ten_percent_whs_row_on_bytes_at_equal_accuracy() {
        let opts = HarnessOptions::default();
        let levels = scenarios::matrix_levels();
        let whs = Scenario {
            shape: Shape::Paper,
            strategy: Strategy::whs(),
            workers: 1,
            level: levels[0],
            fraction: 0.1,
            churn: None,
        };
        let sketch = Scenario {
            shape: Shape::Paper,
            strategy: Strategy::sketch(),
            workers: 1,
            level: levels[0],
            fraction: 1.0,
            churn: None,
        };
        let report = run_matrix(&[whs, sketch], &opts);
        let total = |row: &ScenarioRow| row.hop_bytes.iter().sum::<u64>();
        let whs_row = &report.rows[0];
        let sketch_row = &report.rows[1];
        assert!(
            total(sketch_row) < total(whs_row),
            "sketch must compress the wire: {} vs WHS {}",
            total(sketch_row),
            total(whs_row)
        );
        assert!(
            sketch_row.mean_error <= whs_row.mean_error,
            "sketch SUM error {} must not exceed WHS f10's {}",
            sketch_row.mean_error,
            whs_row.mean_error
        );
        assert!(
            sketch_row.total_error <= whs_row.total_error,
            "sketch total error {} must not exceed WHS f10's {}",
            sketch_row.total_error,
            whs_row.total_error
        );
        assert_eq!(sketch_row.mean_completeness, 1.0);
        assert_eq!(sketch_row.dropped_items, 0);
    }

    #[test]
    fn error_and_completeness_columns_are_fixed_seed_deterministic() {
        let opts = tiny_opts();
        let a = run_matrix(&subset(), &opts);
        let b = run_matrix(&subset(), &opts);
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.mean_error.to_bits(), y.mean_error.to_bits(), "{}", x.id);
            assert_eq!(x.total_error.to_bits(), y.total_error.to_bits(), "{}", x.id);
            assert_eq!(
                x.mean_completeness.to_bits(),
                y.mean_completeness.to_bits(),
                "{}",
                x.id
            );
            assert_eq!(x.hop_bytes, y.hop_bytes, "{}", x.id);
            assert_eq!(x.dropped_items, y.dropped_items, "{}", x.id);
            // elapsed/throughput are noise and deliberately not asserted.
        }
    }

    #[test]
    fn rows_reflect_loss_and_fraction() {
        let opts = tiny_opts();
        let report = run_matrix(&subset(), &opts);
        let by_id: BTreeMap<&str, &ScenarioRow> =
            report.rows.iter().map(|r| (r.id.as_str(), r)).collect();
        let control = by_id["paper/approxiot/w1/loss0/f20"];
        assert_eq!(control.mean_completeness, 1.0);
        assert_eq!(control.dropped_items, 0);
        assert_eq!(control.windows, opts.intervals);
        assert_eq!(
            control.source_items,
            (opts.intervals as f64 * opts.rate) as u64
        );
        let lossy = by_id["deep4/approxiot/w4/loss10/f20"];
        assert!(lossy.dropped_items > 0, "10% loss drops frames");
        assert!(lossy.mean_completeness < 1.0);
        assert_eq!(lossy.hop_bytes.len(), 4, "deep-4 has four metered hops");
        // Sampling saves wire bytes relative to what the sources pushed.
        assert!(control.wire_bytes < control.hop_bytes[0]);
    }

    #[test]
    fn zero_loss_scenario_matches_the_unimpaired_run_bit_for_bit() {
        // The chaos example's control, pinned as a harness test: an
        // all-zero ImpairmentSpec must be a strict no-op.
        let opts = tiny_opts();
        let data = dataset(&opts);
        let control = Scenario {
            shape: Shape::Paper,
            strategy: Strategy::whs(),
            workers: 1,
            level: scenarios::matrix_levels()[0],
            fraction: 0.2,
            churn: None,
        };
        let impaired_path = run_scenario(&control, &opts, &data);
        // The same topology built without impair_all_hops at all.
        let clean = Topology::builder()
            .sources(SOURCES)
            .layer(LayerSpec::new(4))
            .layer(LayerSpec::new(2))
            .strategy(Strategy::whs())
            .overall_fraction(0.2)
            .window(opts.window)
            .seed(opts.seed)
            .build()
            .expect("valid");
        let clean_run = Driver::sim(clean, QuerySet::new().with(QuerySpec::Sum))
            .expect("valid")
            .run(&data)
            .expect("runs");
        assert!(results_bit_identical(&impaired_path, &clean_run));
        assert!(impaired_path.faults.is_clean());
        assert!(impaired_path.results.iter().all(|r| r.completeness == 1.0));
    }

    #[test]
    fn churn_rows_record_outage_accounting() {
        let opts = tiny_opts();
        let report = run_matrix(&subset(), &opts);
        let by_id: BTreeMap<&str, &ScenarioRow> =
            report.rows.iter().map(|r| (r.id.as_str(), r)).collect();
        let rebooting = by_id["paper/approxiot/w1/loss0/f20/churn-rolling-reboot"];
        assert!(rebooting.node_downtime > 0, "reboots must cost downtime");
        assert!(rebooting.windows_degraded > 0);
        assert!(rebooting.mean_completeness < 1.0);
        // The unchurned control row stays clean.
        let control = by_id["paper/approxiot/w1/loss0/f20"];
        assert_eq!(control.node_downtime, 0);
        assert_eq!(control.windows_degraded, 0);
        assert_eq!(control.churn_crashes, 0);
    }

    #[test]
    fn json_round_trips_the_report_exactly() {
        let report = run_matrix(&subset()[..2], &tiny_opts());
        let parsed = MatrixReport::parse(&report.to_pretty()).expect("parses");
        assert_eq!(parsed, report, "schema round-trip preserves every bit");
    }

    #[test]
    fn self_baseline_passes_and_perturbations_fail() {
        let report = run_matrix(&subset()[..2], &tiny_opts());
        let baseline = MatrixReport::parse(&report.to_pretty()).expect("parses");
        let outcome = check(&report, &baseline);
        assert!(
            outcome.passed(),
            "self-check failed: {:?}",
            outcome.failures
        );
        assert!(
            !outcome.perf_gated,
            "a sub-{MIN_PERF_ELAPSED_SECS}-second run is too short to gate wall clock"
        );
        assert!(
            outcome.perf_note.contains("too short"),
            "{}",
            outcome.perf_note
        );
        assert_eq!(outcome.compared, 2);

        // A 1-ulp error drift fails the gate.
        let mut drifted = baseline.clone();
        drifted.rows[0].mean_error = f64::from_bits(drifted.rows[0].mean_error.to_bits() + 1);
        let outcome = check(&report, &drifted);
        assert!(outcome.failures.iter().any(|f| f.contains("mean_error")));

        // Completeness drift fails too.
        let mut drifted = baseline.clone();
        drifted.rows[1].mean_completeness -= 1e-12;
        assert!(!check(&report, &drifted).passed());

        // A perturbed churn column fails with a named finding.
        let mut drifted = baseline.clone();
        drifted.rows[0].node_downtime += 1;
        let outcome = check(&report, &drifted);
        assert!(
            outcome.failures.iter().any(|f| f.contains("node_downtime")),
            "{:?}",
            outcome.failures
        );
        let mut drifted = baseline.clone();
        drifted.rows[1].churn_crashes += 1;
        assert!(check(&report, &drifted)
            .failures
            .iter()
            .any(|f| f.contains("churn_crashes")));

        // Scenario-set drift is named in both directions.
        let mut missing_row = baseline.clone();
        missing_row.rows.pop();
        assert!(check(&report, &missing_row)
            .failures
            .iter()
            .any(|f| f.contains("not in the baseline")));
        let mut extra_row = baseline.clone();
        extra_row.rows.push(baseline.rows[0].clone());
        extra_row.rows.last_mut().unwrap().id = "paper/approxiot/w9/loss0/f20".to_string();
        assert!(check(&report, &extra_row)
            .failures
            .iter()
            .any(|f| f.contains("not in the current matrix")));

        // Workload / schema mismatches refuse to compare at all.
        let mut other_workload = baseline.clone();
        other_workload.opts.rate += 1.0;
        let outcome = check(&report, &other_workload);
        assert_eq!(outcome.compared, 0);
        assert!(outcome.failures[0].contains("workload mismatch"));
        let mut other_schema = baseline;
        other_schema.schema_version += 1;
        assert!(check(&report, &other_schema).failures[0].contains("schema version"));
    }

    /// A synthetic long-enough report for exercising the wall-clock gate
    /// without actually burning wall clock.
    fn synthetic_report(cpus: u64, elapsed_per_row: f64) -> MatrixReport {
        let row = |id: &str| ScenarioRow {
            id: id.to_string(),
            windows: 4,
            mean_error: 0.01,
            total_error: 0.01,
            mean_completeness: 1.0,
            dropped_items: 0,
            duplicated_items: 0,
            dropped_late: 0,
            source_items: 1_000_000,
            node_downtime: 0,
            windows_degraded: 0,
            churn_crashes: 0,
            churn_reboots: 0,
            churn_replacements: 0,
            hop_bytes: vec![100, 10],
            wire_bytes: 10,
            elapsed_secs: elapsed_per_row,
            throughput_items_per_sec: 1_000_000.0 / elapsed_per_row,
        };
        MatrixReport {
            schema_version: SCHEMA_VERSION,
            tool: "approxiot-harness".to_string(),
            opts: HarnessOptions::default(),
            cpus,
            rows: vec![row("a"), row("b")],
        }
    }

    #[test]
    fn wall_clock_gate_compares_aggregates_with_noise_aware_bands() {
        // Identical long runs on the same host: gated and passing.
        let base = synthetic_report(1, 0.2);
        let outcome = check(&synthetic_report(1, 0.2), &base);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert!(outcome.perf_gated);
        assert!(
            outcome.perf_note.starts_with("on:"),
            "{}",
            outcome.perf_note
        );

        // Within the 1-CPU 60% band: 2× slower still passes...
        let outcome = check(&synthetic_report(1, 0.4), &base);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        // ...but 3× slower fails with an aggregate finding.
        let outcome = check(&synthetic_report(1, 0.6), &base);
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("aggregate throughput")));

        // The multi-core band is tighter: 2× slower fails there.
        let multi_base = synthetic_report(4, 0.2);
        let outcome = check(&synthetic_report(4, 0.4), &multi_base);
        assert!(!outcome.passed());

        // Different host shapes never gate wall clock, however slow.
        let other_host = synthetic_report(4, 60.0);
        let mut cross = check(&other_host, &base);
        assert!(cross.passed(), "{:?}", cross.failures);
        assert!(!cross.perf_gated);
        assert!(cross.perf_note.contains("CPU"), "{}", cross.perf_note);

        // Sub-floor runs never gate either.
        cross = check(&synthetic_report(1, 0.01), &synthetic_report(1, 0.01));
        assert!(!cross.perf_gated);
        assert!(cross.perf_note.contains("too short"), "{}", cross.perf_note);
    }

    #[test]
    fn markdown_summary_has_one_line_per_scenario() {
        let report = run_matrix(&subset()[..2], &tiny_opts());
        let md = markdown_summary(&report);
        for row in &report.rows {
            assert!(md.contains(&row.id), "missing {}", row.id);
        }
        assert_eq!(md.lines().filter(|l| l.starts_with("| ")).count(), 2 + 1);
    }
}
