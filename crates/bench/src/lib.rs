//! # approxiot-bench
//!
//! Shared harness code for the figure-reproduction benches. Each bench
//! target (`benches/fig*.rs`) regenerates one figure of the ApproxIoT
//! evaluation as a printed table; see `EXPERIMENTS.md` at the repository
//! root for the paper-vs-measured record.
//!
//! The accuracy figures run on [`approxiot_runtime::SimTree`] (virtual
//! time, seeded); the throughput/latency/bandwidth figures run on the
//! threaded [`approxiot_runtime::run_pipeline`].
//!
//! The crate also ships the `harness` **binary** — the scenario-matrix
//! benchmark harness with baseline regression gates (see [`harness`] and
//! `BENCH_harness.json` at the repository root).

#![forbid(unsafe_code)]

pub mod harness;
pub mod json;

use approxiot_core::{accuracy_loss, Batch, StratumId};
use approxiot_runtime::{FractionSplit, Query, SimTree, Strategy, TreeConfig};
use approxiot_workload::StreamMix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::Duration;

/// Splits a mixed interval batch into one batch per stratum, modelling one
/// source node per sub-stream (the paper's sources feed the first layer
/// independently). Groups through [`Batch::split_by_stratum`]
/// (`StrataIndex`-backed, no per-item `BTreeMap` inserts).
pub fn split_by_stratum(batch: &Batch) -> Vec<Batch> {
    batch.split_by_stratum()
}

/// Measures the mean per-window accuracy loss of a strategy on an
/// arbitrary interval-batch generator (one [`Batch`] per call).
///
/// Drives `intervals` intervals through the paper's four-layer tree at the
/// given end-to-end `fraction`, compares each window's SUM estimate against
/// the exact per-window sum, and returns the mean relative loss.
pub fn accuracy_run_trace<G>(
    mut next_interval: G,
    window: Duration,
    strategy: Strategy,
    fraction: f64,
    intervals: usize,
    seed: u64,
) -> f64
where
    G: FnMut(&mut StdRng) -> Batch,
{
    let config = TreeConfig {
        leaves: 4,
        mids: 2,
        strategy,
        overall_fraction: fraction,
        split: FractionSplit::Even,
        window,
        query: Query::Sum,
        seed,
    };
    let mut tree = SimTree::new(config).expect("fraction validated by caller");
    // analysis: allow(D3, reason = "bench-only synthetic workload stream; not part of an engine run")
    #[allow(clippy::disallowed_methods)]
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let mut truths: BTreeMap<u64, f64> = BTreeMap::new();
    let window_nanos = window.as_nanos() as u64;
    for _ in 0..intervals {
        let batch = next_interval(&mut rng);
        let window_id = batch
            .items
            .first()
            .map_or(0, |i| i.source_ts / window_nanos);
        *truths.entry(window_id).or_default() += batch.value_sum();
        tree.push_interval(&split_by_stratum(&batch));
    }
    let mut results = tree.advance_watermark(u64::MAX);
    results.extend(tree.flush());
    let mut losses = Vec::new();
    for r in results {
        if let Some(&truth) = truths.get(&r.window) {
            losses.push(accuracy_loss(r.estimate.value, truth));
        }
    }
    assert!(!losses.is_empty(), "no windows produced");
    losses.iter().sum::<f64>() / losses.len() as f64
}

/// [`accuracy_run_trace`] specialised to a [`StreamMix`] workload.
pub fn accuracy_run(
    mix: &mut StreamMix,
    strategy: Strategy,
    fraction: f64,
    intervals: usize,
    seed: u64,
) -> f64 {
    let window = mix.interval();
    accuracy_run_trace(
        |rng| mix.next_interval(rng),
        window,
        strategy,
        fraction,
        intervals,
        seed,
    )
}

/// Averages [`accuracy_run`] over several seeds (fresh workload per seed).
pub fn mean_accuracy<F>(
    mut mix_builder: F,
    strategy: Strategy,
    fraction: f64,
    intervals: usize,
    seeds: &[u64],
) -> f64
where
    F: FnMut() -> StreamMix,
{
    let total: f64 = seeds
        .iter()
        .map(|&s| accuracy_run(&mut mix_builder(), strategy, fraction, intervals, s))
        .sum();
    total / seeds.len() as f64
}

/// The sampling fractions swept by the paper's accuracy figures (percent).
pub const PAPER_FRACTIONS_PCT: [u32; 6] = [10, 20, 40, 60, 80, 90];

/// The sampling fractions swept by the throughput/latency figures
/// (percent; these sweeps include 100%).
pub const PAPER_FRACTIONS_WITH_FULL_PCT: [u32; 6] = [10, 20, 40, 60, 80, 100];

/// Formats an accuracy loss as the percentage the paper plots.
pub fn pct(loss: f64) -> f64 {
    loss * 100.0
}

/// Prints the standard figure header.
pub fn figure_header(figure: &str, caption: &str) {
    println!();
    println!("=== {figure}: {caption} ===");
}

/// A tiny fixed-width row printer for figure tables.
pub fn print_row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Convenience: stratum label `S<i>`.
pub fn stratum_label(id: StratumId) -> String {
    format!("{id}")
}

/// Builds the paper's default 1-second interval for accuracy workloads
/// scaled down so virtual-time runs stay fast: rates in the tens of
/// thousands of items/s are represented by proportionally smaller batches
/// over a shorter interval, preserving every ratio the figures depend on.
pub fn accuracy_interval() -> Duration {
    Duration::from_millis(100)
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_core::StreamItem;
    use approxiot_workload::{SubStreamSpec, ValueDist};

    fn tiny_mix() -> StreamMix {
        StreamMix::new(
            vec![
                SubStreamSpec::new(StratumId::new(0), 1_000.0, ValueDist::Constant(1.0)),
                SubStreamSpec::new(StratumId::new(1), 100.0, ValueDist::Constant(100.0)),
            ],
            Duration::from_millis(100),
        )
    }

    /// A mix whose values vary within each stratum, so sampling introduces
    /// real estimation error (constant values are estimated exactly thanks
    /// to the count-reconstruction invariant).
    fn noisy_mix() -> StreamMix {
        StreamMix::new(
            vec![
                SubStreamSpec::new(
                    StratumId::new(0),
                    1_000.0,
                    ValueDist::Gaussian {
                        mu: 10.0,
                        sigma: 5.0,
                    },
                ),
                SubStreamSpec::new(
                    StratumId::new(1),
                    100.0,
                    ValueDist::Gaussian {
                        mu: 1_000.0,
                        sigma: 300.0,
                    },
                ),
            ],
            Duration::from_millis(100),
        )
    }

    #[test]
    fn split_by_stratum_partitions_items() {
        let batch = Batch::from_items(vec![
            StreamItem::new(StratumId::new(0), 1.0),
            StreamItem::new(StratumId::new(1), 2.0),
            StreamItem::new(StratumId::new(0), 3.0),
        ]);
        let parts = split_by_stratum(&batch);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts.iter().map(Batch::len).sum::<usize>(), 3);
    }

    #[test]
    fn native_accuracy_run_is_lossless() {
        let loss = accuracy_run(&mut tiny_mix(), Strategy::Native, 1.0, 5, 1);
        assert!(loss < 1e-12, "native loss {loss}");
    }

    #[test]
    fn full_fraction_whs_is_lossless() {
        let loss = accuracy_run(&mut tiny_mix(), Strategy::whs(), 1.0, 5, 1);
        assert!(loss < 1e-12, "whs@100% loss {loss}");
    }

    #[test]
    fn sampling_introduces_bounded_loss() {
        let loss = accuracy_run(&mut noisy_mix(), Strategy::whs(), 0.2, 10, 2);
        assert!(loss > 0.0 && loss < 0.2, "loss {loss}");
    }

    #[test]
    fn constant_values_are_estimated_exactly() {
        // The count-reconstruction invariant makes constant-valued strata
        // exact under any fraction — a strong sanity check on the weights.
        let loss = accuracy_run(&mut tiny_mix(), Strategy::whs(), 0.2, 10, 2);
        assert!(loss < 1e-12, "loss {loss}");
    }

    #[test]
    fn mean_accuracy_averages_seeds() {
        let loss = mean_accuracy(tiny_mix, Strategy::whs(), 0.5, 5, &[1, 2, 3]);
        assert!(loss.is_finite());
    }

    #[test]
    fn pct_scales() {
        assert_eq!(pct(0.05), 5.0);
    }
}
