//! A minimal JSON tree — emit and parse — for the scenario-matrix
//! harness's `BENCH_harness.json`.
//!
//! The build environment is fully offline (no serde), and the harness
//! only needs one schema, so this is a deliberately small value tree:
//!
//! * Numbers are `f64`. Integral values up to 2⁵³ emit as plain integers;
//!   everything else uses Rust's shortest round-trip float formatting, so
//!   **emit → parse is bit-exact** — the property the baseline gate's
//!   strict-determinism columns rely on.
//! * Objects are [`BTreeMap`]s: key order (and therefore the emitted
//!   file) is deterministic, keeping committed baselines diff-friendly.
//! * Non-finite numbers have no JSON representation and emit as `null`;
//!   the harness never produces them.

use std::collections::BTreeMap;
use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see the module docs for the exactness contract).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, 0);
        out.push('\n');
        out
    }

    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a byte offset and message on malformed input, including
    /// nesting deeper than [`MAX_DEPTH`] (a positioned error rather than
    /// a recursion-driven stack overflow on corrupted input).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.to_pretty().trim_end())
    }
}

fn write_value(out: &mut String, value: &Json, indent: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_num(out, *n),
        Json::Str(s) => write_str(out, s),
        Json::Arr(items) if items.is_empty() => out.push_str("[]"),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            newline(out, indent);
            out.push(']');
        }
        Json::Obj(map) if map.is_empty() => out.push_str("{}"),
        Json::Obj(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent + 1);
                write_str(out, key);
                out.push_str(": ");
                write_value(out, item, indent + 1);
            }
            newline(out, indent);
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    use fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        // `0 as i64` would lose the sign bit and break bit-exactness.
        out.push_str("-0.0");
    } else if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest round-trip formatting: parse gives the bits back.
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting [`Json::parse`] accepts; far beyond the
/// harness schema's three levels, small enough that the recursive-descent
/// parser can never overflow the stack on adversarial input.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn nested(
        &mut self,
        container: fn(&mut Self) -> Result<Json, JsonError>,
    ) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        self.depth += 1;
        let value = container(self);
        self.depth -= 1;
        value
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not needed by this schema.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let value = Json::parse(text).expect(text);
            assert_eq!(Json::parse(&value.to_pretty()).expect(text), value);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        // Exactly the values the harness writes: means of accuracy losses
        // and completeness fractions — awkward, fully-populated mantissas.
        for bits in [
            0.1f64,
            1.0 / 3.0,
            0.049_999_999_991,
            2.5e-17,
            123_456_789.000_000_1,
            f64::MIN_POSITIVE,
            9_007_199_254_740_992.0,
            -0.0,
        ] {
            let emitted = Json::Num(bits).to_pretty();
            let parsed = Json::parse(&emitted).expect("parses").as_f64().unwrap();
            assert_eq!(
                parsed.to_bits(),
                bits.to_bits(),
                "{bits} emitted as {emitted}"
            );
        }
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(Json::Num(65536.0).to_pretty(), "65536\n");
        assert_eq!(Json::Num(-2.0).to_pretty(), "-2\n");
        assert_eq!(Json::Num(0.0).to_pretty(), "0\n");
    }

    #[test]
    fn nested_structure_round_trips() {
        let doc = Json::obj([
            ("rows", Json::Arr(vec![Json::from(1u64), Json::from(0.25)])),
            ("tool", Json::from("harness")),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(BTreeMap::new())),
        ]);
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).expect("parses"), doc);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "quote \" backslash \\ newline \n tab \t unicode µ";
        let doc = Json::from(s);
        let parsed = Json::parse(&doc.to_pretty()).expect("parses");
        assert_eq!(parsed.as_str(), Some(s));
        assert_eq!(
            Json::parse("\"\\u00b5 \\/ \\b\\f\"").unwrap().as_str(),
            Some("µ / \u{8}\u{c}")
        );
    }

    #[test]
    fn accessors_select_types() {
        let doc = Json::parse(r#"{"a": [1, 2.5], "b": "x", "n": 7}"#).expect("parses");
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        let arr = doc.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[1].as_u64(), None, "non-integral");
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "{'a': 1}",
            "[01x]",
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(err.to_string().contains("byte"), "{bad}: {err}");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        let bomb = "[".repeat(100_000);
        let err = Json::parse(&bomb).expect_err("must not recurse unboundedly");
        assert!(err.message.contains("MAX_DEPTH"), "{err}");
        // MAX_DEPTH itself is fine (the schema uses 3 levels).
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn whitespace_and_exponents_parse() {
        let doc = Json::parse(" \n\t{ \"k\" : -1.5e-3 } \r\n").expect("parses");
        assert_eq!(doc.get("k").and_then(Json::as_f64), Some(-0.0015));
    }
}
