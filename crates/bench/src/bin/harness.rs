//! `approxiot-harness`: run the scenario matrix, print the markdown
//! summary, optionally write `BENCH_harness.json` and gate against a
//! committed baseline.
//!
//! ```text
//! cargo run --release -p approxiot-bench --bin harness -- [OPTIONS]
//!
//!   --out <FILE>        write the schema-versioned results JSON
//!   --check             compare against --baseline and exit non-zero on drift
//!   --baseline <FILE>   the committed baseline to gate on (required with --check)
//!   --quick             smaller fixed workload for smoke runs (3 windows, 4k items/window)
//!   --intervals <N>     override the window count
//!   --rate <R>          override items per window
//!   --seed <S>          override the base seed
//! ```
//!
//! `--out` is written *before* the check runs, so CI can upload the fresh
//! numbers as an artifact even when the gate fails.

#![forbid(unsafe_code)]

use approxiot_bench::harness::{
    check, default_matrix, detected_cpus, markdown_summary, run_matrix, HarnessOptions,
    MatrixReport,
};
use std::process::ExitCode;

const USAGE: &str = "\
approxiot-harness: run the scenario matrix, print the markdown summary,
optionally write BENCH_harness.json and gate against a committed baseline.

USAGE:
  cargo run --release -p approxiot-bench --bin harness -- [OPTIONS]

OPTIONS:
  --out <FILE>        write the schema-versioned results JSON
  --check             compare against --baseline and exit non-zero on drift
  --baseline <FILE>   the committed baseline to gate on (required with --check)
  --quick             smaller fixed workload for smoke runs (3 windows, 4k items/window)
  --intervals <N>     override the window count
  --rate <R>          override items per window
  --seed <S>          override the base seed (must fit in 2^53)
  -h, --help          print this help";

struct Args {
    out: Option<String>,
    check_baseline: Option<String>,
    opts: HarnessOptions,
}

enum Parsed {
    Run(Box<Args>),
    Help,
}

fn parse_args() -> Result<Parsed, String> {
    let mut out = None;
    let mut baseline = None;
    let mut do_check = false;
    let mut quick = false;
    // Explicit workload overrides, applied on top of the preset at the
    // end so `--intervals 5 --quick` and `--quick --intervals 5` agree.
    let mut intervals = None;
    let mut rate = None;
    let mut seed = None;
    let mut args = std::env::args().skip(1);
    let value_of = |flag: &str, args: &mut dyn Iterator<Item = String>| match args.next() {
        // A following flag is a missing value, not a value — otherwise
        // `--out --check ...` would write a file named "--check" and
        // silently skip the gate.
        Some(value) if !value.starts_with("--") => Ok(value),
        _ => Err(format!("{flag} needs a value")),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(value_of("--out", &mut args)?),
            "--baseline" => baseline = Some(value_of("--baseline", &mut args)?),
            "--check" => do_check = true,
            "--quick" => quick = true,
            "--intervals" => {
                intervals = Some(
                    value_of("--intervals", &mut args)?
                        .parse()
                        .map_err(|e| format!("--intervals: {e}"))?,
                );
            }
            "--rate" => {
                rate = Some(
                    value_of("--rate", &mut args)?
                        .parse()
                        .map_err(|e| format!("--rate: {e}"))?,
                );
            }
            "--seed" => {
                let parsed: u64 = value_of("--seed", &mut args)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
                // The JSON tree stores numbers as f64; a seed past 2^53
                // would not round-trip and the written baseline could
                // never pass its own check.
                if parsed > (1u64 << 53) {
                    return Err(format!(
                        "--seed: {parsed} exceeds 2^53 and cannot round-trip through the baseline JSON"
                    ));
                }
                seed = Some(parsed);
            }
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument '{other}' (run with --help)")),
        }
    }
    if do_check && baseline.is_none() {
        return Err("--check needs --baseline <FILE>".to_string());
    }
    if !do_check && baseline.is_some() {
        // The inverse slip must not silently skip the gate either.
        return Err("--baseline without --check would never be compared; add --check".to_string());
    }
    let mut opts = if quick {
        HarnessOptions::quick()
    } else {
        HarnessOptions::default()
    };
    if let Some(intervals) = intervals {
        opts.intervals = intervals;
    }
    if let Some(rate) = rate {
        opts.rate = rate;
    }
    if let Some(seed) = seed {
        opts.seed = seed;
    }
    Ok(Parsed::Run(Box::new(Args {
        out,
        check_baseline: if do_check { baseline } else { None },
        opts,
    })))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Parsed::Run(args)) => args,
        Ok(Parsed::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("harness: {message}");
            return ExitCode::FAILURE;
        }
    };
    // Read the baseline up front so a missing/malformed file fails fast,
    // before minutes of matrix execution.
    let baseline = match &args.check_baseline {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("harness: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
            Ok(text) => match MatrixReport::parse(&text) {
                Err(e) => {
                    eprintln!("harness: baseline {path} is malformed: {e}");
                    return ExitCode::FAILURE;
                }
                Ok(baseline) => Some(baseline),
            },
        },
    };
    let matrix = default_matrix();
    eprintln!(
        "harness: running {} scenarios ({} windows x {:.0} items/window, seed {:#x}) on {} CPU(s)",
        matrix.len(),
        args.opts.intervals,
        args.opts.rate,
        args.opts.seed,
        detected_cpus()
    );
    let report = run_matrix(&matrix, &args.opts);
    print!("{}", markdown_summary(&report));

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, report.to_pretty()) {
            eprintln!("harness: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("harness: wrote {path}");
    }

    if let Some(baseline) = &baseline {
        let path = args.check_baseline.as_deref().unwrap_or_default();
        let outcome = check(&report, baseline);
        eprintln!("harness: wall-clock gate {}", outcome.perf_note);
        if outcome.passed() {
            eprintln!(
                "harness: baseline check PASSED ({} rows, deterministic columns bit-exact)",
                outcome.compared
            );
        } else {
            for failure in &outcome.failures {
                eprintln!("harness: FAIL {failure}");
            }
            eprintln!(
                "harness: baseline check FAILED with {} finding(s); if the change is intended, \
                 refresh the baseline with --out {path}",
                outcome.failures.len()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
