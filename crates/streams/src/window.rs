//! Tumbling windows and per-window buffering.
//!
//! ApproxIoT executes its query once per time interval as the computation
//! window slides (Algorithm 2, outer loop). The evaluation uses tumbling
//! windows of 0.5–4 seconds (Figures 8 and 9). [`TumblingWindow`] maps
//! timestamps to window indices; [`WindowBuffer`] accumulates values per
//! window and releases windows once the watermark passes their end.

use std::collections::BTreeMap;
use std::time::Duration;

/// Identifier of one tumbling window (its index on the time axis).
pub type WindowId = u64;

/// A fixed-size, non-overlapping window scheme.
///
/// # Examples
///
/// ```
/// use approxiot_streams::TumblingWindow;
/// use std::time::Duration;
///
/// let w = TumblingWindow::new(Duration::from_secs(1));
/// assert_eq!(w.index_of(1_500_000_000), 1); // 1.5 s → window 1
/// assert_eq!(w.start_of(1), 1_000_000_000);
/// assert_eq!(w.end_of(1), 2_000_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TumblingWindow {
    size_nanos: u64,
}

impl TumblingWindow {
    /// Creates a window scheme of the given size.
    ///
    /// # Panics
    ///
    /// Panics on a zero-length window.
    pub fn new(size: Duration) -> Self {
        let size_nanos = size.as_nanos() as u64;
        assert!(size_nanos > 0, "window size must be positive");
        TumblingWindow { size_nanos }
    }

    /// Window length in nanoseconds.
    pub fn size_nanos(&self) -> u64 {
        self.size_nanos
    }

    /// Window length as a [`Duration`].
    pub fn size(&self) -> Duration {
        Duration::from_nanos(self.size_nanos)
    }

    /// The window containing `ts_nanos`.
    pub fn index_of(&self, ts_nanos: u64) -> WindowId {
        ts_nanos / self.size_nanos
    }

    /// Inclusive start of window `id`.
    pub fn start_of(&self, id: WindowId) -> u64 {
        id * self.size_nanos
    }

    /// Exclusive end of window `id`.
    pub fn end_of(&self, id: WindowId) -> u64 {
        (id + 1) * self.size_nanos
    }
}

/// Accumulates values per window and drains windows the watermark has
/// passed.
///
/// ## Allowed lateness
///
/// By default a window closes as soon as the watermark reaches its end,
/// and a value arriving for an already-drained window is **rejected** (and
/// counted in [`WindowBuffer::late_rejections`]) rather than silently
/// re-opening the window — re-opening would emit a second result for the
/// same window id. [`WindowBuffer::with_allowed_lateness`] relaxes the
/// policy for jitter-delayed arrivals: a window stays open (and accepts
/// stragglers) until the watermark passes `end + lateness`.
///
/// # Examples
///
/// ```
/// use approxiot_streams::{TumblingWindow, WindowBuffer};
/// use std::time::Duration;
///
/// let mut buf = WindowBuffer::new(TumblingWindow::new(Duration::from_secs(1)));
/// buf.insert(200_000_000, "a");        // window 0
/// buf.insert(1_100_000_000, "b");      // window 1
/// let closed = buf.drain_closed(1_000_000_000); // watermark at 1 s closes window 0
/// assert_eq!(closed, vec![(0, vec!["a"])]);
/// assert_eq!(buf.pending_windows(), 1);
/// assert!(!buf.insert(500_000_000, "late")); // window 0 already emitted
/// assert_eq!(buf.late_rejections(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WindowBuffer<T> {
    scheme: TumblingWindow,
    windows: BTreeMap<WindowId, Vec<T>>,
    allowed_lateness_nanos: u64,
    /// High-water of every `drain_closed` watermark seen so far.
    watermark_nanos: u64,
    late_rejections: u64,
}

impl<T> WindowBuffer<T> {
    /// Creates an empty buffer over `scheme` with zero allowed lateness.
    pub fn new(scheme: TumblingWindow) -> Self {
        WindowBuffer {
            scheme,
            windows: BTreeMap::new(),
            allowed_lateness_nanos: 0,
            watermark_nanos: 0,
            late_rejections: 0,
        }
    }

    /// Keeps each window open for `lateness` past its end, so arrivals
    /// delayed in flight (link jitter) still land in their window.
    pub fn with_allowed_lateness(mut self, lateness: Duration) -> Self {
        self.allowed_lateness_nanos = lateness.as_nanos() as u64;
        self
    }

    /// The window scheme.
    pub fn scheme(&self) -> TumblingWindow {
        self.scheme
    }

    /// The configured allowed lateness.
    pub fn allowed_lateness(&self) -> Duration {
        Duration::from_nanos(self.allowed_lateness_nanos)
    }

    /// Returns `true` while the window containing `ts_nanos` still accepts
    /// values — the watermark has not yet passed its end plus the allowed
    /// lateness.
    pub fn accepts(&self, ts_nanos: u64) -> bool {
        let close_at = self
            .scheme
            .end_of(self.scheme.index_of(ts_nanos))
            .saturating_add(self.allowed_lateness_nanos);
        close_at > self.watermark_nanos
    }

    /// Files `value` under the window containing `ts_nanos`. Returns
    /// `false` (dropping the value and counting a late rejection) when
    /// that window was already closed by an earlier watermark.
    pub fn insert(&mut self, ts_nanos: u64, value: T) -> bool {
        if !self.accepts(ts_nanos) {
            self.late_rejections += 1;
            return false;
        }
        self.windows
            .entry(self.scheme.index_of(ts_nanos))
            .or_default()
            .push(value);
        true
    }

    /// Number of values rejected for arriving after their window closed.
    pub fn late_rejections(&self) -> u64 {
        self.late_rejections
    }

    /// Removes and returns every window whose end (plus the allowed
    /// lateness) is at or before `watermark_nanos`, in window order.
    pub fn drain_closed(&mut self, watermark_nanos: u64) -> Vec<(WindowId, Vec<T>)> {
        self.watermark_nanos = self.watermark_nanos.max(watermark_nanos);
        let closed_ids: Vec<WindowId> = self
            .windows
            .keys()
            .copied()
            .take_while(|&id| {
                self.scheme
                    .end_of(id)
                    .saturating_add(self.allowed_lateness_nanos)
                    <= watermark_nanos
            })
            .collect();
        closed_ids
            .into_iter()
            .map(|id| (id, self.windows.remove(&id).unwrap_or_default()))
            .collect()
    }

    /// Removes and returns every window regardless of the watermark (final
    /// flush at shutdown).
    pub fn drain_all(&mut self) -> Vec<(WindowId, Vec<T>)> {
        std::mem::take(&mut self.windows).into_iter().collect()
    }

    /// Number of windows currently buffered.
    pub fn pending_windows(&self) -> usize {
        self.windows.len()
    }

    /// Total buffered values across windows.
    pub fn len(&self) -> usize {
        self.windows.values().map(Vec::len).sum()
    }

    /// Returns `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_rejected() {
        TumblingWindow::new(Duration::ZERO);
    }

    #[test]
    fn index_boundaries_are_half_open() {
        let w = TumblingWindow::new(Duration::from_secs(1));
        assert_eq!(w.index_of(0), 0);
        assert_eq!(w.index_of(SEC - 1), 0);
        assert_eq!(w.index_of(SEC), 1);
        assert_eq!(w.size(), Duration::from_secs(1));
    }

    #[test]
    fn start_end_are_consistent() {
        let w = TumblingWindow::new(Duration::from_millis(500));
        for id in [0u64, 1, 7, 100] {
            assert_eq!(w.index_of(w.start_of(id)), id);
            assert_eq!(w.index_of(w.end_of(id)), id + 1);
        }
    }

    #[test]
    fn buffer_groups_by_window() {
        let mut buf = WindowBuffer::new(TumblingWindow::new(Duration::from_secs(1)));
        buf.insert(0, 1);
        buf.insert(SEC / 2, 2);
        buf.insert(SEC + 1, 3);
        assert_eq!(buf.pending_windows(), 2);
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn drain_closed_respects_watermark() {
        let mut buf = WindowBuffer::new(TumblingWindow::new(Duration::from_secs(1)));
        buf.insert(0, "w0");
        buf.insert(SEC, "w1");
        buf.insert(2 * SEC, "w2");
        // Watermark mid-window-1: only window 0 closes.
        let closed = buf.drain_closed(SEC + SEC / 2);
        assert_eq!(closed, vec![(0, vec!["w0"])]);
        // Watermark at 3 s closes windows 1 and 2, in order.
        let closed = buf.drain_closed(3 * SEC);
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].0, 1);
        assert_eq!(closed[1].0, 2);
        assert!(buf.is_empty());
    }

    #[test]
    fn drain_closed_on_empty_buffer() {
        let mut buf: WindowBuffer<u8> =
            WindowBuffer::new(TumblingWindow::new(Duration::from_secs(1)));
        assert!(buf.drain_closed(u64::MAX).is_empty());
    }

    #[test]
    fn drain_all_flushes_everything() {
        let mut buf = WindowBuffer::new(TumblingWindow::new(Duration::from_secs(1)));
        buf.insert(0, 1);
        buf.insert(10 * SEC, 2);
        let all = buf.drain_all();
        assert_eq!(all.len(), 2);
        assert!(buf.is_empty());
    }

    #[test]
    fn late_inserts_are_rejected_and_counted() {
        let mut buf = WindowBuffer::new(TumblingWindow::new(Duration::from_secs(1)));
        assert!(buf.insert(100, "w0"));
        assert_eq!(buf.drain_closed(SEC).len(), 1);
        // Window 0 has been emitted; a straggler must not re-open it.
        assert!(!buf.insert(200, "late"));
        assert_eq!(buf.late_rejections(), 1);
        assert!(buf.is_empty(), "rejected value not buffered");
        assert!(buf.drain_all().is_empty(), "no duplicate window 0 result");
    }

    #[test]
    fn allowed_lateness_keeps_windows_open_for_stragglers() {
        let lateness = Duration::from_millis(300);
        let mut buf = WindowBuffer::new(TumblingWindow::new(Duration::from_secs(1)))
            .with_allowed_lateness(lateness);
        assert_eq!(buf.allowed_lateness(), lateness);
        buf.insert(100, "on-time");
        // Watermark inside the lateness horizon: window 0 stays open...
        assert!(buf.drain_closed(SEC + 200_000_000).is_empty());
        assert!(buf.accepts(500));
        assert!(buf.insert(500, "straggler"), "within allowed lateness");
        // ...and closes (with the straggler) once the horizon passes.
        let closed = buf.drain_closed(SEC + 300_000_000);
        assert_eq!(closed, vec![(0, vec!["on-time", "straggler"])]);
        assert!(!buf.accepts(900), "past end + lateness");
        assert!(!buf.insert(900, "too-late"));
        assert_eq!(buf.late_rejections(), 1);
    }

    #[test]
    fn watermark_high_water_is_monotonic() {
        let mut buf = WindowBuffer::new(TumblingWindow::new(Duration::from_secs(1)));
        buf.drain_closed(3 * SEC);
        // A regressing watermark must not re-admit closed windows.
        buf.drain_closed(SEC);
        assert!(!buf.insert(2 * SEC + 1, "w2"));
        assert_eq!(buf.late_rejections(), 1);
        assert!(buf.insert(3 * SEC + 1, "w3"));
    }

    #[test]
    fn empty_windows_are_not_materialised() {
        // A gap in arrivals produces no empty window entries.
        let mut buf = WindowBuffer::new(TumblingWindow::new(Duration::from_secs(1)));
        buf.insert(0, 1);
        buf.insert(5 * SEC, 2);
        let closed = buf.drain_closed(10 * SEC);
        assert_eq!(
            closed.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![0, 5]
        );
    }
}
