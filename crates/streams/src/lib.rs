//! # approxiot-streams
//!
//! A minimal stream-processing engine: the reproduction's substitute for
//! Kafka Streams, on which the ApproxIoT prototype implements its sampling
//! operator (paper §IV).
//!
//! The pieces mirror what the paper uses from Kafka Streams:
//!
//! * [`Processor`] — the Low-Level Processor API: a user-defined operator
//!   receiving records and periodic punctuation. ApproxIoT's sampling
//!   module is implemented as exactly such a processor (in
//!   `approxiot-runtime`).
//! * [`Processor::then`] — a linear topology builder (the paper's
//!   "processing topology").
//! * [`TumblingWindow`] / [`WindowBuffer`] — the computation windows of
//!   Algorithm 2's interval loop (0.5–4 s in the evaluation).
//! * [`StreamTask`] — the threaded driver pairing a source (e.g. an
//!   `approxiot-mq` consumer) with a sink (e.g. a producer into the next
//!   layer's topic).
//!
//! ## Example
//!
//! ```
//! use approxiot_streams::{Context, MapProcessor, Processor};
//!
//! // Build a two-stage topology and push a record through it.
//! let mut topo = MapProcessor::new(|x: i32| x + 1).then(MapProcessor::new(|x: i32| x * 10));
//! let mut ctx = Context::new();
//! topo.process(4, &mut ctx);
//! assert_eq!(ctx.drain(), vec![50]);
//! ```

#![forbid(unsafe_code)]

pub mod aggregate;
pub mod processor;
pub mod runtime;
pub mod window;

pub use aggregate::{WindowAggregate, WindowedAggregate};
pub use processor::{Chain, Context, FilterProcessor, MapProcessor, Processor};
pub use runtime::{SourceEvent, StreamTask, TaskConfig};
pub use window::{TumblingWindow, WindowBuffer, WindowId};
