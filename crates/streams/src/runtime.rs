//! The threaded driver: polls a source, runs a processor, forwards to a
//! sink, and fires punctuation on a fixed cadence.

use crate::processor::{Context, Processor};
use approxiot_net::Clock;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// What a source hands the task on each poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceEvent<I> {
    /// Messages to process (possibly empty — treated as [`SourceEvent::Idle`]).
    Items(Vec<I>),
    /// Nothing available right now.
    Idle,
    /// The source is exhausted; the task flushes and exits.
    Closed,
}

/// Configuration of a stream task.
#[derive(Debug, Clone)]
pub struct TaskConfig {
    /// Cadence of `punctuate` callbacks.
    pub punctuation_interval: Duration,
    /// Thread name.
    pub name: String,
}

impl Default for TaskConfig {
    fn default() -> Self {
        TaskConfig {
            punctuation_interval: Duration::from_millis(100),
            name: "approxiot-stream-task".to_string(),
        }
    }
}

/// A running stream task; join to wait for source exhaustion.
#[derive(Debug)]
pub struct StreamTask {
    handle: JoinHandle<()>,
}

impl StreamTask {
    /// Spawns a task thread driving `processor` between `source` and
    /// `sink`.
    ///
    /// * `source` is polled repeatedly; it should block briefly (not spin)
    ///   when no data is available and return [`SourceEvent::Closed`] at end
    ///   of stream.
    /// * `sink` receives every output; returning `false` stops the task
    ///   (downstream gone).
    /// * `punctuate` fires between polls whenever at least
    ///   `punctuation_interval` of clock time has passed since the last
    ///   firing.
    ///
    /// # Panics
    ///
    /// Panics if the thread cannot be spawned.
    pub fn spawn<P, S, K>(
        config: TaskConfig,
        clock: Arc<dyn Clock>,
        mut source: S,
        mut processor: P,
        mut sink: K,
    ) -> StreamTask
    where
        P: Processor + 'static,
        S: FnMut() -> SourceEvent<P::In> + Send + 'static,
        K: FnMut(P::Out) -> bool + Send + 'static,
    {
        let handle = thread::Builder::new()
            .name(config.name.clone())
            .spawn(move || {
                let mut ctx = Context::new();
                let tick = config.punctuation_interval.as_nanos() as u64;
                let mut last_tick = clock.now_nanos();
                'main: loop {
                    let event = source();
                    match event {
                        SourceEvent::Items(items) => {
                            for item in items {
                                processor.process(item, &mut ctx);
                            }
                        }
                        SourceEvent::Idle => {}
                        SourceEvent::Closed => {
                            processor.close(&mut ctx);
                            for out in ctx.drain() {
                                if !sink(out) {
                                    break;
                                }
                            }
                            break 'main;
                        }
                    }
                    let now = clock.now_nanos();
                    if now.saturating_sub(last_tick) >= tick {
                        processor.punctuate(now, &mut ctx);
                        last_tick = now;
                    }
                    for out in ctx.drain() {
                        if !sink(out) {
                            break 'main;
                        }
                    }
                }
            })
            .expect("spawn stream task thread");
        StreamTask { handle }
    }

    /// Waits for the task to finish (source closed or sink refused).
    pub fn join(self) -> thread::Result<()> {
        self.handle.join()
    }

    /// Returns `true` once the task thread has exited.
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::MapProcessor;
    use approxiot_net::WallClock;
    use crossbeam::channel;

    fn wall() -> Arc<dyn Clock> {
        Arc::new(WallClock::new())
    }

    #[test]
    fn task_processes_until_source_closes() {
        let inputs = vec![1, 2, 3];
        let mut served = false;
        let source = move || {
            if served {
                SourceEvent::Closed
            } else {
                served = true;
                SourceEvent::Items(inputs.clone())
            }
        };
        let (tx, rx) = channel::unbounded();
        let task = StreamTask::spawn(
            TaskConfig::default(),
            wall(),
            source,
            MapProcessor::new(|x: i32| x * 2),
            move |out| tx.send(out).is_ok(),
        );
        task.join().expect("task joins");
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![2, 4, 6]);
    }

    #[test]
    fn punctuation_fires_on_cadence() {
        struct CountTicks {
            ticks: u32,
        }
        impl Processor for CountTicks {
            type In = ();
            type Out = u32;
            fn process(&mut self, _input: (), _ctx: &mut Context<u32>) {}
            fn punctuate(&mut self, _now: u64, ctx: &mut Context<u32>) {
                self.ticks += 1;
                ctx.forward(self.ticks);
            }
        }
        let mut polls = 0;
        let source = move || {
            polls += 1;
            if polls > 50 {
                SourceEvent::Closed
            } else {
                std::thread::sleep(Duration::from_millis(2));
                SourceEvent::Idle
            }
        };
        let (tx, rx) = channel::unbounded();
        let task = StreamTask::spawn(
            TaskConfig {
                punctuation_interval: Duration::from_millis(10),
                name: "tick".into(),
            },
            wall(),
            source,
            CountTicks { ticks: 0 },
            move |out| tx.send(out).is_ok(),
        );
        task.join().expect("task joins");
        let ticks: Vec<u32> = rx.try_iter().collect();
        assert!(
            ticks.len() >= 3,
            "expected several punctuations, got {}",
            ticks.len()
        );
    }

    #[test]
    fn close_flushes_processor_state() {
        struct HoldAll {
            held: Vec<i32>,
        }
        impl Processor for HoldAll {
            type In = i32;
            type Out = i32;
            fn process(&mut self, input: i32, _ctx: &mut Context<i32>) {
                self.held.push(input);
            }
            fn close(&mut self, ctx: &mut Context<i32>) {
                ctx.forward_all(self.held.drain(..));
            }
        }
        let mut sent = false;
        let source = move || {
            if sent {
                SourceEvent::Closed
            } else {
                sent = true;
                SourceEvent::Items(vec![7, 8])
            }
        };
        let (tx, rx) = channel::unbounded();
        StreamTask::spawn(
            TaskConfig::default(),
            wall(),
            source,
            HoldAll { held: vec![] },
            move |out| tx.send(out).is_ok(),
        )
        .join()
        .expect("task joins");
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![7, 8]);
    }

    #[test]
    fn sink_refusal_stops_task() {
        let source = || SourceEvent::Items(vec![1]);
        let task = StreamTask::spawn(
            TaskConfig::default(),
            wall(),
            source,
            MapProcessor::new(|x: i32| x),
            |_out| false, // refuse immediately
        );
        task.join().expect("task joins despite infinite source");
    }

    #[test]
    fn is_finished_reflects_exit() {
        let task = StreamTask::spawn(
            TaskConfig::default(),
            wall(),
            || SourceEvent::Closed,
            MapProcessor::new(|x: i32| x),
            |_out| true,
        );
        // Give it a moment, then check.
        std::thread::sleep(Duration::from_millis(50));
        assert!(task.is_finished());
        task.join().expect("join");
    }
}
