//! The processor abstraction — the reproduction's equivalent of Kafka
//! Streams' Low-Level Processor API, which the paper uses to implement its
//! sampling operator (§IV-B II).

/// Collects a processor's outputs for the runtime to forward downstream.
#[derive(Debug)]
pub struct Context<O> {
    outputs: Vec<O>,
}

impl<O> Context<O> {
    /// Creates an empty context.
    pub fn new() -> Self {
        Context {
            outputs: Vec::new(),
        }
    }

    /// Emits one output downstream.
    pub fn forward(&mut self, output: O) {
        self.outputs.push(output);
    }

    /// Emits many outputs downstream.
    pub fn forward_all(&mut self, outputs: impl IntoIterator<Item = O>) {
        self.outputs.extend(outputs);
    }

    /// Takes the buffered outputs, leaving the context empty.
    pub fn drain(&mut self) -> Vec<O> {
        std::mem::take(&mut self.outputs)
    }

    /// Number of buffered outputs.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Returns `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }
}

impl<O> Default for Context<O> {
    fn default() -> Self {
        Context::new()
    }
}

/// A stream operator: transforms inputs into zero or more outputs, with
/// optional time-driven punctuation.
///
/// Implementors receive every input via [`Processor::process`] and a
/// periodic [`Processor::punctuate`] callback carrying the current time —
/// which is where window-close logic lives. [`Processor::close`] runs once
/// at shutdown for final flushes.
pub trait Processor: Send {
    /// Input message type.
    type In;
    /// Output message type.
    type Out;

    /// Handles one input message.
    fn process(&mut self, input: Self::In, ctx: &mut Context<Self::Out>);

    /// Periodic time callback (`now_nanos` from the driving clock).
    fn punctuate(&mut self, _now_nanos: u64, _ctx: &mut Context<Self::Out>) {}

    /// Final flush before shutdown.
    fn close(&mut self, _ctx: &mut Context<Self::Out>) {}

    /// Chains `next` after `self`, producing a composite processor
    /// (the reproduction's topology builder — a linear DAG is all the
    /// ApproxIoT pipeline needs at a single node).
    fn then<P>(self, next: P) -> Chain<Self, P>
    where
        Self: Sized,
        P: Processor<In = Self::Out>,
    {
        Chain {
            first: self,
            second: next,
        }
    }
}

/// Two processors composed in sequence (built by [`Processor::then`]).
#[derive(Debug, Clone)]
pub struct Chain<A, B> {
    first: A,
    second: B,
}

impl<A, B> Processor for Chain<A, B>
where
    A: Processor,
    B: Processor<In = A::Out>,
{
    type In = A::In;
    type Out = B::Out;

    fn process(&mut self, input: Self::In, ctx: &mut Context<Self::Out>) {
        let mut mid = Context::new();
        self.first.process(input, &mut mid);
        for m in mid.drain() {
            self.second.process(m, ctx);
        }
    }

    fn punctuate(&mut self, now_nanos: u64, ctx: &mut Context<Self::Out>) {
        let mut mid = Context::new();
        self.first.punctuate(now_nanos, &mut mid);
        for m in mid.drain() {
            self.second.process(m, ctx);
        }
        self.second.punctuate(now_nanos, ctx);
    }

    fn close(&mut self, ctx: &mut Context<Self::Out>) {
        let mut mid = Context::new();
        self.first.close(&mut mid);
        for m in mid.drain() {
            self.second.process(m, ctx);
        }
        self.second.close(ctx);
    }
}

/// A stateless map processor built from a closure.
///
/// # Examples
///
/// ```
/// use approxiot_streams::{Context, MapProcessor, Processor};
///
/// let mut double = MapProcessor::new(|x: i32| x * 2);
/// let mut ctx = Context::new();
/// double.process(21, &mut ctx);
/// assert_eq!(ctx.drain(), vec![42]);
/// ```
#[derive(Debug, Clone)]
pub struct MapProcessor<I, O, F> {
    f: F,
    _types: std::marker::PhantomData<fn(I) -> O>,
}

impl<I, O, F> MapProcessor<I, O, F>
where
    F: FnMut(I) -> O,
{
    /// Wraps a mapping closure.
    pub fn new(f: F) -> Self {
        MapProcessor {
            f,
            _types: std::marker::PhantomData,
        }
    }
}

impl<I, O, F> Processor for MapProcessor<I, O, F>
where
    F: FnMut(I) -> O + Send,
    I: Send,
    O: Send,
{
    type In = I;
    type Out = O;

    fn process(&mut self, input: I, ctx: &mut Context<O>) {
        ctx.forward((self.f)(input));
    }
}

/// A stateless filter processor built from a predicate.
#[derive(Debug, Clone)]
pub struct FilterProcessor<I, F> {
    predicate: F,
    _types: std::marker::PhantomData<fn(I) -> I>,
}

impl<I, F> FilterProcessor<I, F>
where
    F: FnMut(&I) -> bool,
{
    /// Wraps a predicate.
    pub fn new(predicate: F) -> Self {
        FilterProcessor {
            predicate,
            _types: std::marker::PhantomData,
        }
    }
}

impl<I, F> Processor for FilterProcessor<I, F>
where
    F: FnMut(&I) -> bool + Send,
    I: Send,
{
    type In = I;
    type Out = I;

    fn process(&mut self, input: I, ctx: &mut Context<I>) {
        if (self.predicate)(&input) {
            ctx.forward(input);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_forwards_and_drains() {
        let mut ctx = Context::new();
        ctx.forward(1);
        ctx.forward_all([2, 3]);
        assert_eq!(ctx.len(), 3);
        assert_eq!(ctx.drain(), vec![1, 2, 3]);
        assert!(ctx.is_empty());
    }

    #[test]
    fn map_processor_transforms() {
        let mut p = MapProcessor::new(|x: u32| x + 1);
        let mut ctx = Context::new();
        p.process(1, &mut ctx);
        p.process(2, &mut ctx);
        assert_eq!(ctx.drain(), vec![2, 3]);
    }

    #[test]
    fn filter_processor_drops_non_matching() {
        let mut p = FilterProcessor::new(|x: &i32| *x % 2 == 0);
        let mut ctx = Context::new();
        for i in 0..6 {
            p.process(i, &mut ctx);
        }
        assert_eq!(ctx.drain(), vec![0, 2, 4]);
    }

    #[test]
    fn chain_composes_in_order() {
        let mut p =
            MapProcessor::new(|x: i32| x * 10).then(FilterProcessor::new(|x: &i32| *x > 15));
        let mut ctx = Context::new();
        p.process(1, &mut ctx);
        p.process(2, &mut ctx);
        assert_eq!(ctx.drain(), vec![20]);
    }

    #[test]
    fn chain_punctuation_flows_through_second_stage() {
        // A first stage that emits buffered state at punctuation.
        struct FlushOnTick {
            held: Vec<i32>,
        }
        impl Processor for FlushOnTick {
            type In = i32;
            type Out = i32;
            fn process(&mut self, input: i32, _ctx: &mut Context<i32>) {
                self.held.push(input);
            }
            fn punctuate(&mut self, _now: u64, ctx: &mut Context<i32>) {
                ctx.forward_all(self.held.drain(..));
            }
        }
        let mut p = FlushOnTick { held: vec![] }.then(MapProcessor::new(|x: i32| x + 100));
        let mut ctx = Context::new();
        p.process(1, &mut ctx);
        assert!(ctx.is_empty(), "first stage holds input");
        p.punctuate(0, &mut ctx);
        assert_eq!(ctx.drain(), vec![101]);
    }

    #[test]
    fn chain_close_flushes_both_stages() {
        struct EmitOnClose;
        impl Processor for EmitOnClose {
            type In = i32;
            type Out = i32;
            fn process(&mut self, input: i32, ctx: &mut Context<i32>) {
                ctx.forward(input);
            }
            fn close(&mut self, ctx: &mut Context<i32>) {
                ctx.forward(-1);
            }
        }
        let mut p = EmitOnClose.then(MapProcessor::new(|x: i32| x * 2));
        let mut ctx = Context::new();
        p.close(&mut ctx);
        assert_eq!(ctx.drain(), vec![-2]);
    }
}
