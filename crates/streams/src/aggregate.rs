//! Windowed aggregation processors: the High-Level-DSL-style operators the
//! paper's computation engine runs at the root (Figure 4, "Computation
//! Engine (Kafka Streams)").

use crate::processor::{Context, Processor};
use crate::window::{TumblingWindow, WindowId};
use std::collections::BTreeMap;

/// A closed window's aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowAggregate<A> {
    /// The window index.
    pub window: WindowId,
    /// The folded aggregate.
    pub aggregate: A,
    /// Items folded into this window.
    pub count: u64,
}

/// Folds timestamped values into per-window aggregates and emits each
/// window when the punctuation watermark passes its end.
///
/// The fold is an arbitrary closure over `(accumulator, value)`; the
/// initial accumulator is cloned per window.
///
/// # Examples
///
/// ```
/// use approxiot_streams::{Context, Processor, TumblingWindow, WindowedAggregate};
/// use std::time::Duration;
///
/// // Windowed SUM of (timestamp, value) pairs.
/// let mut sum = WindowedAggregate::new(
///     TumblingWindow::new(Duration::from_secs(1)),
///     0.0f64,
///     |acc, v: f64| acc + v,
/// );
/// let mut ctx = Context::new();
/// sum.process((100, 2.5), &mut ctx);
/// sum.process((200, 1.5), &mut ctx);
/// assert!(ctx.is_empty(), "window still open");
/// sum.punctuate(2_000_000_000, &mut ctx); // watermark past window 0
/// let out = ctx.drain();
/// assert_eq!(out[0].aggregate, 4.0);
/// assert_eq!(out[0].count, 2);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedAggregate<V, A, F> {
    scheme: TumblingWindow,
    init: A,
    fold: F,
    open: BTreeMap<WindowId, (A, u64)>,
    _value: std::marker::PhantomData<fn(V)>,
}

impl<V, A: Clone, F> WindowedAggregate<V, A, F>
where
    F: FnMut(A, V) -> A,
{
    /// Creates a windowed fold with the given initial accumulator.
    pub fn new(scheme: TumblingWindow, init: A, fold: F) -> Self {
        WindowedAggregate {
            scheme,
            init,
            fold,
            open: BTreeMap::new(),
            _value: std::marker::PhantomData,
        }
    }

    /// Number of currently open windows.
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }
}

impl<V, A, F> Processor for WindowedAggregate<V, A, F>
where
    A: Clone + Send,
    V: Send,
    F: FnMut(A, V) -> A + Send,
{
    /// `(event-time nanos, value)` pairs.
    type In = (u64, V);
    type Out = WindowAggregate<A>;

    fn process(&mut self, (ts, value): (u64, V), _ctx: &mut Context<Self::Out>) {
        let id = self.scheme.index_of(ts);
        let slot = self
            .open
            .entry(id)
            .or_insert_with(|| (self.init.clone(), 0));
        let acc = std::mem::replace(&mut slot.0, self.init.clone());
        slot.0 = (self.fold)(acc, value);
        slot.1 += 1;
    }

    fn punctuate(&mut self, now_nanos: u64, ctx: &mut Context<Self::Out>) {
        let closed: Vec<WindowId> = self
            .open
            .keys()
            .copied()
            .take_while(|&id| self.scheme.end_of(id) <= now_nanos)
            .collect();
        for id in closed {
            let (aggregate, count) = self.open.remove(&id).expect("key from open set");
            ctx.forward(WindowAggregate {
                window: id,
                aggregate,
                count,
            });
        }
    }

    fn close(&mut self, ctx: &mut Context<Self::Out>) {
        for (id, (aggregate, count)) in std::mem::take(&mut self.open) {
            ctx.forward(WindowAggregate {
                window: id,
                aggregate,
                count,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const SEC: u64 = 1_000_000_000;

    fn sum_agg() -> WindowedAggregate<f64, f64, impl FnMut(f64, f64) -> f64> {
        WindowedAggregate::new(TumblingWindow::new(Duration::from_secs(1)), 0.0, |a, v| {
            a + v
        })
    }

    #[test]
    fn aggregates_per_window() {
        let mut agg = sum_agg();
        let mut ctx = Context::new();
        agg.process((0, 1.0), &mut ctx);
        agg.process((SEC / 2, 2.0), &mut ctx);
        agg.process((SEC + 1, 10.0), &mut ctx);
        assert_eq!(agg.open_windows(), 2);
        agg.punctuate(2 * SEC, &mut ctx);
        let out = ctx.drain();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].aggregate, 3.0);
        assert_eq!(out[1].aggregate, 10.0);
        assert_eq!(out[1].count, 1);
    }

    #[test]
    fn watermark_holds_back_open_windows() {
        let mut agg = sum_agg();
        let mut ctx = Context::new();
        agg.process((0, 1.0), &mut ctx);
        agg.process((SEC, 2.0), &mut ctx);
        agg.punctuate(SEC + SEC / 2, &mut ctx);
        let out = ctx.drain();
        assert_eq!(out.len(), 1, "window 1 is still open");
        assert_eq!(out[0].window, 0);
        assert_eq!(agg.open_windows(), 1);
    }

    #[test]
    fn close_flushes_everything() {
        let mut agg = sum_agg();
        let mut ctx = Context::new();
        agg.process((0, 5.0), &mut ctx);
        agg.process((10 * SEC, 7.0), &mut ctx);
        agg.close(&mut ctx);
        let out = ctx.drain();
        assert_eq!(out.len(), 2);
        assert_eq!(agg.open_windows(), 0);
    }

    #[test]
    fn generic_accumulator_types_work() {
        // min/max tracking with a tuple accumulator.
        let mut agg = WindowedAggregate::new(
            TumblingWindow::new(Duration::from_secs(1)),
            (f64::INFINITY, f64::NEG_INFINITY),
            |(lo, hi), v: f64| (v.min(lo), v.max(hi)),
        );
        let mut ctx = Context::new();
        for v in [3.0, -1.0, 7.0] {
            agg.process((0, v), &mut ctx);
        }
        agg.punctuate(SEC, &mut ctx);
        let out = ctx.drain();
        assert_eq!(out[0].aggregate, (-1.0, 7.0));
        assert_eq!(out[0].count, 3);
    }

    #[test]
    fn chains_with_other_processors() {
        use crate::processor::MapProcessor;
        // Stamp items with a constant timestamp, then window-sum them.
        let mut topo = MapProcessor::new(|v: f64| (0u64, v)).then(sum_agg());
        let mut ctx = Context::new();
        topo.process(1.5, &mut ctx);
        topo.process(2.5, &mut ctx);
        topo.punctuate(SEC, &mut ctx);
        let out = ctx.drain();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].aggregate, 4.0);
    }
}
