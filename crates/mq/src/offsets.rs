//! Committed-offset storage: the in-process analogue of Kafka's
//! `__consumer_offsets`, letting a consumer group resume where it left off
//! after a member restarts or an assignment rebalances.

use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Per-topic commits of one group: `topic → partition → offset`.
type TopicOffsets = BTreeMap<String, BTreeMap<u32, u64>>;

/// Thread-safe store of committed offsets per consumer group.
///
/// Offsets follow Kafka's convention: the committed value is the offset of
/// the **next** record to consume.
///
/// Internally the store nests `group → topic → partition` maps so lookups
/// borrow the caller's `&str`s directly — [`OffsetStore::fetch`] sits on
/// every consumer-resume path and allocates nothing.
///
/// # Examples
///
/// ```
/// use approxiot_mq::OffsetStore;
///
/// let store = OffsetStore::new();
/// store.commit("analytics", "layer1", 0, 42);
/// assert_eq!(store.fetch("analytics", "layer1", 0), Some(42));
/// assert_eq!(store.fetch("analytics", "layer1", 1), None);
/// ```
#[derive(Debug, Default)]
pub struct OffsetStore {
    offsets: RwLock<BTreeMap<String, TopicOffsets>>,
}

impl OffsetStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        OffsetStore::default()
    }

    /// Commits `offset` for the group/topic/partition, returning the
    /// previous commit if any. Commits are last-writer-wins (Kafka
    /// semantics — the group coordinator serialises members).
    pub fn commit(&self, group: &str, topic: &str, partition: u32, offset: u64) -> Option<u64> {
        let mut groups = self.offsets.write();
        // Only the first commit for a group/topic allocates its key.
        let topics = match groups.get_mut(group) {
            Some(topics) => topics,
            None => groups.entry(group.to_string()).or_default(),
        };
        let partitions = match topics.get_mut(topic) {
            Some(partitions) => partitions,
            None => topics.entry(topic.to_string()).or_default(),
        };
        partitions.insert(partition, offset)
    }

    /// Fetches the committed offset, `None` when the group never committed
    /// for this partition. Allocation-free: the nested maps are keyed by
    /// `String` but looked up by `&str`.
    pub fn fetch(&self, group: &str, topic: &str, partition: u32) -> Option<u64> {
        self.offsets
            .read()
            .get(group)?
            .get(topic)?
            .get(&partition)
            .copied()
    }

    /// All commits of a group on a topic, by partition.
    pub fn fetch_all(&self, group: &str, topic: &str) -> BTreeMap<u32, u64> {
        self.offsets
            .read()
            .get(group)
            .and_then(|topics| topics.get(topic))
            .cloned()
            .unwrap_or_default()
    }

    /// Deletes every commit of a group (group deletion / expiry).
    pub fn reset_group(&self, group: &str) {
        self.offsets.write().remove(group);
    }

    /// Total number of committed entries.
    pub fn len(&self) -> usize {
        self.offsets
            .read()
            .values()
            .flat_map(TopicOffsets::values)
            .map(BTreeMap::len)
            .sum()
    }

    /// Returns `true` when nothing is committed. O(1): `commit` never
    /// leaves an empty inner map behind and `reset_group` removes whole
    /// groups, so the outer map is empty exactly when the store is.
    pub fn is_empty(&self) -> bool {
        self.offsets.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn commit_and_fetch_roundtrip() {
        let store = OffsetStore::new();
        assert_eq!(store.commit("g", "t", 0, 10), None);
        assert_eq!(store.commit("g", "t", 0, 20), Some(10));
        assert_eq!(store.fetch("g", "t", 0), Some(20));
    }

    #[test]
    fn groups_and_topics_are_isolated() {
        let store = OffsetStore::new();
        store.commit("g1", "t", 0, 5);
        store.commit("g2", "t", 0, 9);
        store.commit("g1", "u", 0, 7);
        assert_eq!(store.fetch("g1", "t", 0), Some(5));
        assert_eq!(store.fetch("g2", "t", 0), Some(9));
        assert_eq!(store.fetch("g1", "u", 0), Some(7));
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn fetch_all_collects_partitions() {
        let store = OffsetStore::new();
        store.commit("g", "t", 2, 20);
        store.commit("g", "t", 0, 5);
        store.commit("g", "other", 0, 99);
        let all = store.fetch_all("g", "t");
        assert_eq!(all.len(), 2);
        assert_eq!(all[&0], 5);
        assert_eq!(all[&2], 20);
    }

    #[test]
    fn reset_group_forgets_only_that_group() {
        let store = OffsetStore::new();
        store.commit("g1", "t", 0, 1);
        store.commit("g2", "t", 0, 2);
        store.reset_group("g1");
        assert_eq!(store.fetch("g1", "t", 0), None);
        assert_eq!(store.fetch("g2", "t", 0), Some(2));
    }

    #[test]
    fn concurrent_commits_land() {
        let store = Arc::new(OffsetStore::new());
        let handles: Vec<_> = (0..4u32)
            .map(|p| {
                let store = Arc::clone(&store);
                thread::spawn(move || {
                    for o in 0..100u64 {
                        store.commit("g", "t", p, o);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("join");
        }
        for p in 0..4 {
            assert_eq!(store.fetch("g", "t", p), Some(99));
        }
    }
}
