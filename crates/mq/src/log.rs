//! The partition log: an append-only, offset-addressed record sequence with
//! size-bounded retention and blocking reads.

use crate::error::MqError;
use crate::record::Record;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// State protected by the partition lock.
#[derive(Debug, Default)]
struct LogState {
    records: VecDeque<Record>,
    /// Offset of the first retained record.
    earliest: u64,
    /// Offset the next appended record will get.
    next: u64,
    closed: bool,
}

/// A single partition: an append-only log with monotonically increasing
/// offsets.
///
/// Retention is size-based: when more than `retention` records are stored,
/// the oldest are truncated and consumers positioned before the new earliest
/// offset receive [`MqError::OffsetOutOfRange`].
#[derive(Debug)]
pub struct PartitionLog {
    index: u32,
    retention: usize,
    state: Mutex<LogState>,
    appended: Condvar,
}

impl PartitionLog {
    /// Creates an empty partition retaining at most `retention` records
    /// (`usize::MAX` for unbounded).
    pub fn new(index: u32, retention: usize) -> Self {
        PartitionLog {
            index,
            retention: retention.max(1),
            state: Mutex::new(LogState::default()),
            appended: Condvar::new(),
        }
    }

    /// The partition's index within its topic.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Appends a record (offset is assigned here) and wakes blocked readers.
    ///
    /// # Errors
    ///
    /// Returns [`MqError::Closed`] after [`PartitionLog::close`].
    pub fn append(&self, mut record: Record) -> Result<u64, MqError> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(MqError::Closed);
        }
        let offset = state.next;
        record.offset = offset;
        record.partition = self.index;
        state.records.push_back(record);
        state.next += 1;
        while state.records.len() > self.retention {
            state.records.pop_front();
            state.earliest += 1;
        }
        drop(state);
        self.appended.notify_all();
        Ok(offset)
    }

    /// Reads up to `max` records starting at `offset`, blocking up to
    /// `timeout` for data when the log is caught up. An empty result means
    /// the timeout elapsed with no new data.
    ///
    /// # Errors
    ///
    /// * [`MqError::OffsetOutOfRange`] when `offset` was truncated.
    /// * [`MqError::Closed`] when the log is closed **and** fully consumed.
    pub fn read_from(
        &self,
        offset: u64,
        max: usize,
        timeout: Duration,
    ) -> Result<Vec<Record>, MqError> {
        let mut out = Vec::new();
        self.read_into(offset, max, timeout, &mut out)?;
        Ok(out)
    }

    /// Like [`PartitionLog::read_from`], but **appends** the records to a
    /// caller-owned buffer and returns how many were appended — the
    /// allocation-free consumption path ([`crate::Consumer::poll_into`]
    /// sweeps several partitions into one reused buffer). Record clones
    /// only bump the payload's refcount; no payload bytes are copied.
    ///
    /// # Errors
    ///
    /// Same contract as [`PartitionLog::read_from`].
    pub fn read_into(
        &self,
        offset: u64,
        max: usize,
        timeout: Duration,
        out: &mut Vec<Record>,
    ) -> Result<usize, MqError> {
        let mut state = self.state.lock();
        if offset < state.earliest {
            return Err(MqError::OffsetOutOfRange {
                requested: offset,
                earliest: state.earliest,
            });
        }
        if offset >= state.next {
            if state.closed {
                return Err(MqError::Closed);
            }
            // Wait for an append or timeout.
            self.appended.wait_for(&mut state, timeout);
            if offset >= state.next {
                return if state.closed {
                    Err(MqError::Closed)
                } else {
                    Ok(0)
                };
            }
        }
        let start = (offset - state.earliest) as usize;
        let end = state.records.len().min(start + max);
        let taken = end - start;
        out.extend(state.records.iter().skip(start).take(taken).cloned());
        Ok(taken)
    }

    /// Earliest retained offset.
    pub fn earliest_offset(&self) -> u64 {
        self.state.lock().earliest
    }

    /// Offset the next record will receive (== log end offset).
    pub fn latest_offset(&self) -> u64 {
        self.state.lock().next
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.state.lock().records.len()
    }

    /// Returns `true` when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.state.lock().records.is_empty()
    }

    /// Marks the log closed: further appends fail, and readers that reach
    /// the end receive [`MqError::Closed`] instead of blocking.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.appended.notify_all();
    }

    /// Returns `true` once the log is closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::sync::Arc;
    use std::thread;

    fn rec(n: u8) -> Record {
        Record {
            partition: 0,
            offset: 0,
            timestamp: n as u64,
            key: None,
            value: Bytes::copy_from_slice(&[n]),
        }
    }

    #[test]
    fn appends_assign_monotonic_offsets() {
        let log = PartitionLog::new(3, usize::MAX);
        assert_eq!(log.append(rec(0)).expect("append"), 0);
        assert_eq!(log.append(rec(1)).expect("append"), 1);
        assert_eq!(log.latest_offset(), 2);
        let got = log.read_from(0, 10, Duration::ZERO).expect("read");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].offset, 0);
        assert_eq!(got[0].partition, 3, "partition index stamped on append");
        assert_eq!(got[1].offset, 1);
    }

    #[test]
    fn read_respects_max() {
        let log = PartitionLog::new(0, usize::MAX);
        for i in 0..10 {
            log.append(rec(i)).expect("append");
        }
        let got = log.read_from(2, 3, Duration::ZERO).expect("read");
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].offset, 2);
        assert_eq!(got[2].offset, 4);
    }

    #[test]
    fn empty_read_times_out_with_no_data() {
        let log = PartitionLog::new(0, usize::MAX);
        let got = log
            .read_from(0, 10, Duration::from_millis(5))
            .expect("read");
        assert!(got.is_empty());
    }

    #[test]
    fn retention_truncates_oldest() {
        let log = PartitionLog::new(0, 3);
        for i in 0..5 {
            log.append(rec(i)).expect("append");
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.earliest_offset(), 2);
        let err = log.read_from(0, 10, Duration::ZERO).unwrap_err();
        assert_eq!(
            err,
            MqError::OffsetOutOfRange {
                requested: 0,
                earliest: 2
            }
        );
        let got = log.read_from(2, 10, Duration::ZERO).expect("read");
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn blocking_read_wakes_on_append() {
        let log = Arc::new(PartitionLog::new(0, usize::MAX));
        let reader = {
            let log = Arc::clone(&log);
            thread::spawn(move || log.read_from(0, 10, Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(20));
        log.append(rec(7)).expect("append");
        let got = reader.join().expect("join").expect("read");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value.as_ref(), &[7]);
    }

    #[test]
    fn close_rejects_appends_and_unblocks_readers() {
        let log = Arc::new(PartitionLog::new(0, usize::MAX));
        log.append(rec(1)).expect("append");
        log.close();
        assert_eq!(log.append(rec(2)).unwrap_err(), MqError::Closed);
        // Reads of existing data still work...
        assert_eq!(log.read_from(0, 10, Duration::ZERO).expect("read").len(), 1);
        // ...but reading past the end reports Closed instead of blocking.
        assert_eq!(
            log.read_from(1, 10, Duration::from_secs(5)).unwrap_err(),
            MqError::Closed
        );
        assert!(log.is_closed());
    }

    #[test]
    fn concurrent_producers_never_lose_records() {
        let log = Arc::new(PartitionLog::new(0, usize::MAX));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                thread::spawn(move || {
                    for i in 0..250u8 {
                        log.append(rec(i.wrapping_add(t))).expect("append");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("join");
        }
        assert_eq!(log.latest_offset(), 1000);
        assert_eq!(log.len(), 1000);
        // Offsets are dense.
        let got = log.read_from(0, 1000, Duration::ZERO).expect("read");
        for (i, r) in got.iter().enumerate() {
            assert_eq!(r.offset, i as u64);
        }
    }

    #[test]
    fn zero_retention_is_clamped_to_one() {
        let log = PartitionLog::new(0, 0);
        log.append(rec(1)).expect("append");
        log.append(rec(2)).expect("append");
        assert_eq!(log.len(), 1);
        assert_eq!(log.earliest_offset(), 1);
    }
}
