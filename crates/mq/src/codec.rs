//! Wire format for batches travelling between edge layers.
//!
//! The paper's prototype serialises sampled sub-streams plus their weight
//! metadata into Kafka topics. We do the same with a compact little-endian
//! binary frame, so the network layer can meter *real* bytes on the wire
//! for the bandwidth-saving experiment (Figure 7).
//!
//! Two frame versions share the magic number and the weights section
//! (all integers little-endian):
//!
//! **v1 — array-of-structs** (the original layout, still decodable):
//!
//! ```text
//! magic     u16  = 0xA107
//! version   u8   = 1
//! weights   u32  count, then per entry: stratum u32, weight f64
//! items     u32  count, then per entry: stratum u32, value f64,
//!                                        seq u64, source_ts u64
//! ```
//!
//! **v2 — columnar**: the body is four length-prefixed column runs, one
//! per [`approxiot_core::ColumnarBatch`] column, in declaration order:
//!
//! ```text
//! magic     u16  = 0xA107
//! version   u8   = 2
//! weights   u32  count, then per entry: stratum u32, weight f64
//! strata    u32  count n, then n × u32
//! values    u32  count n, then n × f64
//! seqs      u32  count n, then n × u64
//! source_ts u32  count n, then n × u64
//! ```
//!
//! All four counts must agree. Because each run is contiguous and
//! little-endian, encode and decode on little-endian hosts are a handful
//! of bulk `extend_from_slice`/`copy_from_slice` calls per frame instead
//! of 28 bytes of per-item field writes (big-endian hosts fall back to
//! per-element conversion). v2 costs 12 extra bytes per frame over v1 for
//! the same items; the codecs reject each other's frames with named
//! errors, and [`decode_batch_any_into`] dispatches on the version byte
//! when either may arrive.
//!
//! **v3 — per-stratum summaries** (the sketch strategy's wire format):
//! no items at all — the body is a sequence of windows, each holding
//! length-prefixed per-stratum summary sections (exact moments + the
//! KLL-style sketch entries) plus the shared heavy-hitter counters:
//!
//! ```text
//! magic       u16  = 0xA107
//! version     u8   = 3
//! kll_k       u32  \  SketchConfig — lets a decoder rebuild summaries
//! heavy_cap   u32  /  without out-of-band state
//! seed        u64  topology-wide sketch seed
//! windows     u32  count, then per window:
//!   window    u64  window index
//!   strata    u32  count, then per stratum a length-prefixed section:
//!     len     u32  section bytes after this prefix
//!     stratum u32
//!     moments count u64, sum f64, sum_sq f64
//!     sketch  level u32, observed u64, entries u32 × (hash u64, value f64)
//!   heavy     u32  count, then per entry: stratum u32, weight f64, err f64
//! ```
//!
//! A v3 frame's size is independent of the item count — that is the
//! whole point: inner hops of a sketch topology ship `O(strata · k)`
//! bytes per window however fast the sources run. The summary decoder
//! rejects v1/v2 item frames with named errors and vice versa.

use crate::error::MqError;
use approxiot_core::summary::stratum_sketch_seed;
use approxiot_core::{
    Batch, ColumnarBatch, HeavyEntry, KllSketch, Moments, SketchConfig, SpaceSaving, StratumId,
    StratumSummaries, StratumSummary, StreamItem, WeightMap,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u16 = 0xA107;
const VERSION: u8 = 1;
const VERSION_COLUMNAR: u8 = 2;
const VERSION_SUMMARY: u8 = 3;

/// Bytes per encoded weight entry.
const WEIGHT_ENTRY: usize = 4 + 8;
/// Bytes per encoded item.
const ITEM_ENTRY: usize = 4 + 8 + 8 + 8;
/// Fixed header size.
const HEADER: usize = 2 + 1;

/// Returns the exact encoded size of a batch, without encoding it.
pub fn encoded_len(batch: &Batch) -> usize {
    HEADER + 4 + batch.weights.len() * WEIGHT_ENTRY + 4 + batch.items.len() * ITEM_ENTRY
}

/// Encodes a batch into a wire frame.
///
/// # Examples
///
/// ```
/// use approxiot_core::{Batch, StratumId, StreamItem};
/// use approxiot_mq::codec::{decode_batch, encode_batch};
///
/// let batch = Batch::from_items(vec![StreamItem::new(StratumId::new(0), 1.5)]);
/// let frame = encode_batch(&batch);
/// let decoded = decode_batch(&frame)?;
/// assert_eq!(decoded, batch);
/// # Ok::<(), approxiot_mq::MqError>(())
/// ```
pub fn encode_batch(batch: &Batch) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(batch));
    encode_batch_into(batch, &mut buf);
    buf.freeze()
}

/// Encodes a batch into a caller-owned buffer, replacing its contents.
///
/// This is the steady-state entry point: the buffer is cleared (keeping
/// its allocation) and exact room is reserved up front, so a loop that
/// encodes same-sized batches through one reused `BytesMut` performs
/// **zero allocations per frame** after the first. [`encode_batch`] is a
/// thin wrapper for one-shot callers.
pub fn encode_batch_into(batch: &Batch, buf: &mut BytesMut) {
    buf.clear();
    buf.reserve(encoded_len(batch));
    buf.put_u16_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(batch.weights.len() as u32);
    for (stratum, weight) in batch.weights.iter() {
        buf.put_u32_le(stratum.index());
        buf.put_f64_le(weight);
    }
    buf.put_u32_le(batch.items.len() as u32);
    for item in &batch.items {
        buf.put_u32_le(item.stratum.index());
        buf.put_f64_le(item.value);
        buf.put_u64_le(item.seq);
        buf.put_u64_le(item.source_ts);
    }
}

/// Decodes a wire frame back into a batch.
///
/// # Errors
///
/// Returns [`MqError::Codec`] on a bad magic number, unsupported version or
/// truncated frame.
pub fn decode_batch(frame: &[u8]) -> Result<Batch, MqError> {
    let mut batch = Batch::new();
    decode_batch_into(frame, &mut batch)?;
    Ok(batch)
}

/// Decodes a wire frame into a caller-owned (typically recycled) batch,
/// replacing its contents.
///
/// The batch is cleared first, keeping its item storage, so a loop that
/// decodes frames into batches drawn from an
/// [`approxiot_core::BatchPool`] allocates nothing per frame once the
/// pooled capacities have warmed up. On error the batch is left cleared —
/// never partially decoded.
///
/// # Errors
///
/// Returns [`MqError::Codec`] on a bad magic number, unsupported version,
/// truncated/corrupted frame or trailing bytes; never panics, whatever
/// the input bytes.
pub fn decode_batch_into(frame: &[u8], batch: &mut Batch) -> Result<(), MqError> {
    batch.clear();
    let mut buf = frame;
    if buf.remaining() < HEADER {
        return Err(MqError::Codec("frame shorter than header".into()));
    }
    let magic = buf.get_u16_le();
    if magic != MAGIC {
        return Err(MqError::Codec(format!("bad magic 0x{magic:04X}")));
    }
    let version = buf.get_u8();
    if version == VERSION_COLUMNAR {
        return Err(MqError::Codec(
            "columnar v2 frame in the v1 item decoder (use decode_columns or decode_batch_any)"
                .into(),
        ));
    }
    if version == VERSION_SUMMARY {
        return Err(MqError::Codec(
            "summary v3 frame in the v1 item decoder (use decode_summaries)".into(),
        ));
    }
    if version != VERSION {
        return Err(MqError::Codec(format!("unsupported version {version}")));
    }
    if let Err(err) = decode_weights(&mut buf, &mut batch.weights) {
        batch.weights.clear();
        return Err(err);
    }
    if buf.remaining() < 4 {
        batch.weights.clear();
        return Err(MqError::Codec("truncated item count".into()));
    }
    let item_count = buf.get_u32_le() as usize;
    if buf.remaining() != item_count * ITEM_ENTRY {
        let failure = if buf.remaining() < item_count * ITEM_ENTRY {
            "truncated item entries".to_string()
        } else {
            format!(
                "{} trailing bytes",
                buf.remaining() - item_count * ITEM_ENTRY
            )
        };
        batch.weights.clear();
        return Err(MqError::Codec(failure));
    }
    batch.items.reserve(item_count);
    for _ in 0..item_count {
        let stratum = StratumId::new(buf.get_u32_le());
        let value = buf.get_f64_le();
        let seq = buf.get_u64_le();
        let source_ts = buf.get_u64_le();
        batch
            .items
            .push(StreamItem::with_meta(stratum, value, seq, source_ts));
    }
    Ok(())
}

/// Decodes the shared weights section (count + entries), validating each
/// weight like v1 always has.
fn decode_weights(buf: &mut &[u8], weights: &mut WeightMap) -> Result<(), MqError> {
    if buf.remaining() < 4 {
        return Err(MqError::Codec("truncated weight count".into()));
    }
    let weight_count = buf.get_u32_le() as usize;
    if buf.remaining() < weight_count * WEIGHT_ENTRY {
        return Err(MqError::Codec("truncated weight entries".into()));
    }
    for _ in 0..weight_count {
        let stratum = StratumId::new(buf.get_u32_le());
        let weight = buf.get_f64_le();
        if !weight.is_finite() || weight < 1.0 - 1e-9 {
            return Err(MqError::Codec(format!(
                "invalid weight {weight} for {stratum}"
            )));
        }
        weights.set(stratum, weight);
    }
    Ok(())
}

/// A column element type the v2 codec moves in bulk. All three
/// implementors (`u32`, `u64`, `f64`) are plain-old-data with every bit
/// pattern valid, which is what makes the byte-view casts in the
/// little-endian fast paths sound.
trait ColumnElem: Copy {
    /// Encoded bytes per element.
    const SIZE: usize;
    #[cfg(not(target_endian = "little"))]
    fn put_le(buf: &mut BytesMut, v: Self);
    /// Reads one element from a little-endian byte run (big-endian hosts
    /// and the strided v2 → `Batch` path).
    fn read_le(bytes: &[u8]) -> Self;
}

impl ColumnElem for u32 {
    const SIZE: usize = 4;
    #[cfg(not(target_endian = "little"))]
    fn put_le(buf: &mut BytesMut, v: Self) {
        buf.put_u32_le(v);
    }
    fn read_le(bytes: &[u8]) -> Self {
        // analysis: allow(P1, reason = "slice is exactly SIZE bytes; the [..N] index above already checks it")
        u32::from_le_bytes(bytes[..4].try_into().expect("length checked"))
    }
}

impl ColumnElem for u64 {
    const SIZE: usize = 8;
    #[cfg(not(target_endian = "little"))]
    fn put_le(buf: &mut BytesMut, v: Self) {
        buf.put_u64_le(v);
    }
    fn read_le(bytes: &[u8]) -> Self {
        // analysis: allow(P1, reason = "slice is exactly SIZE bytes; the [..N] index above already checks it")
        u64::from_le_bytes(bytes[..8].try_into().expect("length checked"))
    }
}

impl ColumnElem for f64 {
    const SIZE: usize = 8;
    #[cfg(not(target_endian = "little"))]
    fn put_le(buf: &mut BytesMut, v: Self) {
        buf.put_f64_le(v);
    }
    fn read_le(bytes: &[u8]) -> Self {
        // analysis: allow(P1, reason = "slice is exactly SIZE bytes; the [..N] index above already checks it")
        f64::from_le_bytes(bytes[..8].try_into().expect("length checked"))
    }
}

/// Appends one length-prefixed column run: `u32` element count, then the
/// raw little-endian elements — a single `extend_from_slice` on
/// little-endian hosts.
fn put_column<T: ColumnElem>(buf: &mut BytesMut, col: &[T]) {
    buf.put_u32_le(col.len() as u32);
    #[cfg(target_endian = "little")]
    {
        // SAFETY: `T: ColumnElem` is plain-old-data without padding, so
        // viewing the slice as bytes is sound, and on a little-endian
        // host the in-memory bytes are exactly the wire encoding.
        let bytes = unsafe {
            std::slice::from_raw_parts(col.as_ptr().cast::<u8>(), std::mem::size_of_val(col))
        };
        buf.put_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    for &v in col {
        T::put_le(buf, v);
    }
}

/// Takes one length-prefixed column run off the front of `buf`, returning
/// its raw byte region and element count after bounds checks.
fn take_column_bytes<'a>(
    buf: &mut &'a [u8],
    elem_size: usize,
    name: &str,
) -> Result<(&'a [u8], usize), MqError> {
    if buf.remaining() < 4 {
        return Err(MqError::Codec(format!("truncated {name} column count")));
    }
    let n = buf.get_u32_le() as usize;
    let nbytes = n
        .checked_mul(elem_size)
        .ok_or_else(|| MqError::Codec(format!("{name} column count overflows")))?;
    if buf.remaining() < nbytes {
        return Err(MqError::Codec(format!("truncated {name} column")));
    }
    let (bytes, tail) = buf.split_at(nbytes);
    *buf = tail;
    Ok((bytes, n))
}

/// Refills `out` from a column's little-endian byte run — one bulk
/// `copy_nonoverlapping` on little-endian hosts, per-element conversion
/// otherwise.
fn fill_column<T: ColumnElem>(out: &mut Vec<T>, bytes: &[u8], n: usize) {
    out.clear();
    out.reserve(n);
    #[cfg(target_endian = "little")]
    // SAFETY: `T` is plain-old-data admitting every bit pattern, `bytes`
    // holds exactly `n * T::SIZE` bytes (checked by the caller through
    // `take_column_bytes`), and `reserve` guaranteed capacity for `n`
    // elements before `set_len`.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(n);
    }
    #[cfg(not(target_endian = "little"))]
    for i in 0..n {
        out.push(T::read_le(&bytes[i * T::SIZE..]));
    }
}

/// Returns the exact encoded size of a columnar batch as a v2 frame,
/// without encoding it.
pub fn encoded_len_columns(batch: &ColumnarBatch) -> usize {
    HEADER + 4 + batch.weights.len() * WEIGHT_ENTRY + 4 * 4 + batch.len() * ITEM_ENTRY
}

/// Returns the exact encoded size of an AoS batch as a v2 columnar frame
/// (see [`encode_batch_v2_into`]).
pub fn encoded_len_v2(batch: &Batch) -> usize {
    HEADER + 4 + batch.weights.len() * WEIGHT_ENTRY + 4 * 4 + batch.items.len() * ITEM_ENTRY
}

/// Encodes a columnar batch into a v2 wire frame.
///
/// # Examples
///
/// ```
/// use approxiot_core::{ColumnarBatch, StratumId, StreamItem};
/// use approxiot_mq::codec::{decode_columns, encode_columns};
///
/// let mut batch = ColumnarBatch::new();
/// batch.push(StreamItem::new(StratumId::new(0), 1.5));
/// let frame = encode_columns(&batch);
/// assert_eq!(decode_columns(&frame)?, batch);
/// # Ok::<(), approxiot_mq::MqError>(())
/// ```
pub fn encode_columns(batch: &ColumnarBatch) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len_columns(batch));
    encode_columns_into(batch, &mut buf);
    buf.freeze()
}

/// Encodes a columnar batch into a caller-owned buffer, replacing its
/// contents — the steady-state entry point, zero allocations per frame
/// once the buffer has warmed up. The body is four bulk column copies.
pub fn encode_columns_into(batch: &ColumnarBatch, buf: &mut BytesMut) {
    buf.clear();
    buf.reserve(encoded_len_columns(batch));
    buf.put_u16_le(MAGIC);
    buf.put_u8(VERSION_COLUMNAR);
    buf.put_u32_le(batch.weights.len() as u32);
    for (stratum, weight) in batch.weights.iter() {
        buf.put_u32_le(stratum.index());
        buf.put_f64_le(weight);
    }
    put_column(buf, &batch.strata);
    put_column(buf, &batch.values);
    put_column(buf, &batch.seqs);
    put_column(buf, &batch.source_ts);
}

/// Encodes an **AoS** batch into a v2 columnar frame — four strided
/// passes over the items instead of a transposing copy, for producers
/// (like the pipeline source) that hold a [`Batch`] but feed columnar
/// consumers. Byte-identical to converting to a [`ColumnarBatch`] first
/// and calling [`encode_columns_into`].
pub fn encode_batch_v2_into(batch: &Batch, buf: &mut BytesMut) {
    buf.clear();
    buf.reserve(encoded_len_v2(batch));
    buf.put_u16_le(MAGIC);
    buf.put_u8(VERSION_COLUMNAR);
    buf.put_u32_le(batch.weights.len() as u32);
    for (stratum, weight) in batch.weights.iter() {
        buf.put_u32_le(stratum.index());
        buf.put_f64_le(weight);
    }
    let n = batch.items.len() as u32;
    buf.put_u32_le(n);
    for item in &batch.items {
        buf.put_u32_le(item.stratum.index());
    }
    buf.put_u32_le(n);
    for item in &batch.items {
        buf.put_f64_le(item.value);
    }
    buf.put_u32_le(n);
    for item in &batch.items {
        buf.put_u64_le(item.seq);
    }
    buf.put_u32_le(n);
    for item in &batch.items {
        buf.put_u64_le(item.source_ts);
    }
}

/// Decodes a v2 wire frame into a columnar batch.
///
/// # Errors
///
/// Returns [`MqError::Codec`] on a bad magic number, wrong or unsupported
/// version, truncated/corrupted frame or trailing bytes.
pub fn decode_columns(frame: &[u8]) -> Result<ColumnarBatch, MqError> {
    let mut batch = ColumnarBatch::new();
    decode_columns_into(frame, &mut batch)?;
    Ok(batch)
}

/// Decodes a v2 wire frame into a caller-owned (typically recycled)
/// columnar batch, replacing its contents — the columnar twin of
/// [`decode_batch_into`], with each column landing as one bulk copy. On
/// error the batch is left cleared, never partially decoded.
///
/// A **v1** frame is rejected with a named error (`"AoS v1 frame in the
/// columnar decoder"`); use [`decode_batch_into`] or sniff with
/// [`frame_version`] when either version may arrive.
///
/// # Errors
///
/// Returns [`MqError::Codec`] on a bad magic number, wrong or unsupported
/// version, truncated/corrupted frame, column length mismatch or trailing
/// bytes; never panics, whatever the input bytes.
pub fn decode_columns_into(frame: &[u8], batch: &mut ColumnarBatch) -> Result<(), MqError> {
    let result = decode_columns_inner(frame, batch);
    if result.is_err() {
        batch.clear();
    }
    result
}

fn decode_columns_inner(frame: &[u8], batch: &mut ColumnarBatch) -> Result<(), MqError> {
    batch.clear();
    let mut buf = frame;
    if buf.remaining() < HEADER {
        return Err(MqError::Codec("frame shorter than header".into()));
    }
    let magic = buf.get_u16_le();
    if magic != MAGIC {
        return Err(MqError::Codec(format!("bad magic 0x{magic:04X}")));
    }
    let version = buf.get_u8();
    if version == VERSION {
        return Err(MqError::Codec(
            "AoS v1 frame in the columnar decoder (use decode_batch or decode_batch_any)".into(),
        ));
    }
    if version == VERSION_SUMMARY {
        return Err(MqError::Codec(
            "summary v3 frame in the columnar decoder (use decode_summaries)".into(),
        ));
    }
    if version != VERSION_COLUMNAR {
        return Err(MqError::Codec(format!("unsupported version {version}")));
    }
    decode_weights(&mut buf, &mut batch.weights)?;
    let (strata, n) = take_column_bytes(&mut buf, u32::SIZE, "strata")?;
    let (values, n_values) = take_column_bytes(&mut buf, f64::SIZE, "values")?;
    let (seqs, n_seqs) = take_column_bytes(&mut buf, u64::SIZE, "seqs")?;
    let (source_ts, n_ts) = take_column_bytes(&mut buf, u64::SIZE, "source_ts")?;
    if n_values != n || n_seqs != n || n_ts != n {
        return Err(MqError::Codec(format!(
            "column length mismatch: strata {n}, values {n_values}, seqs {n_seqs}, source_ts {n_ts}"
        )));
    }
    if buf.remaining() != 0 {
        return Err(MqError::Codec(format!(
            "{} trailing bytes",
            buf.remaining()
        )));
    }
    fill_column(&mut batch.strata, strata, n);
    fill_column(&mut batch.values, values, n);
    fill_column(&mut batch.seqs, seqs, n);
    fill_column(&mut batch.source_ts, source_ts, n);
    Ok(())
}

/// Reads the version byte of a frame after checking the magic number —
/// for dispatch points that accept both frame versions.
///
/// # Errors
///
/// Returns [`MqError::Codec`] when the frame is shorter than a header or
/// carries the wrong magic (the version byte itself is not validated).
pub fn frame_version(frame: &[u8]) -> Result<u8, MqError> {
    if frame.len() < HEADER {
        return Err(MqError::Codec("frame shorter than header".into()));
    }
    let magic = u16::from_le_bytes([frame[0], frame[1]]);
    if magic != MAGIC {
        return Err(MqError::Codec(format!("bad magic 0x{magic:04X}")));
    }
    Ok(frame[2])
}

/// Decodes a frame of **either** version into an AoS batch: v1 frames go
/// through [`decode_batch_into`]; v2 frames are read column-run by
/// column-run with strided per-item reconstruction (no intermediate
/// columnar allocation). Used by aggregation points (the root) that may
/// receive both layouts.
///
/// # Errors
///
/// Returns [`MqError::Codec`] on a bad magic number, unsupported version
/// or corrupted frame; on error the batch is left cleared.
pub fn decode_batch_any_into(frame: &[u8], batch: &mut Batch) -> Result<(), MqError> {
    match frame_version(frame) {
        Ok(VERSION_COLUMNAR) => {
            let result = decode_v2_into_batch(frame, batch);
            if result.is_err() {
                batch.clear();
            }
            result
        }
        // v1, v3 (rejected by name — a summary frame has no item
        // payload), unknown versions, and header errors all get the v1
        // decoder's clearing behaviour and named errors.
        _ => decode_batch_into(frame, batch),
    }
}

fn decode_v2_into_batch(frame: &[u8], batch: &mut Batch) -> Result<(), MqError> {
    batch.clear();
    let mut buf = &frame[HEADER..]; // magic + version validated by the caller
    decode_weights(&mut buf, &mut batch.weights)?;
    let (strata, n) = take_column_bytes(&mut buf, u32::SIZE, "strata")?;
    let (values, n_values) = take_column_bytes(&mut buf, f64::SIZE, "values")?;
    let (seqs, n_seqs) = take_column_bytes(&mut buf, u64::SIZE, "seqs")?;
    let (source_ts, n_ts) = take_column_bytes(&mut buf, u64::SIZE, "source_ts")?;
    if n_values != n || n_seqs != n || n_ts != n {
        return Err(MqError::Codec(format!(
            "column length mismatch: strata {n}, values {n_values}, seqs {n_seqs}, source_ts {n_ts}"
        )));
    }
    if buf.remaining() != 0 {
        return Err(MqError::Codec(format!(
            "{} trailing bytes",
            buf.remaining()
        )));
    }
    batch.items.reserve(n);
    for i in 0..n {
        batch.items.push(StreamItem::with_meta(
            StratumId::new(u32::read_le(&strata[i * u32::SIZE..])),
            f64::read_le(&values[i * f64::SIZE..]),
            u64::read_le(&seqs[i * u64::SIZE..]),
            u64::read_le(&source_ts[i * u64::SIZE..]),
        ));
    }
    Ok(())
}

/// Bytes per encoded heavy-hitter counter.
const HEAVY_ENTRY: usize = 4 + 8 + 8;
/// Bytes per encoded sketch entry.
const SKETCH_ENTRY: usize = 8 + 8;
/// Fixed bytes of one per-stratum section body: stratum id, the three
/// moment fields, and the sketch header (level, observed, entry count).
const SECTION_FIXED: usize = 4 + (8 + 8 + 8) + (4 + 8 + 4);
/// Fixed bytes of the v3 frame header past the shared magic/version:
/// config (kll_k, heavy_capacity), seed, window count.
const SUMMARY_FIXED: usize = 4 + 4 + 8 + 4;
/// Fixed bytes of one window: window index, stratum count, heavy count.
const WINDOW_FIXED: usize = 8 + 4 + 4;

/// The encoded size of one per-stratum section body (past its `u32`
/// length prefix).
fn summary_section_len(section: &StratumSummary) -> usize {
    SECTION_FIXED + section.sketch.len() * SKETCH_ENTRY
}

/// Returns the exact encoded size of a set of window summaries as a v3
/// frame, without encoding it — how the engines bill `HopBytes` for a
/// sketch hop. Note there is no per-item term anywhere: the size depends
/// only on strata counts and sketch/heavy occupancy.
pub fn encoded_len_summaries(windows: &[(u64, StratumSummaries)]) -> usize {
    let mut len = HEADER + SUMMARY_FIXED;
    for (_, summaries) in windows {
        len += WINDOW_FIXED;
        for section in summaries.strata().values() {
            len += 4 + summary_section_len(section);
        }
        len += summaries.heavy().entries().len() * HEAVY_ENTRY;
    }
    len
}

/// Encodes per-window summaries into a v3 wire frame. `config` and
/// `seed` are frame-wide (they are topology-wide in practice); every
/// window's summaries must carry the same pair.
///
/// # Examples
///
/// ```
/// use approxiot_core::{SketchConfig, StratumId, StratumSummaries};
/// use approxiot_mq::codec::{decode_summaries, encode_summaries};
///
/// let config = SketchConfig::default();
/// let mut summaries = StratumSummaries::new(config, 42);
/// summaries.observe(StratumId::new(0), 1, 2.5);
/// let frame = encode_summaries(config, 42, &[(0, summaries.clone())]);
/// assert_eq!(decode_summaries(&frame)?, vec![(0, summaries)]);
/// # Ok::<(), approxiot_mq::MqError>(())
/// ```
pub fn encode_summaries(
    config: SketchConfig,
    seed: u64,
    windows: &[(u64, StratumSummaries)],
) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len_summaries(windows));
    encode_summaries_into(config, seed, windows, &mut buf);
    buf.freeze()
}

/// Encodes per-window summaries into a caller-owned buffer, replacing
/// its contents — the steady-state entry point, zero allocations per
/// frame once the buffer has warmed up.
pub fn encode_summaries_into(
    config: SketchConfig,
    seed: u64,
    windows: &[(u64, StratumSummaries)],
    buf: &mut BytesMut,
) {
    buf.clear();
    buf.reserve(encoded_len_summaries(windows));
    buf.put_u16_le(MAGIC);
    buf.put_u8(VERSION_SUMMARY);
    buf.put_u32_le(config.kll_k);
    buf.put_u32_le(config.heavy_capacity);
    buf.put_u64_le(seed);
    buf.put_u32_le(windows.len() as u32);
    for (window, summaries) in windows {
        debug_assert_eq!(summaries.config(), config, "config is frame-wide");
        debug_assert_eq!(summaries.seed(), seed, "seed is frame-wide");
        buf.put_u64_le(*window);
        buf.put_u32_le(summaries.strata().len() as u32);
        for (stratum, section) in summaries.strata() {
            buf.put_u32_le(summary_section_len(section) as u32);
            buf.put_u32_le(stratum.index());
            buf.put_u64_le(section.moments.count);
            buf.put_f64_le(section.moments.sum);
            buf.put_f64_le(section.moments.sum_sq);
            buf.put_u32_le(section.sketch.level());
            buf.put_u64_le(section.sketch.observed());
            buf.put_u32_le(section.sketch.len() as u32);
            for &(hash, value) in section.sketch.entries() {
                buf.put_u64_le(hash);
                buf.put_f64_le(value);
            }
        }
        buf.put_u32_le(summaries.heavy().entries().len() as u32);
        for (stratum, entry) in summaries.heavy().entries() {
            buf.put_u32_le(stratum.index());
            buf.put_f64_le(entry.weight);
            buf.put_f64_le(entry.err);
        }
    }
}

/// Decodes a v3 wire frame back into its per-window summaries.
///
/// # Errors
///
/// Returns [`MqError::Codec`] on a bad magic number, wrong or
/// unsupported version, or truncated/corrupted frame.
pub fn decode_summaries(frame: &[u8]) -> Result<Vec<(u64, StratumSummaries)>, MqError> {
    let mut windows = Vec::new();
    decode_summaries_into(frame, &mut windows)?;
    Ok(windows)
}

/// Decodes a v3 wire frame into a caller-owned vector, replacing its
/// contents. On error the vector is left cleared — never partially
/// decoded.
///
/// A **v1** or **v2** item frame is rejected with a named error; use
/// [`frame_version`] to sniff when item and summary frames may both
/// arrive on one channel.
///
/// # Errors
///
/// Returns [`MqError::Codec`] on a bad magic number, wrong or
/// unsupported version, truncated/corrupted frame, non-finite summary
/// statistics or trailing bytes; never panics, whatever the input bytes.
pub fn decode_summaries_into(
    frame: &[u8],
    out: &mut Vec<(u64, StratumSummaries)>,
) -> Result<(), MqError> {
    let result = decode_summaries_inner(frame, out);
    if result.is_err() {
        out.clear();
    }
    result
}

fn decode_summaries_inner(
    frame: &[u8],
    out: &mut Vec<(u64, StratumSummaries)>,
) -> Result<(), MqError> {
    out.clear();
    let mut buf = frame;
    if buf.remaining() < HEADER {
        return Err(MqError::Codec("frame shorter than header".into()));
    }
    let magic = buf.get_u16_le();
    if magic != MAGIC {
        return Err(MqError::Codec(format!("bad magic 0x{magic:04X}")));
    }
    let version = buf.get_u8();
    if version == VERSION {
        return Err(MqError::Codec(
            "AoS v1 frame in the summary decoder (use decode_batch or decode_batch_any)".into(),
        ));
    }
    if version == VERSION_COLUMNAR {
        return Err(MqError::Codec(
            "columnar v2 frame in the summary decoder (use decode_columns or decode_batch_any)"
                .into(),
        ));
    }
    if version != VERSION_SUMMARY {
        return Err(MqError::Codec(format!("unsupported version {version}")));
    }
    if buf.remaining() < SUMMARY_FIXED {
        return Err(MqError::Codec("truncated summary header".into()));
    }
    let kll_k = buf.get_u32_le();
    let heavy_capacity = buf.get_u32_le();
    let config = SketchConfig::new(kll_k, heavy_capacity);
    let seed = buf.get_u64_le();
    let window_count = buf.get_u32_le() as usize;
    for _ in 0..window_count {
        if buf.remaining() < 8 + 4 {
            return Err(MqError::Codec("truncated window header".into()));
        }
        let window = buf.get_u64_le();
        let strata_count = buf.get_u32_le() as usize;
        let mut strata = Vec::new();
        for _ in 0..strata_count {
            if buf.remaining() < 4 {
                return Err(MqError::Codec("truncated section length".into()));
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(MqError::Codec("truncated stratum section".into()));
            }
            let (mut section, tail) = buf.split_at(len);
            buf = tail;
            if section.remaining() < SECTION_FIXED {
                return Err(MqError::Codec(
                    "stratum section shorter than its fixed part".into(),
                ));
            }
            let stratum = StratumId::new(section.get_u32_le());
            let count = section.get_u64_le();
            let sum = section.get_f64_le();
            let sum_sq = section.get_f64_le();
            if !sum.is_finite() || !sum_sq.is_finite() {
                return Err(MqError::Codec(format!("non-finite moments for {stratum}")));
            }
            let level = section.get_u32_le();
            let observed = section.get_u64_le();
            let entry_count = section.get_u32_le() as usize;
            let nbytes = entry_count
                .checked_mul(SKETCH_ENTRY)
                .ok_or_else(|| MqError::Codec("sketch entry count overflows".into()))?;
            if section.remaining() != nbytes {
                return Err(MqError::Codec(format!(
                    "stratum section length mismatch: {} bytes for {entry_count} sketch entries",
                    section.remaining()
                )));
            }
            let mut entries = Vec::with_capacity(entry_count);
            for _ in 0..entry_count {
                let hash = section.get_u64_le();
                let value = section.get_f64_le();
                entries.push((hash, value));
            }
            strata.push((
                stratum,
                StratumSummary {
                    moments: Moments { count, sum, sum_sq },
                    sketch: KllSketch::from_parts(
                        kll_k,
                        stratum_sketch_seed(seed, stratum),
                        level,
                        observed,
                        entries,
                    ),
                },
            ));
        }
        if buf.remaining() < 4 {
            return Err(MqError::Codec("truncated heavy count".into()));
        }
        let heavy_count = buf.get_u32_le() as usize;
        let nbytes = heavy_count
            .checked_mul(HEAVY_ENTRY)
            .ok_or_else(|| MqError::Codec("heavy entry count overflows".into()))?;
        if buf.remaining() < nbytes {
            return Err(MqError::Codec("truncated heavy entries".into()));
        }
        let mut heavy = Vec::with_capacity(heavy_count);
        for _ in 0..heavy_count {
            let stratum = StratumId::new(buf.get_u32_le());
            let weight = buf.get_f64_le();
            let err = buf.get_f64_le();
            // Reject counters the query path could not build estimates
            // from (Estimate::new refuses NaN values and variances).
            // Negative values are legitimate: a stratum of negative item
            // values carries a negative mass and floor.
            if !weight.is_finite() || !err.is_finite() {
                return Err(MqError::Codec(format!(
                    "invalid heavy counter ({weight}, {err}) for {stratum}"
                )));
            }
            heavy.push((stratum, HeavyEntry { weight, err }));
        }
        out.push((
            window,
            StratumSummaries::from_parts(
                config,
                seed,
                strata,
                SpaceSaving::from_parts(heavy_capacity, heavy),
            ),
        ));
    }
    if buf.remaining() != 0 {
        return Err(MqError::Codec(format!(
            "{} trailing bytes",
            buf.remaining()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_core::WeightMap;

    fn sample_batch() -> Batch {
        let mut weights = WeightMap::new();
        weights.set(StratumId::new(0), 1.5);
        weights.set(StratumId::new(3), 12.25);
        Batch::with_weights(
            weights,
            vec![
                StreamItem::with_meta(StratumId::new(0), 1.0, 1, 10),
                StreamItem::with_meta(StratumId::new(3), -2.5, 2, 20),
                StreamItem::with_meta(StratumId::new(0), 1e9, 3, 30),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_batch() {
        let batch = sample_batch();
        let frame = encode_batch(&batch);
        assert_eq!(frame.len(), encoded_len(&batch));
        let decoded = decode_batch(&frame).expect("decodes");
        assert_eq!(decoded, batch);
    }

    #[test]
    fn roundtrip_empty_batch() {
        let batch = Batch::new();
        let decoded = decode_batch(&encode_batch(&batch)).expect("decodes");
        assert_eq!(decoded, batch);
        assert_eq!(encoded_len(&batch), HEADER + 8);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut frame = encode_batch(&sample_batch()).to_vec();
        frame[0] ^= 0xFF;
        assert!(matches!(decode_batch(&frame), Err(MqError::Codec(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let mut frame = encode_batch(&sample_batch()).to_vec();
        frame[2] = 99;
        let err = decode_batch(&frame).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let frame = encode_batch(&sample_batch());
        for len in 0..frame.len() {
            assert!(
                decode_batch(&frame[..len]).is_err(),
                "truncated frame of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut frame = encode_batch(&sample_batch()).to_vec();
        frame.push(0);
        let err = decode_batch(&frame).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn rejects_invalid_weight() {
        // Hand-craft a frame with weight 0.5 (< 1).
        let mut buf = BytesMut::new();
        buf.put_u16_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u32_le(1);
        buf.put_u32_le(7);
        buf.put_f64_le(0.5);
        buf.put_u32_le(0);
        let err = decode_batch(&buf).unwrap_err();
        assert!(err.to_string().contains("invalid weight"));
    }

    #[test]
    fn encode_into_reuses_buffer_without_growth() {
        let batch = sample_batch();
        let mut buf = BytesMut::new();
        encode_batch_into(&batch, &mut buf);
        assert_eq!(
            &buf[..],
            &encode_batch(&batch)[..],
            "same bytes as one-shot"
        );
        let warm = buf.capacity();
        for _ in 0..100 {
            encode_batch_into(&batch, &mut buf);
        }
        assert_eq!(buf.capacity(), warm, "steady state: no per-frame growth");
        assert_eq!(buf.len(), encoded_len(&batch));
    }

    #[test]
    fn decode_into_refills_recycled_batch_without_growth() {
        let batch = sample_batch();
        let frame = encode_batch(&batch);
        let mut recycled = Batch::new();
        decode_batch_into(&frame, &mut recycled).expect("decodes");
        assert_eq!(recycled, batch);
        let warm = recycled.items.capacity();
        for _ in 0..100 {
            decode_batch_into(&frame, &mut recycled).expect("decodes");
        }
        assert_eq!(recycled, batch);
        assert_eq!(recycled.items.capacity(), warm, "item storage reused");
    }

    #[test]
    fn decode_into_clears_stale_contents_on_error() {
        let mut stale = sample_batch();
        let err = decode_batch_into(&[0xFF, 0xFF, 1], &mut stale).unwrap_err();
        assert!(matches!(err, MqError::Codec(_)));
        assert!(stale.is_empty(), "failed decode must not leave stale items");
        assert!(stale.weights.is_empty());
    }

    #[test]
    fn encoded_len_is_linear_in_items() {
        let one = Batch::from_items(vec![StreamItem::new(StratumId::new(0), 0.0)]);
        let two = Batch::from_items(vec![
            StreamItem::new(StratumId::new(0), 0.0),
            StreamItem::new(StratumId::new(0), 0.0),
        ]);
        assert_eq!(encoded_len(&two) - encoded_len(&one), ITEM_ENTRY);
    }

    #[test]
    fn v2_roundtrip_preserves_columns() {
        let cols = ColumnarBatch::from_batch(&sample_batch());
        let frame = encode_columns(&cols);
        assert_eq!(frame.len(), encoded_len_columns(&cols));
        assert_eq!(frame[2], VERSION_COLUMNAR);
        let decoded = decode_columns(&frame).expect("decodes");
        assert_eq!(decoded, cols);
    }

    #[test]
    fn v2_roundtrip_empty_batch() {
        let cols = ColumnarBatch::new();
        let decoded = decode_columns(&encode_columns(&cols)).expect("decodes");
        assert_eq!(decoded, cols);
        assert_eq!(encoded_len_columns(&cols), HEADER + 4 + 16);
    }

    #[test]
    fn encode_batch_v2_matches_columnar_encode() {
        let batch = sample_batch();
        let mut from_aos = BytesMut::new();
        encode_batch_v2_into(&batch, &mut from_aos);
        let from_cols = encode_columns(&ColumnarBatch::from_batch(&batch));
        assert_eq!(&from_aos[..], &from_cols[..], "byte-identical encodings");
        assert_eq!(from_aos.len(), encoded_len_v2(&batch));
    }

    #[test]
    fn v1_decoder_rejects_v2_frame_with_named_error() {
        let frame = encode_columns(&ColumnarBatch::from_batch(&sample_batch()));
        let err = decode_batch(&frame).unwrap_err();
        assert!(
            err.to_string().contains("columnar v2 frame"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn v2_decoder_rejects_v1_frame_with_named_error() {
        let frame = encode_batch(&sample_batch());
        let err = decode_columns(&frame).unwrap_err();
        assert!(
            err.to_string().contains("AoS v1 frame"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn v2_rejects_truncation_at_every_length() {
        let frame = encode_columns(&ColumnarBatch::from_batch(&sample_batch()));
        for len in 0..frame.len() {
            assert!(
                decode_columns(&frame[..len]).is_err(),
                "truncated frame of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn v2_rejects_trailing_bytes() {
        let mut frame = encode_columns(&ColumnarBatch::from_batch(&sample_batch())).to_vec();
        frame.push(0);
        let err = decode_columns(&frame).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn v2_rejects_column_length_mismatch() {
        // Hand-craft a frame whose values column is one element short.
        let mut buf = BytesMut::new();
        buf.put_u16_le(MAGIC);
        buf.put_u8(VERSION_COLUMNAR);
        buf.put_u32_le(0); // no weights
        buf.put_u32_le(2); // strata: 2 elements
        buf.put_u32_le(0);
        buf.put_u32_le(1);
        buf.put_u32_le(1); // values: 1 element
        buf.put_f64_le(4.5);
        buf.put_u32_le(2); // seqs
        buf.put_u64_le(1);
        buf.put_u64_le(2);
        buf.put_u32_le(2); // source_ts
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        let err = decode_columns(&buf).unwrap_err();
        assert!(err.to_string().contains("column length mismatch"));
    }

    #[test]
    fn v2_rejects_invalid_weight() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(MAGIC);
        buf.put_u8(VERSION_COLUMNAR);
        buf.put_u32_le(1);
        buf.put_u32_le(7);
        buf.put_f64_le(0.5);
        for _ in 0..4 {
            buf.put_u32_le(0); // four empty columns
        }
        let err = decode_columns(&buf).unwrap_err();
        assert!(err.to_string().contains("invalid weight"));
    }

    #[test]
    fn v2_decode_into_clears_stale_contents_on_error() {
        let mut stale = ColumnarBatch::from_batch(&sample_batch());
        let err = decode_columns_into(&[0xFF, 0xFF, 2], &mut stale).unwrap_err();
        assert!(matches!(err, MqError::Codec(_)));
        assert!(stale.is_empty(), "failed decode must not leave stale items");
        assert!(stale.weights.is_empty());
    }

    #[test]
    fn v2_decode_into_refills_recycled_columns_without_growth() {
        let cols = ColumnarBatch::from_batch(&sample_batch());
        let frame = encode_columns(&cols);
        let mut recycled = ColumnarBatch::new();
        decode_columns_into(&frame, &mut recycled).expect("decodes");
        assert_eq!(recycled, cols);
        let warm = recycled.values.capacity();
        for _ in 0..100 {
            decode_columns_into(&frame, &mut recycled).expect("decodes");
        }
        assert_eq!(recycled, cols);
        assert_eq!(recycled.values.capacity(), warm, "column storage reused");
    }

    #[test]
    fn frame_version_sniffs_both_versions() {
        let batch = sample_batch();
        assert_eq!(frame_version(&encode_batch(&batch)).expect("v1"), VERSION);
        let cols = ColumnarBatch::from_batch(&batch);
        assert_eq!(
            frame_version(&encode_columns(&cols)).expect("v2"),
            VERSION_COLUMNAR
        );
        assert!(frame_version(&[0xA1]).is_err());
        assert!(frame_version(&[0x00, 0x00, 1]).is_err());
    }

    #[test]
    fn decode_any_accepts_both_versions() {
        let batch = sample_batch();
        let mut out = Batch::new();
        decode_batch_any_into(&encode_batch(&batch), &mut out).expect("v1 decodes");
        assert_eq!(out, batch);
        let mut buf = BytesMut::new();
        encode_batch_v2_into(&batch, &mut buf);
        decode_batch_any_into(&buf, &mut out).expect("v2 decodes");
        assert_eq!(out, batch, "v2 round-trips through the any-decoder");
        let err = decode_batch_any_into(&[0xA1], &mut out).unwrap_err();
        assert!(err.to_string().contains("shorter than header"));
        assert!(out.is_empty(), "failed decode leaves the batch cleared");
    }

    #[test]
    fn v2_costs_twelve_extra_bytes_over_v1() {
        let batch = sample_batch();
        assert_eq!(encoded_len_v2(&batch), encoded_len(&batch) + 12);
        assert_eq!(
            encoded_len_columns(&ColumnarBatch::from_batch(&batch)),
            encoded_len_v2(&batch)
        );
    }

    const SAMPLE_CONFIG: SketchConfig = SketchConfig::new(16, 4);
    const SAMPLE_SEED: u64 = 0xFEED;

    fn sample_summaries() -> Vec<(u64, StratumSummaries)> {
        let mut w0 = StratumSummaries::new(SAMPLE_CONFIG, SAMPLE_SEED);
        for i in 0..120u64 {
            w0.observe(StratumId::new((i % 3) as u32), i, (i % 17) as f64);
        }
        let mut w1 = StratumSummaries::new(SAMPLE_CONFIG, SAMPLE_SEED);
        for i in 0..40u64 {
            w1.observe(StratumId::new(7), 1000 + i, -1.5 * i as f64);
        }
        vec![(0, w0), (3, w1)]
    }

    #[test]
    fn v3_roundtrip_preserves_summaries() {
        let windows = sample_summaries();
        let frame = encode_summaries(SAMPLE_CONFIG, SAMPLE_SEED, &windows);
        assert_eq!(frame.len(), encoded_len_summaries(&windows));
        assert_eq!(frame[2], VERSION_SUMMARY);
        assert_eq!(decode_summaries(&frame).expect("decodes"), windows);
    }

    #[test]
    fn v3_roundtrip_empty_frame() {
        let frame = encode_summaries(SAMPLE_CONFIG, SAMPLE_SEED, &[]);
        assert_eq!(frame.len(), HEADER + SUMMARY_FIXED);
        assert_eq!(decode_summaries(&frame).expect("decodes"), vec![]);
    }

    #[test]
    fn v3_roundtrip_counts_only_config() {
        let config = SketchConfig::counts_only();
        let mut summaries = StratumSummaries::new(config, 1);
        for i in 0..50u64 {
            summaries.observe(StratumId::new(0), i, 2.0);
        }
        let windows = vec![(9, summaries)];
        let frame = encode_summaries(config, 1, &windows);
        let decoded = decode_summaries(&frame).expect("decodes");
        assert_eq!(decoded, windows);
        assert_eq!(decoded[0].1.count(), 50);
    }

    #[test]
    fn v3_rejects_truncation_at_every_length() {
        let frame = encode_summaries(SAMPLE_CONFIG, SAMPLE_SEED, &sample_summaries());
        for len in 0..frame.len() {
            assert!(
                decode_summaries(&frame[..len]).is_err(),
                "truncated frame of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn v3_rejects_trailing_bytes() {
        let mut frame = encode_summaries(SAMPLE_CONFIG, SAMPLE_SEED, &sample_summaries()).to_vec();
        frame.push(0);
        let err = decode_summaries(&frame).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn v3_rejects_invalid_heavy_counter() {
        // Hand-craft a frame with a NaN heavy weight: one window, no
        // strata, one heavy entry.
        let mut buf = BytesMut::new();
        buf.put_u16_le(MAGIC);
        buf.put_u8(VERSION_SUMMARY);
        buf.put_u32_le(16);
        buf.put_u32_le(4);
        buf.put_u64_le(0);
        buf.put_u32_le(1); // one window
        buf.put_u64_le(0); // window index
        buf.put_u32_le(0); // no strata
        buf.put_u32_le(1); // one heavy entry
        buf.put_u32_le(5);
        buf.put_f64_le(f64::NAN);
        buf.put_f64_le(0.0);
        let err = decode_summaries(&buf).unwrap_err();
        assert!(err.to_string().contains("invalid heavy counter"));
    }

    #[test]
    fn v3_rejects_section_length_mismatch() {
        // A section that claims more sketch entries than its length holds.
        let mut frame = encode_summaries(SAMPLE_CONFIG, SAMPLE_SEED, &sample_summaries()).to_vec();
        // The first section's sketch entry count sits after the length
        // prefix (4) + stratum (4) + moments (24) + level (4) + observed
        // (8); window header starts after HEADER + SUMMARY_FIXED.
        let entry_count_at = HEADER + SUMMARY_FIXED + 8 + 4 + 4 + 4 + 24 + 4 + 8;
        frame[entry_count_at] = frame[entry_count_at].wrapping_add(1);
        let err = decode_summaries(&frame).unwrap_err();
        assert!(
            err.to_string().contains("section length mismatch"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn v3_decoder_rejects_v1_and_v2_frames_with_named_errors() {
        let err = decode_summaries(&encode_batch(&sample_batch())).unwrap_err();
        assert!(
            err.to_string().contains("AoS v1 frame"),
            "unexpected error: {err}"
        );
        let frame = encode_columns(&ColumnarBatch::from_batch(&sample_batch()));
        let err = decode_summaries(&frame).unwrap_err();
        assert!(
            err.to_string().contains("columnar v2 frame"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn item_decoders_reject_v3_frame_with_named_errors() {
        let frame = encode_summaries(SAMPLE_CONFIG, SAMPLE_SEED, &sample_summaries());
        let err = decode_batch(&frame).unwrap_err();
        assert!(
            err.to_string().contains("summary v3 frame"),
            "unexpected error: {err}"
        );
        let err = decode_columns(&frame).unwrap_err();
        assert!(
            err.to_string().contains("summary v3 frame"),
            "unexpected error: {err}"
        );
        let mut out = Batch::new();
        let err = decode_batch_any_into(&frame, &mut out).unwrap_err();
        assert!(
            err.to_string().contains("summary v3 frame"),
            "unexpected error: {err}"
        );
        assert!(out.is_empty(), "failed decode leaves the batch cleared");
    }

    #[test]
    fn v3_decode_into_clears_stale_contents_on_error() {
        let mut stale = sample_summaries();
        let err = decode_summaries_into(&[0xFF, 0xFF, 3], &mut stale).unwrap_err();
        assert!(matches!(err, MqError::Codec(_)));
        assert!(
            stale.is_empty(),
            "failed decode must not leave stale windows"
        );
    }

    #[test]
    fn frame_version_sniffs_v3() {
        let frame = encode_summaries(SAMPLE_CONFIG, SAMPLE_SEED, &sample_summaries());
        assert_eq!(frame_version(&frame).expect("v3"), VERSION_SUMMARY);
    }

    #[test]
    fn v3_size_is_independent_of_item_count() {
        let mut small = StratumSummaries::new(SAMPLE_CONFIG, SAMPLE_SEED);
        let mut large = StratumSummaries::new(SAMPLE_CONFIG, SAMPLE_SEED);
        for i in 0..200u64 {
            small.observe(StratumId::new((i % 3) as u32), i, (i % 13) as f64);
        }
        for i in 0..20_000u64 {
            large.observe(StratumId::new((i % 3) as u32), i, (i % 13) as f64);
        }
        let small_len = encoded_len_summaries(&[(0, small)]);
        let large_len = encoded_len_summaries(&[(0, large)]);
        // The frame is bounded by strata count and configured capacities
        // alone: 100× the items cannot push it past the cap.
        let cap = HEADER
            + SUMMARY_FIXED
            + WINDOW_FIXED
            + 3 * (4 + SECTION_FIXED + 16 * SKETCH_ENTRY)
            + 4 * HEAVY_ENTRY;
        assert!(small_len <= cap, "{small_len} > {cap}");
        assert!(large_len <= cap, "{large_len} > {cap}");
    }
}
