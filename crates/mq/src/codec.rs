//! Wire format for batches travelling between edge layers.
//!
//! The paper's prototype serialises sampled sub-streams plus their weight
//! metadata into Kafka topics. We do the same with a compact little-endian
//! binary frame, so the network layer can meter *real* bytes on the wire
//! for the bandwidth-saving experiment (Figure 7).
//!
//! Two frame versions share the magic number and the weights section
//! (all integers little-endian):
//!
//! **v1 — array-of-structs** (the original layout, still decodable):
//!
//! ```text
//! magic     u16  = 0xA107
//! version   u8   = 1
//! weights   u32  count, then per entry: stratum u32, weight f64
//! items     u32  count, then per entry: stratum u32, value f64,
//!                                        seq u64, source_ts u64
//! ```
//!
//! **v2 — columnar**: the body is four length-prefixed column runs, one
//! per [`approxiot_core::ColumnarBatch`] column, in declaration order:
//!
//! ```text
//! magic     u16  = 0xA107
//! version   u8   = 2
//! weights   u32  count, then per entry: stratum u32, weight f64
//! strata    u32  count n, then n × u32
//! values    u32  count n, then n × f64
//! seqs      u32  count n, then n × u64
//! source_ts u32  count n, then n × u64
//! ```
//!
//! All four counts must agree. Because each run is contiguous and
//! little-endian, encode and decode on little-endian hosts are a handful
//! of bulk `extend_from_slice`/`copy_from_slice` calls per frame instead
//! of 28 bytes of per-item field writes (big-endian hosts fall back to
//! per-element conversion). v2 costs 12 extra bytes per frame over v1 for
//! the same items; the codecs reject each other's frames with named
//! errors, and [`decode_batch_any_into`] dispatches on the version byte
//! when either may arrive.

use crate::error::MqError;
use approxiot_core::{Batch, ColumnarBatch, StratumId, StreamItem, WeightMap};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u16 = 0xA107;
const VERSION: u8 = 1;
const VERSION_COLUMNAR: u8 = 2;

/// Bytes per encoded weight entry.
const WEIGHT_ENTRY: usize = 4 + 8;
/// Bytes per encoded item.
const ITEM_ENTRY: usize = 4 + 8 + 8 + 8;
/// Fixed header size.
const HEADER: usize = 2 + 1;

/// Returns the exact encoded size of a batch, without encoding it.
pub fn encoded_len(batch: &Batch) -> usize {
    HEADER + 4 + batch.weights.len() * WEIGHT_ENTRY + 4 + batch.items.len() * ITEM_ENTRY
}

/// Encodes a batch into a wire frame.
///
/// # Examples
///
/// ```
/// use approxiot_core::{Batch, StratumId, StreamItem};
/// use approxiot_mq::codec::{decode_batch, encode_batch};
///
/// let batch = Batch::from_items(vec![StreamItem::new(StratumId::new(0), 1.5)]);
/// let frame = encode_batch(&batch);
/// let decoded = decode_batch(&frame)?;
/// assert_eq!(decoded, batch);
/// # Ok::<(), approxiot_mq::MqError>(())
/// ```
pub fn encode_batch(batch: &Batch) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(batch));
    encode_batch_into(batch, &mut buf);
    buf.freeze()
}

/// Encodes a batch into a caller-owned buffer, replacing its contents.
///
/// This is the steady-state entry point: the buffer is cleared (keeping
/// its allocation) and exact room is reserved up front, so a loop that
/// encodes same-sized batches through one reused `BytesMut` performs
/// **zero allocations per frame** after the first. [`encode_batch`] is a
/// thin wrapper for one-shot callers.
pub fn encode_batch_into(batch: &Batch, buf: &mut BytesMut) {
    buf.clear();
    buf.reserve(encoded_len(batch));
    buf.put_u16_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(batch.weights.len() as u32);
    for (stratum, weight) in batch.weights.iter() {
        buf.put_u32_le(stratum.index());
        buf.put_f64_le(weight);
    }
    buf.put_u32_le(batch.items.len() as u32);
    for item in &batch.items {
        buf.put_u32_le(item.stratum.index());
        buf.put_f64_le(item.value);
        buf.put_u64_le(item.seq);
        buf.put_u64_le(item.source_ts);
    }
}

/// Decodes a wire frame back into a batch.
///
/// # Errors
///
/// Returns [`MqError::Codec`] on a bad magic number, unsupported version or
/// truncated frame.
pub fn decode_batch(frame: &[u8]) -> Result<Batch, MqError> {
    let mut batch = Batch::new();
    decode_batch_into(frame, &mut batch)?;
    Ok(batch)
}

/// Decodes a wire frame into a caller-owned (typically recycled) batch,
/// replacing its contents.
///
/// The batch is cleared first, keeping its item storage, so a loop that
/// decodes frames into batches drawn from an
/// [`approxiot_core::BatchPool`] allocates nothing per frame once the
/// pooled capacities have warmed up. On error the batch is left cleared —
/// never partially decoded.
///
/// # Errors
///
/// Returns [`MqError::Codec`] on a bad magic number, unsupported version,
/// truncated/corrupted frame or trailing bytes; never panics, whatever
/// the input bytes.
pub fn decode_batch_into(frame: &[u8], batch: &mut Batch) -> Result<(), MqError> {
    batch.clear();
    let mut buf = frame;
    if buf.remaining() < HEADER {
        return Err(MqError::Codec("frame shorter than header".into()));
    }
    let magic = buf.get_u16_le();
    if magic != MAGIC {
        return Err(MqError::Codec(format!("bad magic 0x{magic:04X}")));
    }
    let version = buf.get_u8();
    if version == VERSION_COLUMNAR {
        return Err(MqError::Codec(
            "columnar v2 frame in the v1 item decoder (use decode_columns or decode_batch_any)"
                .into(),
        ));
    }
    if version != VERSION {
        return Err(MqError::Codec(format!("unsupported version {version}")));
    }
    if let Err(err) = decode_weights(&mut buf, &mut batch.weights) {
        batch.weights.clear();
        return Err(err);
    }
    if buf.remaining() < 4 {
        batch.weights.clear();
        return Err(MqError::Codec("truncated item count".into()));
    }
    let item_count = buf.get_u32_le() as usize;
    if buf.remaining() != item_count * ITEM_ENTRY {
        let failure = if buf.remaining() < item_count * ITEM_ENTRY {
            "truncated item entries".to_string()
        } else {
            format!(
                "{} trailing bytes",
                buf.remaining() - item_count * ITEM_ENTRY
            )
        };
        batch.weights.clear();
        return Err(MqError::Codec(failure));
    }
    batch.items.reserve(item_count);
    for _ in 0..item_count {
        let stratum = StratumId::new(buf.get_u32_le());
        let value = buf.get_f64_le();
        let seq = buf.get_u64_le();
        let source_ts = buf.get_u64_le();
        batch
            .items
            .push(StreamItem::with_meta(stratum, value, seq, source_ts));
    }
    Ok(())
}

/// Decodes the shared weights section (count + entries), validating each
/// weight like v1 always has.
fn decode_weights(buf: &mut &[u8], weights: &mut WeightMap) -> Result<(), MqError> {
    if buf.remaining() < 4 {
        return Err(MqError::Codec("truncated weight count".into()));
    }
    let weight_count = buf.get_u32_le() as usize;
    if buf.remaining() < weight_count * WEIGHT_ENTRY {
        return Err(MqError::Codec("truncated weight entries".into()));
    }
    for _ in 0..weight_count {
        let stratum = StratumId::new(buf.get_u32_le());
        let weight = buf.get_f64_le();
        if !weight.is_finite() || weight < 1.0 - 1e-9 {
            return Err(MqError::Codec(format!(
                "invalid weight {weight} for {stratum}"
            )));
        }
        weights.set(stratum, weight);
    }
    Ok(())
}

/// A column element type the v2 codec moves in bulk. All three
/// implementors (`u32`, `u64`, `f64`) are plain-old-data with every bit
/// pattern valid, which is what makes the byte-view casts in the
/// little-endian fast paths sound.
trait ColumnElem: Copy {
    /// Encoded bytes per element.
    const SIZE: usize;
    #[cfg(not(target_endian = "little"))]
    fn put_le(buf: &mut BytesMut, v: Self);
    /// Reads one element from a little-endian byte run (big-endian hosts
    /// and the strided v2 → `Batch` path).
    fn read_le(bytes: &[u8]) -> Self;
}

impl ColumnElem for u32 {
    const SIZE: usize = 4;
    #[cfg(not(target_endian = "little"))]
    fn put_le(buf: &mut BytesMut, v: Self) {
        buf.put_u32_le(v);
    }
    fn read_le(bytes: &[u8]) -> Self {
        // analysis: allow(P1, reason = "slice is exactly SIZE bytes; the [..N] index above already checks it")
        u32::from_le_bytes(bytes[..4].try_into().expect("length checked"))
    }
}

impl ColumnElem for u64 {
    const SIZE: usize = 8;
    #[cfg(not(target_endian = "little"))]
    fn put_le(buf: &mut BytesMut, v: Self) {
        buf.put_u64_le(v);
    }
    fn read_le(bytes: &[u8]) -> Self {
        // analysis: allow(P1, reason = "slice is exactly SIZE bytes; the [..N] index above already checks it")
        u64::from_le_bytes(bytes[..8].try_into().expect("length checked"))
    }
}

impl ColumnElem for f64 {
    const SIZE: usize = 8;
    #[cfg(not(target_endian = "little"))]
    fn put_le(buf: &mut BytesMut, v: Self) {
        buf.put_f64_le(v);
    }
    fn read_le(bytes: &[u8]) -> Self {
        // analysis: allow(P1, reason = "slice is exactly SIZE bytes; the [..N] index above already checks it")
        f64::from_le_bytes(bytes[..8].try_into().expect("length checked"))
    }
}

/// Appends one length-prefixed column run: `u32` element count, then the
/// raw little-endian elements — a single `extend_from_slice` on
/// little-endian hosts.
fn put_column<T: ColumnElem>(buf: &mut BytesMut, col: &[T]) {
    buf.put_u32_le(col.len() as u32);
    #[cfg(target_endian = "little")]
    {
        // SAFETY: `T: ColumnElem` is plain-old-data without padding, so
        // viewing the slice as bytes is sound, and on a little-endian
        // host the in-memory bytes are exactly the wire encoding.
        let bytes = unsafe {
            std::slice::from_raw_parts(col.as_ptr().cast::<u8>(), std::mem::size_of_val(col))
        };
        buf.put_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    for &v in col {
        T::put_le(buf, v);
    }
}

/// Takes one length-prefixed column run off the front of `buf`, returning
/// its raw byte region and element count after bounds checks.
fn take_column_bytes<'a>(
    buf: &mut &'a [u8],
    elem_size: usize,
    name: &str,
) -> Result<(&'a [u8], usize), MqError> {
    if buf.remaining() < 4 {
        return Err(MqError::Codec(format!("truncated {name} column count")));
    }
    let n = buf.get_u32_le() as usize;
    let nbytes = n
        .checked_mul(elem_size)
        .ok_or_else(|| MqError::Codec(format!("{name} column count overflows")))?;
    if buf.remaining() < nbytes {
        return Err(MqError::Codec(format!("truncated {name} column")));
    }
    let (bytes, tail) = buf.split_at(nbytes);
    *buf = tail;
    Ok((bytes, n))
}

/// Refills `out` from a column's little-endian byte run — one bulk
/// `copy_nonoverlapping` on little-endian hosts, per-element conversion
/// otherwise.
fn fill_column<T: ColumnElem>(out: &mut Vec<T>, bytes: &[u8], n: usize) {
    out.clear();
    out.reserve(n);
    #[cfg(target_endian = "little")]
    // SAFETY: `T` is plain-old-data admitting every bit pattern, `bytes`
    // holds exactly `n * T::SIZE` bytes (checked by the caller through
    // `take_column_bytes`), and `reserve` guaranteed capacity for `n`
    // elements before `set_len`.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(n);
    }
    #[cfg(not(target_endian = "little"))]
    for i in 0..n {
        out.push(T::read_le(&bytes[i * T::SIZE..]));
    }
}

/// Returns the exact encoded size of a columnar batch as a v2 frame,
/// without encoding it.
pub fn encoded_len_columns(batch: &ColumnarBatch) -> usize {
    HEADER + 4 + batch.weights.len() * WEIGHT_ENTRY + 4 * 4 + batch.len() * ITEM_ENTRY
}

/// Returns the exact encoded size of an AoS batch as a v2 columnar frame
/// (see [`encode_batch_v2_into`]).
pub fn encoded_len_v2(batch: &Batch) -> usize {
    HEADER + 4 + batch.weights.len() * WEIGHT_ENTRY + 4 * 4 + batch.items.len() * ITEM_ENTRY
}

/// Encodes a columnar batch into a v2 wire frame.
///
/// # Examples
///
/// ```
/// use approxiot_core::{ColumnarBatch, StratumId, StreamItem};
/// use approxiot_mq::codec::{decode_columns, encode_columns};
///
/// let mut batch = ColumnarBatch::new();
/// batch.push(StreamItem::new(StratumId::new(0), 1.5));
/// let frame = encode_columns(&batch);
/// assert_eq!(decode_columns(&frame)?, batch);
/// # Ok::<(), approxiot_mq::MqError>(())
/// ```
pub fn encode_columns(batch: &ColumnarBatch) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len_columns(batch));
    encode_columns_into(batch, &mut buf);
    buf.freeze()
}

/// Encodes a columnar batch into a caller-owned buffer, replacing its
/// contents — the steady-state entry point, zero allocations per frame
/// once the buffer has warmed up. The body is four bulk column copies.
pub fn encode_columns_into(batch: &ColumnarBatch, buf: &mut BytesMut) {
    buf.clear();
    buf.reserve(encoded_len_columns(batch));
    buf.put_u16_le(MAGIC);
    buf.put_u8(VERSION_COLUMNAR);
    buf.put_u32_le(batch.weights.len() as u32);
    for (stratum, weight) in batch.weights.iter() {
        buf.put_u32_le(stratum.index());
        buf.put_f64_le(weight);
    }
    put_column(buf, &batch.strata);
    put_column(buf, &batch.values);
    put_column(buf, &batch.seqs);
    put_column(buf, &batch.source_ts);
}

/// Encodes an **AoS** batch into a v2 columnar frame — four strided
/// passes over the items instead of a transposing copy, for producers
/// (like the pipeline source) that hold a [`Batch`] but feed columnar
/// consumers. Byte-identical to converting to a [`ColumnarBatch`] first
/// and calling [`encode_columns_into`].
pub fn encode_batch_v2_into(batch: &Batch, buf: &mut BytesMut) {
    buf.clear();
    buf.reserve(encoded_len_v2(batch));
    buf.put_u16_le(MAGIC);
    buf.put_u8(VERSION_COLUMNAR);
    buf.put_u32_le(batch.weights.len() as u32);
    for (stratum, weight) in batch.weights.iter() {
        buf.put_u32_le(stratum.index());
        buf.put_f64_le(weight);
    }
    let n = batch.items.len() as u32;
    buf.put_u32_le(n);
    for item in &batch.items {
        buf.put_u32_le(item.stratum.index());
    }
    buf.put_u32_le(n);
    for item in &batch.items {
        buf.put_f64_le(item.value);
    }
    buf.put_u32_le(n);
    for item in &batch.items {
        buf.put_u64_le(item.seq);
    }
    buf.put_u32_le(n);
    for item in &batch.items {
        buf.put_u64_le(item.source_ts);
    }
}

/// Decodes a v2 wire frame into a columnar batch.
///
/// # Errors
///
/// Returns [`MqError::Codec`] on a bad magic number, wrong or unsupported
/// version, truncated/corrupted frame or trailing bytes.
pub fn decode_columns(frame: &[u8]) -> Result<ColumnarBatch, MqError> {
    let mut batch = ColumnarBatch::new();
    decode_columns_into(frame, &mut batch)?;
    Ok(batch)
}

/// Decodes a v2 wire frame into a caller-owned (typically recycled)
/// columnar batch, replacing its contents — the columnar twin of
/// [`decode_batch_into`], with each column landing as one bulk copy. On
/// error the batch is left cleared, never partially decoded.
///
/// A **v1** frame is rejected with a named error (`"AoS v1 frame in the
/// columnar decoder"`); use [`decode_batch_into`] or sniff with
/// [`frame_version`] when either version may arrive.
///
/// # Errors
///
/// Returns [`MqError::Codec`] on a bad magic number, wrong or unsupported
/// version, truncated/corrupted frame, column length mismatch or trailing
/// bytes; never panics, whatever the input bytes.
pub fn decode_columns_into(frame: &[u8], batch: &mut ColumnarBatch) -> Result<(), MqError> {
    let result = decode_columns_inner(frame, batch);
    if result.is_err() {
        batch.clear();
    }
    result
}

fn decode_columns_inner(frame: &[u8], batch: &mut ColumnarBatch) -> Result<(), MqError> {
    batch.clear();
    let mut buf = frame;
    if buf.remaining() < HEADER {
        return Err(MqError::Codec("frame shorter than header".into()));
    }
    let magic = buf.get_u16_le();
    if magic != MAGIC {
        return Err(MqError::Codec(format!("bad magic 0x{magic:04X}")));
    }
    let version = buf.get_u8();
    if version == VERSION {
        return Err(MqError::Codec(
            "AoS v1 frame in the columnar decoder (use decode_batch or decode_batch_any)".into(),
        ));
    }
    if version != VERSION_COLUMNAR {
        return Err(MqError::Codec(format!("unsupported version {version}")));
    }
    decode_weights(&mut buf, &mut batch.weights)?;
    let (strata, n) = take_column_bytes(&mut buf, u32::SIZE, "strata")?;
    let (values, n_values) = take_column_bytes(&mut buf, f64::SIZE, "values")?;
    let (seqs, n_seqs) = take_column_bytes(&mut buf, u64::SIZE, "seqs")?;
    let (source_ts, n_ts) = take_column_bytes(&mut buf, u64::SIZE, "source_ts")?;
    if n_values != n || n_seqs != n || n_ts != n {
        return Err(MqError::Codec(format!(
            "column length mismatch: strata {n}, values {n_values}, seqs {n_seqs}, source_ts {n_ts}"
        )));
    }
    if buf.remaining() != 0 {
        return Err(MqError::Codec(format!(
            "{} trailing bytes",
            buf.remaining()
        )));
    }
    fill_column(&mut batch.strata, strata, n);
    fill_column(&mut batch.values, values, n);
    fill_column(&mut batch.seqs, seqs, n);
    fill_column(&mut batch.source_ts, source_ts, n);
    Ok(())
}

/// Reads the version byte of a frame after checking the magic number —
/// for dispatch points that accept both frame versions.
///
/// # Errors
///
/// Returns [`MqError::Codec`] when the frame is shorter than a header or
/// carries the wrong magic (the version byte itself is not validated).
pub fn frame_version(frame: &[u8]) -> Result<u8, MqError> {
    if frame.len() < HEADER {
        return Err(MqError::Codec("frame shorter than header".into()));
    }
    let magic = u16::from_le_bytes([frame[0], frame[1]]);
    if magic != MAGIC {
        return Err(MqError::Codec(format!("bad magic 0x{magic:04X}")));
    }
    Ok(frame[2])
}

/// Decodes a frame of **either** version into an AoS batch: v1 frames go
/// through [`decode_batch_into`]; v2 frames are read column-run by
/// column-run with strided per-item reconstruction (no intermediate
/// columnar allocation). Used by aggregation points (the root) that may
/// receive both layouts.
///
/// # Errors
///
/// Returns [`MqError::Codec`] on a bad magic number, unsupported version
/// or corrupted frame; on error the batch is left cleared.
pub fn decode_batch_any_into(frame: &[u8], batch: &mut Batch) -> Result<(), MqError> {
    match frame_version(frame) {
        Ok(VERSION_COLUMNAR) => {
            let result = decode_v2_into_batch(frame, batch);
            if result.is_err() {
                batch.clear();
            }
            result
        }
        // v1, unknown versions, and header errors all get the v1
        // decoder's clearing behaviour and named errors.
        _ => decode_batch_into(frame, batch),
    }
}

fn decode_v2_into_batch(frame: &[u8], batch: &mut Batch) -> Result<(), MqError> {
    batch.clear();
    let mut buf = &frame[HEADER..]; // magic + version validated by the caller
    decode_weights(&mut buf, &mut batch.weights)?;
    let (strata, n) = take_column_bytes(&mut buf, u32::SIZE, "strata")?;
    let (values, n_values) = take_column_bytes(&mut buf, f64::SIZE, "values")?;
    let (seqs, n_seqs) = take_column_bytes(&mut buf, u64::SIZE, "seqs")?;
    let (source_ts, n_ts) = take_column_bytes(&mut buf, u64::SIZE, "source_ts")?;
    if n_values != n || n_seqs != n || n_ts != n {
        return Err(MqError::Codec(format!(
            "column length mismatch: strata {n}, values {n_values}, seqs {n_seqs}, source_ts {n_ts}"
        )));
    }
    if buf.remaining() != 0 {
        return Err(MqError::Codec(format!(
            "{} trailing bytes",
            buf.remaining()
        )));
    }
    batch.items.reserve(n);
    for i in 0..n {
        batch.items.push(StreamItem::with_meta(
            StratumId::new(u32::read_le(&strata[i * u32::SIZE..])),
            f64::read_le(&values[i * f64::SIZE..]),
            u64::read_le(&seqs[i * u64::SIZE..]),
            u64::read_le(&source_ts[i * u64::SIZE..]),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_core::WeightMap;

    fn sample_batch() -> Batch {
        let mut weights = WeightMap::new();
        weights.set(StratumId::new(0), 1.5);
        weights.set(StratumId::new(3), 12.25);
        Batch::with_weights(
            weights,
            vec![
                StreamItem::with_meta(StratumId::new(0), 1.0, 1, 10),
                StreamItem::with_meta(StratumId::new(3), -2.5, 2, 20),
                StreamItem::with_meta(StratumId::new(0), 1e9, 3, 30),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_batch() {
        let batch = sample_batch();
        let frame = encode_batch(&batch);
        assert_eq!(frame.len(), encoded_len(&batch));
        let decoded = decode_batch(&frame).expect("decodes");
        assert_eq!(decoded, batch);
    }

    #[test]
    fn roundtrip_empty_batch() {
        let batch = Batch::new();
        let decoded = decode_batch(&encode_batch(&batch)).expect("decodes");
        assert_eq!(decoded, batch);
        assert_eq!(encoded_len(&batch), HEADER + 8);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut frame = encode_batch(&sample_batch()).to_vec();
        frame[0] ^= 0xFF;
        assert!(matches!(decode_batch(&frame), Err(MqError::Codec(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let mut frame = encode_batch(&sample_batch()).to_vec();
        frame[2] = 99;
        let err = decode_batch(&frame).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let frame = encode_batch(&sample_batch());
        for len in 0..frame.len() {
            assert!(
                decode_batch(&frame[..len]).is_err(),
                "truncated frame of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut frame = encode_batch(&sample_batch()).to_vec();
        frame.push(0);
        let err = decode_batch(&frame).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn rejects_invalid_weight() {
        // Hand-craft a frame with weight 0.5 (< 1).
        let mut buf = BytesMut::new();
        buf.put_u16_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u32_le(1);
        buf.put_u32_le(7);
        buf.put_f64_le(0.5);
        buf.put_u32_le(0);
        let err = decode_batch(&buf).unwrap_err();
        assert!(err.to_string().contains("invalid weight"));
    }

    #[test]
    fn encode_into_reuses_buffer_without_growth() {
        let batch = sample_batch();
        let mut buf = BytesMut::new();
        encode_batch_into(&batch, &mut buf);
        assert_eq!(
            &buf[..],
            &encode_batch(&batch)[..],
            "same bytes as one-shot"
        );
        let warm = buf.capacity();
        for _ in 0..100 {
            encode_batch_into(&batch, &mut buf);
        }
        assert_eq!(buf.capacity(), warm, "steady state: no per-frame growth");
        assert_eq!(buf.len(), encoded_len(&batch));
    }

    #[test]
    fn decode_into_refills_recycled_batch_without_growth() {
        let batch = sample_batch();
        let frame = encode_batch(&batch);
        let mut recycled = Batch::new();
        decode_batch_into(&frame, &mut recycled).expect("decodes");
        assert_eq!(recycled, batch);
        let warm = recycled.items.capacity();
        for _ in 0..100 {
            decode_batch_into(&frame, &mut recycled).expect("decodes");
        }
        assert_eq!(recycled, batch);
        assert_eq!(recycled.items.capacity(), warm, "item storage reused");
    }

    #[test]
    fn decode_into_clears_stale_contents_on_error() {
        let mut stale = sample_batch();
        let err = decode_batch_into(&[0xFF, 0xFF, 1], &mut stale).unwrap_err();
        assert!(matches!(err, MqError::Codec(_)));
        assert!(stale.is_empty(), "failed decode must not leave stale items");
        assert!(stale.weights.is_empty());
    }

    #[test]
    fn encoded_len_is_linear_in_items() {
        let one = Batch::from_items(vec![StreamItem::new(StratumId::new(0), 0.0)]);
        let two = Batch::from_items(vec![
            StreamItem::new(StratumId::new(0), 0.0),
            StreamItem::new(StratumId::new(0), 0.0),
        ]);
        assert_eq!(encoded_len(&two) - encoded_len(&one), ITEM_ENTRY);
    }

    #[test]
    fn v2_roundtrip_preserves_columns() {
        let cols = ColumnarBatch::from_batch(&sample_batch());
        let frame = encode_columns(&cols);
        assert_eq!(frame.len(), encoded_len_columns(&cols));
        assert_eq!(frame[2], VERSION_COLUMNAR);
        let decoded = decode_columns(&frame).expect("decodes");
        assert_eq!(decoded, cols);
    }

    #[test]
    fn v2_roundtrip_empty_batch() {
        let cols = ColumnarBatch::new();
        let decoded = decode_columns(&encode_columns(&cols)).expect("decodes");
        assert_eq!(decoded, cols);
        assert_eq!(encoded_len_columns(&cols), HEADER + 4 + 16);
    }

    #[test]
    fn encode_batch_v2_matches_columnar_encode() {
        let batch = sample_batch();
        let mut from_aos = BytesMut::new();
        encode_batch_v2_into(&batch, &mut from_aos);
        let from_cols = encode_columns(&ColumnarBatch::from_batch(&batch));
        assert_eq!(&from_aos[..], &from_cols[..], "byte-identical encodings");
        assert_eq!(from_aos.len(), encoded_len_v2(&batch));
    }

    #[test]
    fn v1_decoder_rejects_v2_frame_with_named_error() {
        let frame = encode_columns(&ColumnarBatch::from_batch(&sample_batch()));
        let err = decode_batch(&frame).unwrap_err();
        assert!(
            err.to_string().contains("columnar v2 frame"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn v2_decoder_rejects_v1_frame_with_named_error() {
        let frame = encode_batch(&sample_batch());
        let err = decode_columns(&frame).unwrap_err();
        assert!(
            err.to_string().contains("AoS v1 frame"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn v2_rejects_truncation_at_every_length() {
        let frame = encode_columns(&ColumnarBatch::from_batch(&sample_batch()));
        for len in 0..frame.len() {
            assert!(
                decode_columns(&frame[..len]).is_err(),
                "truncated frame of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn v2_rejects_trailing_bytes() {
        let mut frame = encode_columns(&ColumnarBatch::from_batch(&sample_batch())).to_vec();
        frame.push(0);
        let err = decode_columns(&frame).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn v2_rejects_column_length_mismatch() {
        // Hand-craft a frame whose values column is one element short.
        let mut buf = BytesMut::new();
        buf.put_u16_le(MAGIC);
        buf.put_u8(VERSION_COLUMNAR);
        buf.put_u32_le(0); // no weights
        buf.put_u32_le(2); // strata: 2 elements
        buf.put_u32_le(0);
        buf.put_u32_le(1);
        buf.put_u32_le(1); // values: 1 element
        buf.put_f64_le(4.5);
        buf.put_u32_le(2); // seqs
        buf.put_u64_le(1);
        buf.put_u64_le(2);
        buf.put_u32_le(2); // source_ts
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        let err = decode_columns(&buf).unwrap_err();
        assert!(err.to_string().contains("column length mismatch"));
    }

    #[test]
    fn v2_rejects_invalid_weight() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(MAGIC);
        buf.put_u8(VERSION_COLUMNAR);
        buf.put_u32_le(1);
        buf.put_u32_le(7);
        buf.put_f64_le(0.5);
        for _ in 0..4 {
            buf.put_u32_le(0); // four empty columns
        }
        let err = decode_columns(&buf).unwrap_err();
        assert!(err.to_string().contains("invalid weight"));
    }

    #[test]
    fn v2_decode_into_clears_stale_contents_on_error() {
        let mut stale = ColumnarBatch::from_batch(&sample_batch());
        let err = decode_columns_into(&[0xFF, 0xFF, 2], &mut stale).unwrap_err();
        assert!(matches!(err, MqError::Codec(_)));
        assert!(stale.is_empty(), "failed decode must not leave stale items");
        assert!(stale.weights.is_empty());
    }

    #[test]
    fn v2_decode_into_refills_recycled_columns_without_growth() {
        let cols = ColumnarBatch::from_batch(&sample_batch());
        let frame = encode_columns(&cols);
        let mut recycled = ColumnarBatch::new();
        decode_columns_into(&frame, &mut recycled).expect("decodes");
        assert_eq!(recycled, cols);
        let warm = recycled.values.capacity();
        for _ in 0..100 {
            decode_columns_into(&frame, &mut recycled).expect("decodes");
        }
        assert_eq!(recycled, cols);
        assert_eq!(recycled.values.capacity(), warm, "column storage reused");
    }

    #[test]
    fn frame_version_sniffs_both_versions() {
        let batch = sample_batch();
        assert_eq!(frame_version(&encode_batch(&batch)).expect("v1"), VERSION);
        let cols = ColumnarBatch::from_batch(&batch);
        assert_eq!(
            frame_version(&encode_columns(&cols)).expect("v2"),
            VERSION_COLUMNAR
        );
        assert!(frame_version(&[0xA1]).is_err());
        assert!(frame_version(&[0x00, 0x00, 1]).is_err());
    }

    #[test]
    fn decode_any_accepts_both_versions() {
        let batch = sample_batch();
        let mut out = Batch::new();
        decode_batch_any_into(&encode_batch(&batch), &mut out).expect("v1 decodes");
        assert_eq!(out, batch);
        let mut buf = BytesMut::new();
        encode_batch_v2_into(&batch, &mut buf);
        decode_batch_any_into(&buf, &mut out).expect("v2 decodes");
        assert_eq!(out, batch, "v2 round-trips through the any-decoder");
        let err = decode_batch_any_into(&[0xA1], &mut out).unwrap_err();
        assert!(err.to_string().contains("shorter than header"));
        assert!(out.is_empty(), "failed decode leaves the batch cleared");
    }

    #[test]
    fn v2_costs_twelve_extra_bytes_over_v1() {
        let batch = sample_batch();
        assert_eq!(encoded_len_v2(&batch), encoded_len(&batch) + 12);
        assert_eq!(
            encoded_len_columns(&ColumnarBatch::from_batch(&batch)),
            encoded_len_v2(&batch)
        );
    }
}
