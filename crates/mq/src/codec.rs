//! Wire format for batches travelling between edge layers.
//!
//! The paper's prototype serialises sampled sub-streams plus their weight
//! metadata into Kafka topics. We do the same with a compact little-endian
//! binary frame, so the network layer can meter *real* bytes on the wire
//! for the bandwidth-saving experiment (Figure 7).
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! magic     u16  = 0xA107
//! version   u8   = 1
//! weights   u32  count, then per entry: stratum u32, weight f64
//! items     u32  count, then per entry: stratum u32, value f64,
//!                                        seq u64, source_ts u64
//! ```

use crate::error::MqError;
use approxiot_core::{Batch, StratumId, StreamItem};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u16 = 0xA107;
const VERSION: u8 = 1;

/// Bytes per encoded weight entry.
const WEIGHT_ENTRY: usize = 4 + 8;
/// Bytes per encoded item.
const ITEM_ENTRY: usize = 4 + 8 + 8 + 8;
/// Fixed header size.
const HEADER: usize = 2 + 1;

/// Returns the exact encoded size of a batch, without encoding it.
pub fn encoded_len(batch: &Batch) -> usize {
    HEADER + 4 + batch.weights.len() * WEIGHT_ENTRY + 4 + batch.items.len() * ITEM_ENTRY
}

/// Encodes a batch into a wire frame.
///
/// # Examples
///
/// ```
/// use approxiot_core::{Batch, StratumId, StreamItem};
/// use approxiot_mq::codec::{decode_batch, encode_batch};
///
/// let batch = Batch::from_items(vec![StreamItem::new(StratumId::new(0), 1.5)]);
/// let frame = encode_batch(&batch);
/// let decoded = decode_batch(&frame)?;
/// assert_eq!(decoded, batch);
/// # Ok::<(), approxiot_mq::MqError>(())
/// ```
pub fn encode_batch(batch: &Batch) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(batch));
    encode_batch_into(batch, &mut buf);
    buf.freeze()
}

/// Encodes a batch into a caller-owned buffer, replacing its contents.
///
/// This is the steady-state entry point: the buffer is cleared (keeping
/// its allocation) and exact room is reserved up front, so a loop that
/// encodes same-sized batches through one reused `BytesMut` performs
/// **zero allocations per frame** after the first. [`encode_batch`] is a
/// thin wrapper for one-shot callers.
pub fn encode_batch_into(batch: &Batch, buf: &mut BytesMut) {
    buf.clear();
    buf.reserve(encoded_len(batch));
    buf.put_u16_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(batch.weights.len() as u32);
    for (stratum, weight) in batch.weights.iter() {
        buf.put_u32_le(stratum.index());
        buf.put_f64_le(weight);
    }
    buf.put_u32_le(batch.items.len() as u32);
    for item in &batch.items {
        buf.put_u32_le(item.stratum.index());
        buf.put_f64_le(item.value);
        buf.put_u64_le(item.seq);
        buf.put_u64_le(item.source_ts);
    }
}

/// Decodes a wire frame back into a batch.
///
/// # Errors
///
/// Returns [`MqError::Codec`] on a bad magic number, unsupported version or
/// truncated frame.
pub fn decode_batch(frame: &[u8]) -> Result<Batch, MqError> {
    let mut batch = Batch::new();
    decode_batch_into(frame, &mut batch)?;
    Ok(batch)
}

/// Decodes a wire frame into a caller-owned (typically recycled) batch,
/// replacing its contents.
///
/// The batch is cleared first, keeping its item storage, so a loop that
/// decodes frames into batches drawn from an
/// [`approxiot_core::BatchPool`] allocates nothing per frame once the
/// pooled capacities have warmed up. On error the batch is left cleared —
/// never partially decoded.
///
/// # Errors
///
/// Returns [`MqError::Codec`] on a bad magic number, unsupported version,
/// truncated/corrupted frame or trailing bytes; never panics, whatever
/// the input bytes.
pub fn decode_batch_into(frame: &[u8], batch: &mut Batch) -> Result<(), MqError> {
    batch.clear();
    let mut buf = frame;
    if buf.remaining() < HEADER {
        return Err(MqError::Codec("frame shorter than header".into()));
    }
    let magic = buf.get_u16_le();
    if magic != MAGIC {
        return Err(MqError::Codec(format!("bad magic 0x{magic:04X}")));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(MqError::Codec(format!("unsupported version {version}")));
    }
    if buf.remaining() < 4 {
        return Err(MqError::Codec("truncated weight count".into()));
    }
    let weight_count = buf.get_u32_le() as usize;
    if buf.remaining() < weight_count * WEIGHT_ENTRY {
        return Err(MqError::Codec("truncated weight entries".into()));
    }
    for _ in 0..weight_count {
        let stratum = StratumId::new(buf.get_u32_le());
        let weight = buf.get_f64_le();
        if !weight.is_finite() || weight < 1.0 - 1e-9 {
            batch.weights.clear();
            return Err(MqError::Codec(format!(
                "invalid weight {weight} for {stratum}"
            )));
        }
        batch.weights.set(stratum, weight);
    }
    if buf.remaining() < 4 {
        batch.weights.clear();
        return Err(MqError::Codec("truncated item count".into()));
    }
    let item_count = buf.get_u32_le() as usize;
    if buf.remaining() != item_count * ITEM_ENTRY {
        let failure = if buf.remaining() < item_count * ITEM_ENTRY {
            "truncated item entries".to_string()
        } else {
            format!(
                "{} trailing bytes",
                buf.remaining() - item_count * ITEM_ENTRY
            )
        };
        batch.weights.clear();
        return Err(MqError::Codec(failure));
    }
    batch.items.reserve(item_count);
    for _ in 0..item_count {
        let stratum = StratumId::new(buf.get_u32_le());
        let value = buf.get_f64_le();
        let seq = buf.get_u64_le();
        let source_ts = buf.get_u64_le();
        batch
            .items
            .push(StreamItem::with_meta(stratum, value, seq, source_ts));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxiot_core::WeightMap;

    fn sample_batch() -> Batch {
        let mut weights = WeightMap::new();
        weights.set(StratumId::new(0), 1.5);
        weights.set(StratumId::new(3), 12.25);
        Batch::with_weights(
            weights,
            vec![
                StreamItem::with_meta(StratumId::new(0), 1.0, 1, 10),
                StreamItem::with_meta(StratumId::new(3), -2.5, 2, 20),
                StreamItem::with_meta(StratumId::new(0), 1e9, 3, 30),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_batch() {
        let batch = sample_batch();
        let frame = encode_batch(&batch);
        assert_eq!(frame.len(), encoded_len(&batch));
        let decoded = decode_batch(&frame).expect("decodes");
        assert_eq!(decoded, batch);
    }

    #[test]
    fn roundtrip_empty_batch() {
        let batch = Batch::new();
        let decoded = decode_batch(&encode_batch(&batch)).expect("decodes");
        assert_eq!(decoded, batch);
        assert_eq!(encoded_len(&batch), HEADER + 8);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut frame = encode_batch(&sample_batch()).to_vec();
        frame[0] ^= 0xFF;
        assert!(matches!(decode_batch(&frame), Err(MqError::Codec(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let mut frame = encode_batch(&sample_batch()).to_vec();
        frame[2] = 99;
        let err = decode_batch(&frame).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let frame = encode_batch(&sample_batch());
        for len in 0..frame.len() {
            assert!(
                decode_batch(&frame[..len]).is_err(),
                "truncated frame of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut frame = encode_batch(&sample_batch()).to_vec();
        frame.push(0);
        let err = decode_batch(&frame).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn rejects_invalid_weight() {
        // Hand-craft a frame with weight 0.5 (< 1).
        let mut buf = BytesMut::new();
        buf.put_u16_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u32_le(1);
        buf.put_u32_le(7);
        buf.put_f64_le(0.5);
        buf.put_u32_le(0);
        let err = decode_batch(&buf).unwrap_err();
        assert!(err.to_string().contains("invalid weight"));
    }

    #[test]
    fn encode_into_reuses_buffer_without_growth() {
        let batch = sample_batch();
        let mut buf = BytesMut::new();
        encode_batch_into(&batch, &mut buf);
        assert_eq!(
            &buf[..],
            &encode_batch(&batch)[..],
            "same bytes as one-shot"
        );
        let warm = buf.capacity();
        for _ in 0..100 {
            encode_batch_into(&batch, &mut buf);
        }
        assert_eq!(buf.capacity(), warm, "steady state: no per-frame growth");
        assert_eq!(buf.len(), encoded_len(&batch));
    }

    #[test]
    fn decode_into_refills_recycled_batch_without_growth() {
        let batch = sample_batch();
        let frame = encode_batch(&batch);
        let mut recycled = Batch::new();
        decode_batch_into(&frame, &mut recycled).expect("decodes");
        assert_eq!(recycled, batch);
        let warm = recycled.items.capacity();
        for _ in 0..100 {
            decode_batch_into(&frame, &mut recycled).expect("decodes");
        }
        assert_eq!(recycled, batch);
        assert_eq!(recycled.items.capacity(), warm, "item storage reused");
    }

    #[test]
    fn decode_into_clears_stale_contents_on_error() {
        let mut stale = sample_batch();
        let err = decode_batch_into(&[0xFF, 0xFF, 1], &mut stale).unwrap_err();
        assert!(matches!(err, MqError::Codec(_)));
        assert!(stale.is_empty(), "failed decode must not leave stale items");
        assert!(stale.weights.is_empty());
    }

    #[test]
    fn encoded_len_is_linear_in_items() {
        let one = Batch::from_items(vec![StreamItem::new(StratumId::new(0), 0.0)]);
        let two = Batch::from_items(vec![
            StreamItem::new(StratumId::new(0), 0.0),
            StreamItem::new(StratumId::new(0), 0.0),
        ]);
        assert_eq!(encoded_len(&two) - encoded_len(&one), ITEM_ENTRY);
    }
}
