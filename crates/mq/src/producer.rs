//! Producers: typed convenience handles for publishing batches.

use crate::codec::{
    encode_batch_into, encode_batch_v2_into, encode_columns_into, encode_summaries_into,
};
use crate::error::MqError;
use crate::record::ProducerRecord;
use crate::topic::Topic;
use approxiot_core::{Batch, ColumnarBatch, SketchConfig, StratumSummaries};
use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Publishes [`Batch`]es to a topic, encoding them with the wire codec and
/// metering bytes produced (for the bandwidth experiments).
///
/// Encoding runs through a producer-owned scratch buffer
/// ([`crate::codec::encode_batch_into`]), so the only per-send allocation
/// is the one the log's retention model requires: the shared immutable
/// payload handed to the partition. The scratch itself never shrinks and
/// stops growing once it has seen the largest frame the producer sends.
///
/// # Examples
///
/// ```
/// use approxiot_core::{Batch, StratumId, StreamItem};
/// use approxiot_mq::{BatchProducer, Broker};
///
/// let broker = Broker::new();
/// let topic = broker.create_topic("layer-1", 1)?;
/// let producer = BatchProducer::new(topic);
/// producer.send(&Batch::from_items(vec![StreamItem::new(StratumId::new(0), 1.0)]))?;
/// assert!(producer.bytes_sent() > 0);
/// # Ok::<(), approxiot_mq::MqError>(())
/// ```
#[derive(Debug)]
pub struct BatchProducer {
    topic: Arc<Topic>,
    /// Reused encode buffer; a mutex (not `&mut self`) so shared producer
    /// handles keep working — uncontended in the pipeline, where every
    /// node thread owns its producer.
    scratch: Mutex<BytesMut>,
    bytes_sent: AtomicU64,
    batches_sent: AtomicU64,
    items_sent: AtomicU64,
}

impl BatchProducer {
    /// Creates a producer for `topic`.
    pub fn new(topic: Arc<Topic>) -> Self {
        BatchProducer {
            topic,
            scratch: Mutex::new(BytesMut::new()),
            bytes_sent: AtomicU64::new(0),
            batches_sent: AtomicU64::new(0),
            items_sent: AtomicU64::new(0),
        }
    }

    /// Encodes `batch` through the reused scratch and returns the shared
    /// payload to append, metering as it goes.
    fn encode_frame(&self, batch: &Batch) -> Bytes {
        let mut scratch = self.scratch.lock();
        encode_batch_into(batch, &mut scratch);
        self.bytes_sent
            .fetch_add(scratch.len() as u64, Ordering::Relaxed);
        self.batches_sent.fetch_add(1, Ordering::Relaxed);
        self.items_sent
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        Bytes::copy_from_slice(&scratch)
    }

    /// The topic this producer publishes to.
    pub fn topic(&self) -> &Arc<Topic> {
        &self.topic
    }

    /// Encodes and publishes one batch, returning `(partition, offset)`.
    ///
    /// # Errors
    ///
    /// Returns [`MqError::Closed`] once the topic is closed.
    pub fn send(&self, batch: &Batch) -> Result<(u32, u64), MqError> {
        self.send_at(batch, 0)
    }

    /// Publishes a batch stamped with an event timestamp (nanoseconds).
    ///
    /// # Errors
    ///
    /// Returns [`MqError::Closed`] once the topic is closed.
    pub fn send_at(&self, batch: &Batch, timestamp: u64) -> Result<(u32, u64), MqError> {
        let frame = self.encode_frame(batch);
        self.topic.append(ProducerRecord {
            key: None,
            value: frame,
            timestamp,
        })
    }

    /// Publishes to a specific partition (used when each source owns a
    /// partition).
    ///
    /// # Errors
    ///
    /// Returns [`MqError::PartitionOutOfRange`] or [`MqError::Closed`].
    pub fn send_to(
        &self,
        partition: u32,
        batch: &Batch,
        timestamp: u64,
    ) -> Result<(u32, u64), MqError> {
        let frame = self.encode_frame(batch);
        self.topic.append_to(
            partition,
            ProducerRecord {
                key: None,
                value: frame,
                timestamp,
            },
        )
    }

    /// Publishes a columnar batch to a specific partition as a **v2**
    /// frame — same scratch reuse and metering as [`Self::send_to`], with
    /// the encode reduced to four bulk column copies.
    ///
    /// # Errors
    ///
    /// Returns [`MqError::PartitionOutOfRange`] or [`MqError::Closed`].
    pub fn send_columns_to(
        &self,
        partition: u32,
        batch: &ColumnarBatch,
        timestamp: u64,
    ) -> Result<(u32, u64), MqError> {
        let frame = {
            let mut scratch = self.scratch.lock();
            encode_columns_into(batch, &mut scratch);
            self.bytes_sent
                .fetch_add(scratch.len() as u64, Ordering::Relaxed);
            self.batches_sent.fetch_add(1, Ordering::Relaxed);
            self.items_sent
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            Bytes::copy_from_slice(&scratch)
        };
        self.topic.append_to(
            partition,
            ProducerRecord {
                key: None,
                value: frame,
                timestamp,
            },
        )
    }

    /// Publishes an **AoS** batch to a specific partition as a **v2**
    /// columnar frame (see [`crate::codec::encode_batch_v2_into`]) — for
    /// producers that hold a [`Batch`] but feed columnar consumers.
    ///
    /// # Errors
    ///
    /// Returns [`MqError::PartitionOutOfRange`] or [`MqError::Closed`].
    pub fn send_v2_to(
        &self,
        partition: u32,
        batch: &Batch,
        timestamp: u64,
    ) -> Result<(u32, u64), MqError> {
        let frame = {
            let mut scratch = self.scratch.lock();
            encode_batch_v2_into(batch, &mut scratch);
            self.bytes_sent
                .fetch_add(scratch.len() as u64, Ordering::Relaxed);
            self.batches_sent.fetch_add(1, Ordering::Relaxed);
            self.items_sent
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            Bytes::copy_from_slice(&scratch)
        };
        self.topic.append_to(
            partition,
            ProducerRecord {
                key: None,
                value: frame,
                timestamp,
            },
        )
    }

    /// Publishes per-window stratum summaries to a specific partition as
    /// a **v3** summary frame — one frame per sketch node per interval,
    /// with the same scratch reuse and byte metering as the item senders.
    /// Items-sent counts the summaries' exact observed item counts, so
    /// the meter stays comparable across strategies.
    ///
    /// # Errors
    ///
    /// Returns [`MqError::PartitionOutOfRange`] or [`MqError::Closed`].
    pub fn send_summaries_to(
        &self,
        partition: u32,
        config: SketchConfig,
        seed: u64,
        windows: &[(u64, StratumSummaries)],
        timestamp: u64,
    ) -> Result<(u32, u64), MqError> {
        let frame = {
            let mut scratch = self.scratch.lock();
            encode_summaries_into(config, seed, windows, &mut scratch);
            self.bytes_sent
                .fetch_add(scratch.len() as u64, Ordering::Relaxed);
            self.batches_sent.fetch_add(1, Ordering::Relaxed);
            self.items_sent.fetch_add(
                windows.iter().map(|(_, s)| s.count()).sum::<u64>(),
                Ordering::Relaxed,
            );
            Bytes::copy_from_slice(&scratch)
        };
        self.topic.append_to(
            partition,
            ProducerRecord {
                key: None,
                value: frame,
                timestamp,
            },
        )
    }

    /// Total encoded bytes published.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total batches published.
    pub fn batches_sent(&self) -> u64 {
        self.batches_sent.load(Ordering::Relaxed)
    }

    /// Total items published (pre-encoding count).
    pub fn items_sent(&self) -> u64 {
        self.items_sent.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Broker;
    use approxiot_core::{StratumId, StreamItem};

    fn batch(n: usize) -> Batch {
        (0..n)
            .map(|i| StreamItem::new(StratumId::new(0), i as f64))
            .collect()
    }

    #[test]
    fn send_meters_bytes_and_counts() {
        let broker = Broker::new();
        let topic = broker.create_topic("t", 1).expect("create");
        let producer = BatchProducer::new(topic);
        producer.send(&batch(3)).expect("send");
        producer.send(&batch(5)).expect("send");
        assert_eq!(producer.batches_sent(), 2);
        assert_eq!(producer.items_sent(), 8);
        assert!(producer.bytes_sent() > 0);
    }

    #[test]
    fn bytes_scale_with_items() {
        let broker = Broker::new();
        let topic = broker.create_topic("t", 1).expect("create");
        let producer = BatchProducer::new(topic);
        producer.send(&batch(10)).expect("send");
        let after_small = producer.bytes_sent();
        producer.send(&batch(100)).expect("send");
        let big = producer.bytes_sent() - after_small;
        assert!(
            big > after_small,
            "100-item frame larger than 10-item frame"
        );
    }

    #[test]
    fn encode_scratch_stops_growing_after_warm_up() {
        let broker = Broker::new();
        let topic = broker.create_topic("t", 1).expect("create");
        let producer = BatchProducer::new(topic);
        producer.send(&batch(100)).expect("send");
        let warm = producer.scratch.lock().capacity();
        for _ in 0..50 {
            producer.send(&batch(100)).expect("send");
        }
        assert_eq!(
            producer.scratch.lock().capacity(),
            warm,
            "steady state: the encode buffer is reused, not regrown"
        );
        // Smaller frames reuse the same buffer too.
        producer.send(&batch(1)).expect("send");
        assert_eq!(producer.scratch.lock().capacity(), warm);
    }

    #[test]
    fn send_to_targets_partition() {
        let broker = Broker::new();
        let topic = broker.create_topic("t", 3).expect("create");
        let producer = BatchProducer::new(Arc::clone(&topic));
        let (p, _) = producer.send_to(2, &batch(1), 7).expect("send");
        assert_eq!(p, 2);
        assert_eq!(topic.partition(2).expect("partition").len(), 1);
        assert!(producer.send_to(9, &batch(1), 0).is_err());
    }

    #[test]
    fn send_columns_to_publishes_v2_and_meters() {
        use crate::codec::{decode_columns, encoded_len_columns};
        let broker = Broker::new();
        let topic = broker.create_topic("t", 2).expect("create");
        let producer = BatchProducer::new(Arc::clone(&topic));
        let cols = ColumnarBatch::from_batch(&batch(4));
        let (p, _) = producer.send_columns_to(1, &cols, 3).expect("send");
        assert_eq!(p, 1);
        assert_eq!(producer.batches_sent(), 1);
        assert_eq!(producer.items_sent(), 4);
        assert_eq!(producer.bytes_sent(), encoded_len_columns(&cols) as u64);
        let record = topic
            .partition(1)
            .expect("partition")
            .read_from(0, 1, std::time::Duration::from_millis(10))
            .expect("read")
            .pop()
            .expect("one record");
        assert_eq!(decode_columns(&record.value).expect("v2 frame"), cols);
    }

    #[test]
    fn send_v2_to_matches_columnar_send() {
        let broker = Broker::new();
        let topic = broker.create_topic("t", 1).expect("create");
        let producer = BatchProducer::new(Arc::clone(&topic));
        let aos = batch(6);
        producer.send_v2_to(0, &aos, 0).expect("send aos as v2");
        producer
            .send_columns_to(0, &ColumnarBatch::from_batch(&aos), 0)
            .expect("send columns");
        let records = topic
            .partition(0)
            .expect("partition")
            .read_from(0, 2, std::time::Duration::from_millis(10))
            .expect("read");
        assert_eq!(
            records[0].value, records[1].value,
            "both entry points produce byte-identical v2 frames"
        );
    }

    #[test]
    fn send_summaries_to_publishes_v3_and_meters() {
        use crate::codec::{decode_summaries, encoded_len_summaries};
        let broker = Broker::new();
        let topic = broker.create_topic("t", 2).expect("create");
        let producer = BatchProducer::new(Arc::clone(&topic));
        let config = SketchConfig::default();
        let mut summaries = StratumSummaries::new(config, 5);
        for i in 0..12u64 {
            summaries.observe(StratumId::new((i % 3) as u32), i, i as f64);
        }
        let windows = vec![(0u64, summaries)];
        let (p, _) = producer
            .send_summaries_to(1, config, 5, &windows, 9)
            .expect("send");
        assert_eq!(p, 1);
        assert_eq!(producer.batches_sent(), 1);
        assert_eq!(producer.items_sent(), 12, "exact observed count");
        assert_eq!(
            producer.bytes_sent(),
            encoded_len_summaries(&windows) as u64
        );
        let record = topic
            .partition(1)
            .expect("partition")
            .read_from(0, 1, std::time::Duration::from_millis(10))
            .expect("read")
            .pop()
            .expect("one record");
        assert_eq!(record.timestamp, 9);
        assert_eq!(decode_summaries(&record.value).expect("v3 frame"), windows);
    }

    #[test]
    fn send_fails_after_close() {
        let broker = Broker::new();
        let topic = broker.create_topic("t", 1).expect("create");
        let producer = BatchProducer::new(topic);
        broker.close();
        assert!(matches!(producer.send(&batch(1)), Err(MqError::Closed)));
    }
}
