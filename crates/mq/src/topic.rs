//! Topics: named groups of partitions with a partitioning policy.

use crate::error::MqError;
use crate::log::PartitionLog;
use crate::record::{ProducerRecord, Record};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a topic assigns keyless records to partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partitioner {
    /// Rotate through partitions (default — matches the reproduction's
    /// source layout where each source feeds its own partition stream).
    #[default]
    RoundRobin,
    /// Always partition 0 (useful for strictly ordered tests).
    Sticky,
}

/// A named, partitioned log.
#[derive(Debug)]
pub struct Topic {
    name: String,
    partitions: Vec<Arc<PartitionLog>>,
    partitioner: Partitioner,
    round_robin: AtomicU64,
}

impl Topic {
    /// Creates a topic with `partitions` partitions and the given retention
    /// per partition.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn new(name: impl Into<String>, partitions: u32, retention: usize) -> Self {
        assert!(partitions > 0, "a topic needs at least one partition");
        Topic {
            name: name.into(),
            partitions: (0..partitions)
                .map(|i| Arc::new(PartitionLog::new(i, retention)))
                .collect(),
            partitioner: Partitioner::RoundRobin,
            round_robin: AtomicU64::new(0),
        }
    }

    /// Sets the partitioner for keyless records.
    pub fn with_partitioner(mut self, partitioner: Partitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Topic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> u32 {
        self.partitions.len() as u32
    }

    /// Returns a handle to one partition.
    ///
    /// # Errors
    ///
    /// Returns [`MqError::PartitionOutOfRange`] for a bad index.
    pub fn partition(&self, index: u32) -> Result<Arc<PartitionLog>, MqError> {
        self.partitions
            .get(index as usize)
            .cloned()
            .ok_or(MqError::PartitionOutOfRange {
                partition: index,
                partitions: self.partition_count(),
            })
    }

    /// All partitions, in index order.
    pub fn partitions(&self) -> &[Arc<PartitionLog>] {
        &self.partitions
    }

    /// Chooses the partition for a record: keyed records hash their key,
    /// keyless records follow the topic's [`Partitioner`].
    pub fn partition_for(&self, record: &ProducerRecord) -> u32 {
        let n = self.partitions.len() as u64;
        match &record.key {
            Some(key) => (fnv1a(key) % n) as u32,
            None => match self.partitioner {
                Partitioner::RoundRobin => {
                    (self.round_robin.fetch_add(1, Ordering::Relaxed) % n) as u32
                }
                Partitioner::Sticky => 0,
            },
        }
    }

    /// Appends a producer record to its chosen partition, returning
    /// `(partition, offset)`.
    ///
    /// # Errors
    ///
    /// Returns [`MqError::Closed`] after the topic is closed.
    pub fn append(&self, record: ProducerRecord) -> Result<(u32, u64), MqError> {
        let partition = self.partition_for(&record);
        self.append_to(partition, record)
    }

    /// Appends to an explicit partition.
    ///
    /// # Errors
    ///
    /// Returns [`MqError::PartitionOutOfRange`] or [`MqError::Closed`].
    pub fn append_to(&self, partition: u32, record: ProducerRecord) -> Result<(u32, u64), MqError> {
        let log = self.partition(partition)?;
        let offset = log.append(Record {
            partition,
            offset: 0,
            timestamp: record.timestamp,
            key: record.key,
            value: record.value,
        })?;
        Ok((partition, offset))
    }

    /// Closes every partition.
    pub fn close(&self) {
        for p in &self.partitions {
            p.close();
        }
    }

    /// Sum of retained records across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Returns `true` when no partition retains records.
    pub fn is_empty(&self) -> bool {
        self.partitions.iter().all(|p| p.is_empty())
    }
}

/// FNV-1a hash for key partitioning (stable across runs, unlike `std`'s
/// randomly seeded hasher — tests and reproductions need determinism).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        Topic::new("t", 0, usize::MAX);
    }

    #[test]
    fn round_robin_spreads_records() {
        let topic = Topic::new("t", 3, usize::MAX);
        let mut hit = [0usize; 3];
        for _ in 0..9 {
            let (p, _) = topic
                .append(ProducerRecord::new(&b"x"[..]))
                .expect("append");
            hit[p as usize] += 1;
        }
        assert_eq!(hit, [3, 3, 3]);
    }

    #[test]
    fn sticky_partitioner_stays_on_zero() {
        let topic = Topic::new("t", 3, usize::MAX).with_partitioner(Partitioner::Sticky);
        for _ in 0..5 {
            let (p, _) = topic
                .append(ProducerRecord::new(&b"x"[..]))
                .expect("append");
            assert_eq!(p, 0);
        }
    }

    #[test]
    fn keyed_records_are_stable() {
        let topic = Topic::new("t", 4, usize::MAX);
        let p1 = topic.partition_for(&ProducerRecord::new(&b"v"[..]).with_key(&b"sensor-7"[..]));
        let p2 = topic.partition_for(&ProducerRecord::new(&b"w"[..]).with_key(&b"sensor-7"[..]));
        assert_eq!(p1, p2, "same key, same partition");
    }

    #[test]
    fn partition_out_of_range() {
        let topic = Topic::new("t", 2, usize::MAX);
        assert!(matches!(
            topic.partition(5),
            Err(MqError::PartitionOutOfRange {
                partition: 5,
                partitions: 2
            })
        ));
        assert!(topic.append_to(9, ProducerRecord::new(&b"x"[..])).is_err());
    }

    #[test]
    fn append_then_read_roundtrip() {
        let topic = Topic::new("t", 1, usize::MAX);
        let (p, o) = topic
            .append(ProducerRecord::new(&b"hello"[..]).with_timestamp(5))
            .expect("append");
        assert_eq!((p, o), (0, 0));
        let log = topic.partition(0).expect("partition");
        let got = log.read_from(0, 10, Duration::ZERO).expect("read");
        assert_eq!(got[0].value.as_ref(), b"hello");
        assert_eq!(got[0].timestamp, 5);
        assert_eq!(topic.len(), 1);
        assert!(!topic.is_empty());
    }

    #[test]
    fn close_propagates_to_partitions() {
        let topic = Topic::new("t", 2, usize::MAX);
        topic.close();
        assert!(matches!(
            topic.append(ProducerRecord::new(&b"x"[..])),
            Err(MqError::Closed)
        ));
    }

    #[test]
    fn fnv_is_deterministic() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }
}
