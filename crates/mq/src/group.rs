//! Consumer groups: dynamic membership with partition rebalancing — the
//! in-process analogue of Kafka's group coordinator, used when a tree
//! layer is served by several worker processes (§III-E distributed
//! execution).

use crate::consumer::{assign_partitions, Consumer, StartOffset};
use crate::error::MqError;
use crate::topic::Topic;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Monotonic generation number, bumped on every rebalance.
pub type Generation = u64;

/// A member's view after (re)joining: its assignment and the generation it
/// is valid for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    /// The member's id within the group.
    pub member_id: u64,
    /// Partitions assigned to this member.
    pub partitions: Vec<u32>,
    /// Generation this assignment belongs to.
    pub generation: Generation,
}

#[derive(Debug, Default)]
struct GroupState {
    members: BTreeMap<u64, Vec<u32>>,
    next_member: u64,
    generation: Generation,
}

/// Coordinates a set of consumers sharing one topic: members join and
/// leave; every change rebalances partitions round-robin across the
/// current membership and bumps the generation.
///
/// Members poll [`GroupCoordinator::assignment`] and recreate their
/// [`Consumer`] when the generation moves — the cooperative analogue of
/// Kafka's rebalance callback.
///
/// # Examples
///
/// ```
/// use approxiot_mq::{Broker, GroupCoordinator};
///
/// let broker = Broker::new();
/// let topic = broker.create_topic("t", 4)?;
/// let group = GroupCoordinator::new(topic);
///
/// let a = group.join();
/// assert_eq!(a.partitions, vec![0, 1, 2, 3]); // sole member owns all
///
/// let b = group.join();
/// let a_now = group.assignment(a.member_id).expect("still a member");
/// assert_eq!(a_now.partitions.len() + group.assignment(b.member_id).unwrap().partitions.len(), 4);
/// # Ok::<(), approxiot_mq::MqError>(())
/// ```
#[derive(Debug)]
pub struct GroupCoordinator {
    topic: Arc<Topic>,
    state: Mutex<GroupState>,
}

impl GroupCoordinator {
    /// Creates a coordinator for `topic`.
    pub fn new(topic: Arc<Topic>) -> Self {
        GroupCoordinator {
            topic,
            state: Mutex::new(GroupState::default()),
        }
    }

    /// The coordinated topic.
    pub fn topic(&self) -> &Arc<Topic> {
        &self.topic
    }

    /// Adds a member, rebalances, and returns the new member's view.
    pub fn join(&self) -> Membership {
        let mut state = self.state.lock();
        let id = state.next_member;
        state.next_member += 1;
        state.members.insert(id, Vec::new());
        Self::rebalance(&mut state, self.topic.partition_count());
        Membership {
            member_id: id,
            partitions: state.members[&id].clone(),
            generation: state.generation,
        }
    }

    /// Removes a member and rebalances its partitions onto the survivors.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownMemberError`] when the member already left (or
    /// never joined).
    pub fn leave(&self, member_id: u64) -> Result<(), UnknownMemberError> {
        let mut state = self.state.lock();
        if state.members.remove(&member_id).is_none() {
            return Err(UnknownMemberError { member_id });
        }
        Self::rebalance(&mut state, self.topic.partition_count());
        Ok(())
    }

    /// The member's current assignment, or `None` after it left.
    pub fn assignment(&self, member_id: u64) -> Option<Membership> {
        let state = self.state.lock();
        state.members.get(&member_id).map(|partitions| Membership {
            member_id,
            partitions: partitions.clone(),
            generation: state.generation,
        })
    }

    /// Current generation (bumped by every join/leave).
    pub fn generation(&self) -> Generation {
        self.state.lock().generation
    }

    /// Number of live members.
    pub fn member_count(&self) -> usize {
        self.state.lock().members.len()
    }

    /// Builds a [`Consumer`] for the member's current assignment.
    ///
    /// # Errors
    ///
    /// Returns [`MqError::UnknownTopic`] when the member is not in the
    /// group (mirrors Kafka's UNKNOWN_MEMBER_ID).
    pub fn consumer(&self, member_id: u64, start: StartOffset) -> Result<Consumer, MqError> {
        let membership = self
            .assignment(member_id)
            .ok_or_else(|| MqError::UnknownTopic(format!("member {member_id}")))?;
        Ok(Consumer::subscribe(
            Arc::clone(&self.topic),
            &membership.partitions,
            start,
        ))
    }

    fn rebalance(state: &mut GroupState, partitions: u32) {
        state.generation += 1;
        let ids: Vec<u64> = state.members.keys().copied().collect();
        if ids.is_empty() {
            return;
        }
        let split = assign_partitions(partitions, ids.len());
        for (id, parts) in ids.into_iter().zip(split) {
            state.members.insert(id, parts);
        }
    }
}

/// Error returned when operating on a member id that is not in the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownMemberError {
    member_id: u64,
}

impl std::fmt::Display for UnknownMemberError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown group member {}", self.member_id)
    }
}

impl std::error::Error for UnknownMemberError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Broker;
    use crate::producer::BatchProducer;
    use approxiot_core::{Batch, StratumId, StreamItem};
    use std::time::Duration;

    fn coordinator(partitions: u32) -> (Broker, GroupCoordinator) {
        let broker = Broker::new();
        let topic = broker.create_topic("t", partitions).expect("create");
        (broker, GroupCoordinator::new(topic))
    }

    #[test]
    fn sole_member_owns_everything() {
        let (_b, group) = coordinator(3);
        let m = group.join();
        assert_eq!(m.partitions, vec![0, 1, 2]);
        assert_eq!(group.member_count(), 1);
    }

    #[test]
    fn join_rebalances_and_bumps_generation() {
        let (_b, group) = coordinator(4);
        let a = group.join();
        let g1 = a.generation;
        let b = group.join();
        assert!(
            b.generation > g1,
            "generation must move on membership change"
        );
        let a_now = group.assignment(a.member_id).expect("member");
        let b_now = group.assignment(b.member_id).expect("member");
        let mut all: Vec<u32> = a_now
            .partitions
            .iter()
            .chain(b_now.partitions.iter())
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3], "partitions exactly partitioned");
        assert!(!a_now.partitions.is_empty() && !b_now.partitions.is_empty());
    }

    #[test]
    fn leave_returns_partitions_to_survivors() {
        let (_b, group) = coordinator(4);
        let a = group.join();
        let b = group.join();
        group.leave(a.member_id).expect("member exists");
        assert_eq!(group.assignment(a.member_id), None);
        let b_now = group.assignment(b.member_id).expect("member");
        assert_eq!(b_now.partitions, vec![0, 1, 2, 3]);
        assert!(group.leave(a.member_id).is_err(), "double leave reported");
    }

    #[test]
    fn more_members_than_partitions_leaves_some_idle() {
        let (_b, group) = coordinator(2);
        let members: Vec<_> = (0..4).map(|_| group.join()).collect();
        let sizes: Vec<usize> = members
            .iter()
            .map(|m| {
                group
                    .assignment(m.member_id)
                    .expect("member")
                    .partitions
                    .len()
            })
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 2);
        assert!(sizes.iter().filter(|&&s| s == 0).count() == 2);
    }

    #[test]
    fn group_consumers_cover_the_topic_exactly_once() {
        let (_b, group) = coordinator(4);
        let producer = BatchProducer::new(Arc::clone(group.topic()));
        let a = group.join();
        let b = group.join();
        for p in 0..4 {
            let batch = Batch::from_items(vec![StreamItem::new(StratumId::new(p), p as f64)]);
            producer.send_to(p, &batch, 0).expect("send");
        }
        let mut got = Vec::new();
        for m in [a, b] {
            let mut consumer = group
                .consumer(m.member_id, StartOffset::Earliest)
                .expect("member");
            got.extend(consumer.poll(10, Duration::ZERO).expect("poll"));
        }
        assert_eq!(got.len(), 4, "each record delivered to exactly one member");
        assert!(group.consumer(99, StartOffset::Earliest).is_err());
    }
}
