//! Consumers: offset-tracked, multi-partition subscription with decode.

use crate::codec::decode_batch;
use crate::error::MqError;
use crate::record::Record;
use crate::topic::Topic;
use approxiot_core::Batch;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Where a new consumer starts reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartOffset {
    /// From the earliest retained record.
    #[default]
    Earliest,
    /// From the log end (only new records).
    Latest,
}

/// A consumer subscribed to a set of partitions of one topic, tracking its
/// own offsets.
///
/// Polling round-robins across the assigned partitions so one hot partition
/// cannot starve the others.
///
/// # Examples
///
/// ```
/// use approxiot_core::{Batch, StratumId, StreamItem};
/// use approxiot_mq::{BatchProducer, Broker, Consumer, StartOffset};
/// use std::time::Duration;
///
/// let broker = Broker::new();
/// let topic = broker.create_topic("t", 2)?;
/// let producer = BatchProducer::new(topic.clone());
/// producer.send(&Batch::from_items(vec![StreamItem::new(StratumId::new(0), 1.0)]))?;
///
/// let mut consumer = Consumer::subscribe_all(topic, StartOffset::Earliest);
/// let records = consumer.poll(10, Duration::from_millis(10))?;
/// assert_eq!(records.len(), 1);
/// # Ok::<(), approxiot_mq::MqError>(())
/// ```
#[derive(Debug)]
pub struct Consumer {
    topic: Arc<Topic>,
    /// Next offset to read, per assigned partition.
    offsets: BTreeMap<u32, u64>,
    /// The assigned partitions in ascending order — cached at subscribe
    /// time (the assignment never changes afterwards) so polling never
    /// rebuilds the key list.
    partitions: Vec<u32>,
    /// Rotation cursor for fairness.
    cursor: usize,
}

impl Consumer {
    /// Subscribes to every partition of `topic`.
    pub fn subscribe_all(topic: Arc<Topic>, start: StartOffset) -> Self {
        let partitions: Vec<u32> = (0..topic.partition_count()).collect();
        Consumer::subscribe(topic, &partitions, start)
    }

    /// Subscribes to an explicit partition set (out-of-range indices are
    /// ignored, matching Kafka's lazy assignment semantics).
    pub fn subscribe(topic: Arc<Topic>, partitions: &[u32], start: StartOffset) -> Self {
        let mut offsets = BTreeMap::new();
        for &p in partitions {
            if let Ok(log) = topic.partition(p) {
                let offset = match start {
                    StartOffset::Earliest => log.earliest_offset(),
                    StartOffset::Latest => log.latest_offset(),
                };
                offsets.insert(p, offset);
            }
        }
        let partitions = offsets.keys().copied().collect();
        Consumer {
            topic,
            offsets,
            partitions,
            cursor: 0,
        }
    }

    /// The topic this consumer reads.
    pub fn topic(&self) -> &Arc<Topic> {
        &self.topic
    }

    /// The partitions assigned to this consumer.
    pub fn assignment(&self) -> Vec<u32> {
        self.offsets.keys().copied().collect()
    }

    /// Current position (next offset) for a partition, if assigned.
    pub fn position(&self, partition: u32) -> Option<u64> {
        self.offsets.get(&partition).copied()
    }

    /// Polls up to `max` records across assigned partitions, blocking up to
    /// `timeout` when fully caught up. An empty result means the timeout
    /// elapsed.
    ///
    /// Offsets that fell behind retention are transparently reset to the
    /// earliest retained offset (Kafka's `auto.offset.reset = earliest`),
    /// so a slow consumer skips data instead of wedging.
    ///
    /// # Errors
    ///
    /// Returns [`MqError::Closed`] once every assigned partition is closed
    /// **and** fully drained.
    pub fn poll(&mut self, max: usize, timeout: Duration) -> Result<Vec<Record>, MqError> {
        let mut out = Vec::new();
        self.poll_into(&mut out, max, timeout)?;
        Ok(out)
    }

    /// Polls like [`Consumer::poll`], but **replaces** the contents of a
    /// caller-owned buffer instead of returning a fresh vector, and returns
    /// how many records were delivered.
    ///
    /// This is the steady-state consumption path: `out` is cleared (keeping
    /// its allocation) and refilled, and the partition sweep appends
    /// directly into it via [`crate::PartitionLog::read_into`], so a node
    /// loop polling through one reused buffer allocates nothing per poll
    /// once the buffer has warmed up. Both phases of the poll — the
    /// non-blocking rotation sweep and the single blocking wait when fully
    /// caught up — run through the same partition drain, so blocked polls
    /// wake on produce exactly like [`Consumer::poll`] always has.
    ///
    /// # Errors
    ///
    /// Same contract as [`Consumer::poll`].
    pub fn poll_into(
        &mut self,
        out: &mut Vec<Record>,
        max: usize,
        timeout: Duration,
    ) -> Result<usize, MqError> {
        out.clear();
        let n = self.partitions.len();
        if n == 0 {
            return Ok(0);
        }
        // Phase 1: non-blocking drain in rotation order.
        let mut closed = 0usize;
        for step in 0..n {
            if out.len() >= max {
                break;
            }
            let p = self.partitions[(self.cursor + step) % n];
            match self.drain_partition_into(p, max - out.len(), Duration::ZERO, out) {
                Ok(_) => {}
                Err(MqError::Closed) => closed += 1,
                Err(e) => return Err(e),
            }
        }
        self.cursor = (self.cursor + 1) % n;
        if !out.is_empty() {
            return Ok(out.len());
        }
        if closed == n {
            return Err(MqError::Closed);
        }
        // Phase 2: fully caught up — spend the timeout blocking on the
        // first open partition (the same drain, now allowed to wait).
        for step in 0..n {
            let p = self.partitions[step];
            match self.drain_partition_into(p, max, timeout, out) {
                Ok(_) => {}
                Err(MqError::Closed) => continue,
                Err(e) => return Err(e),
            }
            break; // only spend the timeout once
        }
        Ok(out.len())
    }

    /// Drains one partition into `out` (appending), advancing its offset
    /// past the delivered records. Shared by both poll phases.
    fn drain_partition_into(
        &mut self,
        partition: u32,
        max: usize,
        timeout: Duration,
        out: &mut Vec<Record>,
    ) -> Result<usize, MqError> {
        let log = self.topic.partition(partition)?;
        let offset = *self.offsets.get(&partition).unwrap_or(&0);
        let taken = match log.read_into(offset, max, timeout, out) {
            Ok(taken) => taken,
            Err(MqError::OffsetOutOfRange { earliest, .. }) => {
                // auto.offset.reset = earliest
                self.offsets.insert(partition, earliest);
                log.read_into(earliest, max, timeout, out)?
            }
            Err(e) => return Err(e),
        };
        if let Some(last) = out.last().filter(|_| taken > 0) {
            self.offsets.insert(partition, last.offset + 1);
        }
        Ok(taken)
    }

    /// Polls and decodes records into [`Batch`]es (codec errors abort the
    /// poll).
    ///
    /// # Errors
    ///
    /// Returns [`MqError::Closed`] when drained-and-closed, or
    /// [`MqError::Codec`] on a corrupt frame.
    pub fn poll_batches(
        &mut self,
        max: usize,
        timeout: Duration,
    ) -> Result<Vec<(Record, Batch)>, MqError> {
        let records = self.poll(max, timeout)?;
        records
            .into_iter()
            .map(|r| {
                let batch = decode_batch(&r.value)?;
                Ok((r, batch))
            })
            .collect()
    }

    /// Subscribes to every partition, resuming each from its committed
    /// offset in `store` (or `start` where the group never committed).
    pub fn subscribe_committed(
        topic: Arc<Topic>,
        group: &str,
        store: &crate::offsets::OffsetStore,
        fallback: StartOffset,
    ) -> Self {
        let mut consumer = Consumer::subscribe_all(topic, fallback);
        let name = consumer.topic.name().to_string();
        for p in consumer.assignment() {
            if let Some(offset) = store.fetch(group, &name, p) {
                consumer.offsets.insert(p, offset);
            }
        }
        consumer
    }

    /// Commits this consumer's current positions for `group` into `store`.
    pub fn commit(&self, group: &str, store: &crate::offsets::OffsetStore) {
        for (&p, &o) in &self.offsets {
            store.commit(group, self.topic.name(), p, o);
        }
    }

    /// Seeks a partition to an absolute offset.
    pub fn seek(&mut self, partition: u32, offset: u64) {
        if self.offsets.contains_key(&partition) {
            self.offsets.insert(partition, offset);
        }
    }

    /// Total records between current positions and each log end (consumer
    /// lag).
    pub fn lag(&self) -> u64 {
        self.offsets
            .iter()
            .filter_map(|(&p, &o)| {
                self.topic
                    .partition(p)
                    .ok()
                    .map(|log| log.latest_offset().saturating_sub(o))
            })
            .sum()
    }
}

/// Splits a topic's partitions across `members` consumers round-robin — the
/// broker-side half of Kafka's consumer-group assignment.
///
/// # Examples
///
/// ```
/// use approxiot_mq::assign_partitions;
///
/// assert_eq!(assign_partitions(5, 2), vec![vec![0, 2, 4], vec![1, 3]]);
/// ```
pub fn assign_partitions(partitions: u32, members: usize) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new(); members.max(1)];
    for p in 0..partitions {
        out[(p as usize) % members.max(1)].push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Broker;
    use crate::producer::BatchProducer;
    use approxiot_core::{StratumId, StreamItem};
    use std::thread;

    fn batch(value: f64) -> Batch {
        Batch::from_items(vec![StreamItem::new(StratumId::new(0), value)])
    }

    fn setup(partitions: u32) -> (Broker, Arc<Topic>, BatchProducer) {
        let broker = Broker::new();
        let topic = broker.create_topic("t", partitions).expect("create");
        let producer = BatchProducer::new(Arc::clone(&topic));
        (broker, topic, producer)
    }

    #[test]
    fn consumes_from_earliest() {
        let (_b, topic, producer) = setup(1);
        producer.send(&batch(1.0)).expect("send");
        producer.send(&batch(2.0)).expect("send");
        let mut consumer = Consumer::subscribe_all(topic, StartOffset::Earliest);
        let got = consumer.poll(10, Duration::ZERO).expect("poll");
        assert_eq!(got.len(), 2);
        assert_eq!(consumer.position(0), Some(2));
        assert_eq!(consumer.lag(), 0);
    }

    #[test]
    fn latest_skips_history() {
        let (_b, topic, producer) = setup(1);
        producer.send(&batch(1.0)).expect("send");
        let mut consumer = Consumer::subscribe_all(Arc::clone(&topic), StartOffset::Latest);
        assert!(consumer.poll(10, Duration::ZERO).expect("poll").is_empty());
        producer.send(&batch(2.0)).expect("send");
        let got = consumer.poll_batches(10, Duration::ZERO).expect("poll");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.items[0].value, 2.0);
    }

    #[test]
    fn poll_round_robins_partitions() {
        let (_b, topic, producer) = setup(2);
        for i in 0..4 {
            producer.send_to(i % 2, &batch(i as f64), 0).expect("send");
        }
        let mut consumer = Consumer::subscribe_all(topic, StartOffset::Earliest);
        let got = consumer.poll(10, Duration::ZERO).expect("poll");
        assert_eq!(got.len(), 4);
        let p0 = got.iter().filter(|r| r.partition == 0).count();
        assert_eq!(p0, 2);
    }

    #[test]
    fn blocked_poll_into_still_wakes_on_produce() {
        // Regression for the poll/poll_into unification: the blocking
        // second phase must still park on the partition condvar and wake
        // when a producer appends, not just spin the non-blocking sweep.
        let (_b, topic, producer) = setup(2);
        let mut consumer = Consumer::subscribe_all(Arc::clone(&topic), StartOffset::Earliest);
        let mut buf = Vec::new();
        // Warm the buffer so the wake-up delivery is allocation-free too.
        assert_eq!(consumer.poll_into(&mut buf, 10, Duration::ZERO), Ok(0));
        let waker = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            producer.send_to(0, &batch(9.0), 0).expect("send");
        });
        let start = std::time::Instant::now();
        let got = consumer
            .poll_into(&mut buf, 10, Duration::from_secs(5))
            .expect("poll");
        assert_eq!(got, 1);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].partition, 0);
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "woke on produce, not on timeout"
        );
        waker.join().expect("join");
    }

    #[test]
    fn poll_into_reuses_buffer_and_replaces_contents() {
        let (_b, topic, producer) = setup(1);
        for i in 0..8 {
            producer.send(&batch(i as f64)).expect("send");
        }
        let mut consumer = Consumer::subscribe_all(topic, StartOffset::Earliest);
        let mut buf = Vec::new();
        assert_eq!(consumer.poll_into(&mut buf, 4, Duration::ZERO), Ok(4));
        let warm = buf.capacity();
        let first_offsets: Vec<u64> = buf.iter().map(|r| r.offset).collect();
        assert_eq!(first_offsets, vec![0, 1, 2, 3]);
        assert_eq!(consumer.poll_into(&mut buf, 4, Duration::ZERO), Ok(4));
        let second_offsets: Vec<u64> = buf.iter().map(|r| r.offset).collect();
        assert_eq!(second_offsets, vec![4, 5, 6, 7], "contents replaced");
        assert_eq!(buf.capacity(), warm, "no per-poll growth");
    }

    #[test]
    fn blocking_poll_wakes_on_produce() {
        let (_b, topic, producer) = setup(1);
        let mut consumer = Consumer::subscribe_all(Arc::clone(&topic), StartOffset::Earliest);
        let waker = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            producer.send(&batch(9.0)).expect("send");
        });
        let got = consumer.poll(10, Duration::from_secs(5)).expect("poll");
        assert_eq!(got.len(), 1);
        waker.join().expect("join");
    }

    #[test]
    fn closed_and_drained_reports_closed() {
        let (broker, topic, producer) = setup(2);
        producer.send_to(0, &batch(1.0), 0).expect("send");
        broker.close();
        let mut consumer = Consumer::subscribe_all(topic, StartOffset::Earliest);
        // Drain the remaining record first.
        let got = consumer.poll(10, Duration::ZERO).expect("poll");
        assert_eq!(got.len(), 1);
        assert!(matches!(
            consumer.poll(10, Duration::ZERO),
            Err(MqError::Closed)
        ));
    }

    #[test]
    fn retention_reset_recovers_lost_offsets() {
        let broker = Broker::new();
        let topic = broker
            .create_topic_with_retention("t", 1, 2)
            .expect("create");
        let producer = BatchProducer::new(Arc::clone(&topic));
        let mut consumer = Consumer::subscribe_all(Arc::clone(&topic), StartOffset::Earliest);
        for i in 0..10 {
            producer.send(&batch(i as f64)).expect("send");
        }
        // Offsets 0..8 were truncated; consumer transparently resumes at 8.
        let got = consumer.poll(10, Duration::ZERO).expect("poll");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].offset, 8);
    }

    #[test]
    fn seek_rewinds() {
        let (_b, topic, producer) = setup(1);
        producer.send(&batch(1.0)).expect("send");
        let mut consumer = Consumer::subscribe_all(topic, StartOffset::Earliest);
        consumer.poll(10, Duration::ZERO).expect("poll");
        consumer.seek(0, 0);
        let again = consumer.poll(10, Duration::ZERO).expect("poll");
        assert_eq!(again.len(), 1);
    }

    #[test]
    fn subscription_subset() {
        let (_b, topic, producer) = setup(3);
        producer.send_to(0, &batch(0.0), 0).expect("send");
        producer.send_to(1, &batch(1.0), 0).expect("send");
        producer.send_to(2, &batch(2.0), 0).expect("send");
        let mut consumer = Consumer::subscribe(topic, &[1], StartOffset::Earliest);
        assert_eq!(consumer.assignment(), vec![1]);
        let got = consumer.poll(10, Duration::ZERO).expect("poll");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].partition, 1);
    }

    #[test]
    fn assign_partitions_round_robin() {
        assert_eq!(assign_partitions(4, 2), vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(assign_partitions(2, 3), vec![vec![0], vec![1], vec![]]);
        assert_eq!(
            assign_partitions(3, 0),
            vec![vec![0, 1, 2]],
            "zero members clamped to one"
        );
    }

    #[test]
    fn lag_counts_unread_records() {
        let (_b, topic, producer) = setup(1);
        let consumer = Consumer::subscribe_all(Arc::clone(&topic), StartOffset::Earliest);
        producer.send(&batch(1.0)).expect("send");
        producer.send(&batch(2.0)).expect("send");
        assert_eq!(consumer.lag(), 2);
    }
}

#[cfg(test)]
mod committed_offset_tests {
    use super::*;
    use crate::broker::Broker;
    use crate::offsets::OffsetStore;
    use crate::producer::BatchProducer;
    use approxiot_core::{Batch, StratumId, StreamItem};

    fn b(v: f64) -> Batch {
        Batch::from_items(vec![StreamItem::new(StratumId::new(0), v)])
    }

    #[test]
    fn consumer_resumes_from_committed_offsets() {
        let broker = Broker::new();
        let topic = broker.create_topic("t", 1).expect("create");
        let producer = BatchProducer::new(Arc::clone(&topic));
        let store = OffsetStore::new();
        for i in 0..5 {
            producer.send(&b(i as f64)).expect("send");
        }
        // First consumer reads 3 records and commits.
        let mut first = Consumer::subscribe_all(Arc::clone(&topic), StartOffset::Earliest);
        let got = first.poll(3, Duration::ZERO).expect("poll");
        assert_eq!(got.len(), 3);
        first.commit("analytics", &store);
        drop(first);
        // A restarted member resumes at offset 3, not 0.
        let mut second =
            Consumer::subscribe_committed(topic, "analytics", &store, StartOffset::Earliest);
        let rest = second.poll(10, Duration::ZERO).expect("poll");
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].offset, 3);
    }

    #[test]
    fn uncommitted_partitions_use_fallback() {
        let broker = Broker::new();
        let topic = broker.create_topic("t", 2).expect("create");
        let producer = BatchProducer::new(Arc::clone(&topic));
        let store = OffsetStore::new();
        producer.send_to(0, &b(1.0), 0).expect("send");
        producer.send_to(1, &b(2.0), 0).expect("send");
        store.commit("g", "t", 0, 1); // partition 0 fully consumed
        let mut consumer = Consumer::subscribe_committed(topic, "g", &store, StartOffset::Earliest);
        let got = consumer.poll(10, Duration::ZERO).expect("poll");
        assert_eq!(
            got.len(),
            1,
            "only partition 1 (fallback earliest) has data left"
        );
        assert_eq!(got[0].partition, 1);
    }
}
