//! # approxiot-mq
//!
//! An in-process, partitioned publish/subscribe broker: the reproduction's
//! substitute for Apache Kafka (which the ApproxIoT paper's prototype is
//! built on).
//!
//! The ApproxIoT design only needs four properties from its messaging
//! substrate, and this crate provides all of them:
//!
//! 1. **Named topics** decoupling the edge-computing layers — one topic per
//!    layer of the logical tree (paper §IV, Figure 4).
//! 2. **Partitioned, offset-addressed logs** so consumers track their own
//!    progress and multiple sampling workers can share a layer.
//! 3. **Blocking consumption with backpressure-adjacent retention** —
//!    bounded logs whose truncation surfaces to slow consumers.
//! 4. **A wire format** so the network layer can meter real bytes for the
//!    bandwidth-saving experiment (Figure 7).
//!
//! ## Example
//!
//! ```
//! use approxiot_core::{Batch, StratumId, StreamItem};
//! use approxiot_mq::{BatchProducer, Broker, Consumer, StartOffset};
//! use std::time::Duration;
//!
//! let broker = Broker::new();
//! let topic = broker.create_topic("edge-layer-1", 4)?;
//!
//! let producer = BatchProducer::new(topic.clone());
//! producer.send(&Batch::from_items(vec![StreamItem::new(StratumId::new(0), 21.5)]))?;
//!
//! let mut consumer = Consumer::subscribe_all(topic, StartOffset::Earliest);
//! let batches = consumer.poll_batches(16, Duration::from_millis(10))?;
//! assert_eq!(batches[0].1.items[0].value, 21.5);
//! # Ok::<(), approxiot_mq::MqError>(())
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod broker;
pub mod codec;
pub mod consumer;
pub mod error;
pub mod group;
pub mod log;
pub mod offsets;
pub mod producer;
pub mod record;
pub mod topic;

pub use broker::{Broker, DEFAULT_RETENTION};
pub use consumer::{assign_partitions, Consumer, StartOffset};
pub use error::MqError;
pub use group::{GroupCoordinator, Membership, UnknownMemberError};
pub use log::PartitionLog;
pub use offsets::OffsetStore;
pub use producer::BatchProducer;
pub use record::{ProducerRecord, Record};
pub use topic::{Partitioner, Topic};
