//! Records: the unit of storage and delivery in the broker.

use bytes::Bytes;

/// A record as stored in a partition log and handed to consumers.
///
/// `offset` is assigned by the partition at append time and is strictly
/// increasing; `timestamp` is the producer-supplied event time in
/// nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Partition the record lives in.
    pub partition: u32,
    /// Monotonic position within the partition.
    pub offset: u64,
    /// Producer-supplied event time (nanoseconds).
    pub timestamp: u64,
    /// Optional partitioning key.
    pub key: Option<Bytes>,
    /// The payload.
    pub value: Bytes,
}

impl Record {
    /// Total payload size in bytes (key + value), used by the network layer
    /// for bytes-on-wire accounting.
    pub fn payload_len(&self) -> usize {
        self.key.as_ref().map_or(0, |k| k.len()) + self.value.len()
    }
}

/// A record as handed to the broker by a producer (before offset
/// assignment).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProducerRecord {
    /// Optional partitioning key; records with the same key land in the
    /// same partition.
    pub key: Option<Bytes>,
    /// The payload.
    pub value: Bytes,
    /// Event time in nanoseconds (0 when unknown).
    pub timestamp: u64,
}

impl ProducerRecord {
    /// Creates a record carrying `value` with no key.
    pub fn new(value: impl Into<Bytes>) -> Self {
        ProducerRecord {
            key: None,
            value: value.into(),
            timestamp: 0,
        }
    }

    /// Sets the partitioning key.
    pub fn with_key(mut self, key: impl Into<Bytes>) -> Self {
        self.key = Some(key.into());
        self
    }

    /// Sets the event timestamp (nanoseconds).
    pub fn with_timestamp(mut self, timestamp: u64) -> Self {
        self.timestamp = timestamp;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_record_builder() {
        let r = ProducerRecord::new(&b"payload"[..])
            .with_key(&b"k"[..])
            .with_timestamp(42);
        assert_eq!(r.key.as_deref(), Some(&b"k"[..]));
        assert_eq!(r.value.as_ref(), b"payload");
        assert_eq!(r.timestamp, 42);
    }

    #[test]
    fn payload_len_counts_key_and_value() {
        let rec = Record {
            partition: 0,
            offset: 0,
            timestamp: 0,
            key: Some(Bytes::from_static(b"ab")),
            value: Bytes::from_static(b"cdef"),
        };
        assert_eq!(rec.payload_len(), 6);
        let no_key = Record { key: None, ..rec };
        assert_eq!(no_key.payload_len(), 4);
    }
}
