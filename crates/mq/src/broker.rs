//! The broker: a registry of topics shared across threads.

use crate::error::MqError;
use crate::topic::Topic;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default per-partition retention (records).
pub const DEFAULT_RETENTION: usize = 1 << 20;

/// An in-process broker holding named topics.
///
/// Cheap to clone handles via [`Arc`]; all methods take `&self`.
///
/// # Examples
///
/// ```
/// use approxiot_mq::{Broker, ProducerRecord};
///
/// let broker = Broker::new();
/// broker.create_topic("edge-layer-1", 4)?;
/// let topic = broker.topic("edge-layer-1")?;
/// topic.append(ProducerRecord::new(&b"reading"[..]))?;
/// assert_eq!(topic.len(), 1);
/// # Ok::<(), approxiot_mq::MqError>(())
/// ```
#[derive(Debug, Default)]
pub struct Broker {
    // BTreeMap, not HashMap: `close()` and `topic_names()` iterate the
    // registry, and iteration order must not depend on hash state.
    topics: RwLock<BTreeMap<String, Arc<Topic>>>,
}

impl Broker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        Broker::default()
    }

    /// Creates a topic with the default retention.
    ///
    /// # Errors
    ///
    /// Returns [`MqError::TopicExists`] if the name is taken.
    pub fn create_topic(&self, name: &str, partitions: u32) -> Result<Arc<Topic>, MqError> {
        self.create_topic_with_retention(name, partitions, DEFAULT_RETENTION)
    }

    /// Creates a topic with explicit per-partition retention.
    ///
    /// # Errors
    ///
    /// Returns [`MqError::TopicExists`] if the name is taken.
    pub fn create_topic_with_retention(
        &self,
        name: &str,
        partitions: u32,
        retention: usize,
    ) -> Result<Arc<Topic>, MqError> {
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(MqError::TopicExists(name.to_string()));
        }
        let topic = Arc::new(Topic::new(name, partitions, retention));
        topics.insert(name.to_string(), Arc::clone(&topic));
        Ok(topic)
    }

    /// Looks up an existing topic.
    ///
    /// # Errors
    ///
    /// Returns [`MqError::UnknownTopic`] when absent.
    pub fn topic(&self, name: &str) -> Result<Arc<Topic>, MqError> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| MqError::UnknownTopic(name.to_string()))
    }

    /// Returns the topic, creating it (with `partitions`) when missing.
    pub fn topic_or_create(&self, name: &str, partitions: u32) -> Arc<Topic> {
        if let Ok(t) = self.topic(name) {
            return t;
        }
        // Take the write lock once and decide under it; this cannot race
        // with a concurrent creator the way lookup-then-create would.
        let mut topics = self.topics.write();
        match topics.get(name) {
            Some(t) => Arc::clone(t),
            None => {
                let topic = Arc::new(Topic::new(name, partitions, DEFAULT_RETENTION));
                topics.insert(name.to_string(), Arc::clone(&topic));
                topic
            }
        }
    }

    /// Deletes a topic, closing its partitions.
    ///
    /// # Errors
    ///
    /// Returns [`MqError::UnknownTopic`] when absent.
    pub fn delete_topic(&self, name: &str) -> Result<(), MqError> {
        let topic = self
            .topics
            .write()
            .remove(name)
            .ok_or_else(|| MqError::UnknownTopic(name.to_string()))?;
        topic.close();
        Ok(())
    }

    /// Names of all topics, sorted.
    pub fn topic_names(&self) -> Vec<String> {
        self.topics.read().keys().cloned().collect()
    }

    /// Closes every topic (in-flight readers drain then observe `Closed`).
    pub fn close(&self) {
        for topic in self.topics.read().values() {
            topic.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ProducerRecord;
    use std::thread;

    #[test]
    fn create_and_lookup() {
        let broker = Broker::new();
        broker.create_topic("a", 2).expect("create");
        assert_eq!(broker.topic("a").expect("lookup").partition_count(), 2);
        assert!(matches!(broker.topic("b"), Err(MqError::UnknownTopic(_))));
    }

    #[test]
    fn duplicate_creation_fails() {
        let broker = Broker::new();
        broker.create_topic("a", 1).expect("create");
        assert!(matches!(
            broker.create_topic("a", 1),
            Err(MqError::TopicExists(_))
        ));
    }

    #[test]
    fn topic_or_create_is_idempotent() {
        let broker = Broker::new();
        let t1 = broker.topic_or_create("x", 3);
        let t2 = broker.topic_or_create("x", 99);
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(t2.partition_count(), 3, "second call does not resize");
    }

    #[test]
    fn delete_closes_topic() {
        let broker = Broker::new();
        let t = broker.create_topic("a", 1).expect("create");
        broker.delete_topic("a").expect("delete");
        assert!(matches!(broker.topic("a"), Err(MqError::UnknownTopic(_))));
        assert!(matches!(
            t.append(ProducerRecord::new(&b"x"[..])),
            Err(MqError::Closed)
        ));
        assert!(broker.delete_topic("a").is_err());
    }

    #[test]
    fn topic_names_sorted() {
        let broker = Broker::new();
        broker.create_topic("zeta", 1).expect("create");
        broker.create_topic("alpha", 1).expect("create");
        assert_eq!(broker.topic_names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn concurrent_topic_or_create_yields_one_topic() {
        let broker = Arc::new(Broker::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let broker = Arc::clone(&broker);
                thread::spawn(move || broker.topic_or_create("shared", 2))
            })
            .collect();
        let topics: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect();
        for t in &topics[1..] {
            assert!(Arc::ptr_eq(&topics[0], t));
        }
    }

    #[test]
    fn close_all_topics() {
        let broker = Broker::new();
        let a = broker.create_topic("a", 1).expect("create");
        let b = broker.create_topic("b", 1).expect("create");
        broker.close();
        assert!(a.append(ProducerRecord::new(&b"x"[..])).is_err());
        assert!(b.append(ProducerRecord::new(&b"x"[..])).is_err());
    }
}
