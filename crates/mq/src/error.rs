//! Error types for broker operations.

use std::fmt;

/// Errors returned by broker, producer and consumer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MqError {
    /// The named topic does not exist.
    UnknownTopic(String),
    /// A topic with this name already exists.
    TopicExists(String),
    /// The partition index is out of range for the topic.
    PartitionOutOfRange {
        /// Requested partition.
        partition: u32,
        /// Number of partitions in the topic.
        partitions: u32,
    },
    /// The requested offset was truncated by retention; the earliest
    /// retained offset is attached.
    OffsetOutOfRange {
        /// Requested offset.
        requested: u64,
        /// Earliest offset still retained.
        earliest: u64,
    },
    /// The broker (or topic) has been closed.
    Closed,
    /// A frame failed to decode.
    Codec(String),
}

impl fmt::Display for MqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MqError::UnknownTopic(name) => write!(f, "unknown topic `{name}`"),
            MqError::TopicExists(name) => write!(f, "topic `{name}` already exists"),
            MqError::PartitionOutOfRange {
                partition,
                partitions,
            } => {
                write!(
                    f,
                    "partition {partition} out of range (topic has {partitions})"
                )
            }
            MqError::OffsetOutOfRange {
                requested,
                earliest,
            } => {
                write!(
                    f,
                    "offset {requested} truncated by retention (earliest is {earliest})"
                )
            }
            MqError::Closed => write!(f, "broker is closed"),
            MqError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for MqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            MqError::UnknownTopic("t".into()).to_string(),
            "unknown topic `t`"
        );
        assert!(MqError::PartitionOutOfRange {
            partition: 5,
            partitions: 2
        }
        .to_string()
        .contains("out of range"));
        assert!(MqError::OffsetOutOfRange {
            requested: 1,
            earliest: 10
        }
        .to_string()
        .contains("truncated"));
        assert_eq!(MqError::Closed.to_string(), "broker is closed");
        assert!(MqError::Codec("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MqError>();
    }
}
