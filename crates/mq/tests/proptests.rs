//! Property-based tests on the broker's log, codec and group invariants.

use approxiot_core::{Batch, StratumId, StreamItem, WeightMap};
use approxiot_mq::codec::{decode_batch, encode_batch, encoded_len};
use approxiot_mq::{assign_partitions, Broker, GroupCoordinator, PartitionLog, ProducerRecord};
use bytes::Bytes;
use proptest::prelude::*;
use std::time::Duration;

fn arb_batch() -> impl Strategy<Value = Batch> {
    (
        proptest::collection::vec((0u32..16, -1e9f64..1e9, 0u64..1000, 0u64..1_000_000), 0..50),
        proptest::collection::vec((0u32..16, 1.0f64..1e6), 0..8),
    )
        .prop_map(|(items, weights)| {
            let mut map = WeightMap::new();
            for (s, w) in weights {
                map.set(StratumId::new(s), w);
            }
            Batch::with_weights(
                map,
                items
                    .into_iter()
                    .map(|(s, v, seq, ts)| StreamItem::with_meta(StratumId::new(s), v, seq, ts))
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The codec round-trips arbitrary batches bit-exactly and the
    /// predicted length matches the frame.
    #[test]
    fn codec_roundtrip_and_length(batch in arb_batch()) {
        let frame = encode_batch(&batch);
        prop_assert_eq!(frame.len(), encoded_len(&batch));
        let decoded = decode_batch(&frame).expect("well-formed frame");
        prop_assert_eq!(decoded, batch);
    }

    /// Every truncation of a valid frame fails to decode (no partial reads).
    #[test]
    fn codec_rejects_all_truncations(batch in arb_batch(), cut in 0usize..100) {
        let frame = encode_batch(&batch);
        if frame.is_empty() {
            return Ok(());
        }
        let len = cut % frame.len();
        prop_assert!(decode_batch(&frame[..len]).is_err());
    }

    /// The buffer-reusing codec paths agree with the one-shot ones: a
    /// recycled `BytesMut` encodes the same bytes, and a recycled `Batch`
    /// decodes to the same contents — including when the buffers carry
    /// stale state from a previous (differently sized) frame.
    #[test]
    fn codec_reuse_paths_match_one_shot(first in arb_batch(), second in arb_batch()) {
        let mut buf = bytes::BytesMut::new();
        let mut recycled = Batch::new();
        for batch in [&first, &second] {
            approxiot_mq::codec::encode_batch_into(batch, &mut buf);
            prop_assert_eq!(&buf[..], &encode_batch(batch)[..]);
            prop_assert_eq!(buf.len(), encoded_len(batch));
            approxiot_mq::codec::decode_batch_into(&buf, &mut recycled).expect("well-formed");
            prop_assert_eq!(&recycled, batch);
        }
    }

    /// Truncation is rejected at *every* prefix length of an arbitrary
    /// frame — not just a sampled one — and never leaves a recycled batch
    /// partially decoded.
    #[test]
    fn codec_rejects_every_prefix_length(batch in arb_batch()) {
        let frame = encode_batch(&batch);
        let mut recycled = Batch::new();
        for len in 0..frame.len() {
            prop_assert!(
                approxiot_mq::codec::decode_batch_into(&frame[..len], &mut recycled).is_err(),
                "prefix of {len} bytes must not decode"
            );
            prop_assert!(recycled.is_empty(), "failed decode left items behind");
            prop_assert!(recycled.weights.is_empty(), "failed decode left weights behind");
        }
    }

    /// Corrupting any single byte of a valid frame never panics the
    /// decoder: it either errs gracefully with `MqError::Codec` (or an
    /// equally graceful non-codec error is impossible here) or decodes to
    /// some batch whose re-encoding is consistent with the frame length.
    #[test]
    fn codec_corruption_never_panics(batch in arb_batch(), pos in 0usize..2000, flip in 1u8..=255) {
        let mut frame = encode_batch(&batch).to_vec();
        if frame.is_empty() {
            return Ok(());
        }
        let pos = pos % frame.len();
        frame[pos] ^= flip;
        match decode_batch(&frame) {
            Err(approxiot_mq::MqError::Codec(_)) => {}
            Err(e) => prop_assert!(false, "corruption surfaced a non-codec error: {e}"),
            Ok(decoded) => {
                // A flipped byte can still be a valid frame (e.g. a value
                // byte changed, or two weight entries' strata collided and
                // merged), so the re-encoding can only shrink — and must
                // itself round-trip cleanly.
                prop_assert!(encoded_len(&decoded) <= frame.len());
                let reencoded = encode_batch(&decoded);
                prop_assert_eq!(decode_batch(&reencoded).expect("re-encode decodes"), decoded);
            }
        }
    }

    /// Feeding the decoder arbitrary bytes never panics.
    #[test]
    fn codec_survives_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        match decode_batch(&bytes) {
            Ok(decoded) => {
                prop_assert!(encoded_len(&decoded) <= bytes.len());
                let reencoded = encode_batch(&decoded);
                prop_assert_eq!(decode_batch(&reencoded).expect("re-encode decodes"), decoded);
            }
            Err(approxiot_mq::MqError::Codec(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// Log appends assign dense offsets and reads return exactly the asked
    /// range, regardless of retention.
    #[test]
    fn log_offsets_are_dense(
        appends in 1usize..200,
        retention in 1usize..64,
        read_from in 0u64..250,
        max in 1usize..64,
    ) {
        let log = PartitionLog::new(0, retention);
        for i in 0..appends {
            let offset = log.append(approxiot_mq::Record {
                partition: 0,
                offset: 0,
                timestamp: i as u64,
                key: None,
                value: Bytes::from(vec![i as u8]),
            }).expect("append");
            prop_assert_eq!(offset, i as u64);
        }
        prop_assert_eq!(log.latest_offset(), appends as u64);
        prop_assert_eq!(log.len(), appends.min(retention));
        match log.read_from(read_from, max, Duration::ZERO) {
            Ok(records) => {
                // Offsets are consecutive starting at read_from.
                for (i, r) in records.iter().enumerate() {
                    prop_assert_eq!(r.offset, read_from + i as u64);
                }
                prop_assert!(records.len() <= max);
            }
            Err(approxiot_mq::MqError::OffsetOutOfRange { earliest, .. }) => {
                prop_assert!(read_from < earliest);
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// Partition assignment is an exact partition of the topic, balanced to
    /// within one.
    #[test]
    fn assignment_partitions_exactly(partitions in 1u32..64, members in 1usize..16) {
        let split = assign_partitions(partitions, members);
        prop_assert_eq!(split.len(), members);
        let mut all: Vec<u32> = split.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..partitions).collect::<Vec<_>>());
        let min = split.iter().map(Vec::len).min().unwrap_or(0);
        let max = split.iter().map(Vec::len).max().unwrap_or(0);
        prop_assert!(max - min <= 1, "imbalanced: {min}..{max}");
    }

    /// Group membership churn always leaves the partitions exactly covered
    /// by the surviving members.
    #[test]
    fn group_churn_keeps_exact_coverage(
        partitions in 1u32..16,
        ops in proptest::collection::vec(proptest::bool::ANY, 1..30),
    ) {
        let broker = Broker::new();
        let topic = broker.create_topic("t", partitions).expect("create");
        let group = GroupCoordinator::new(topic);
        let mut members: Vec<u64> = Vec::new();
        for join in ops {
            if join || members.is_empty() {
                members.push(group.join().member_id);
            } else {
                let id = members.remove(members.len() / 2);
                group.leave(id).expect("member exists");
            }
            // Invariant: while any member is live, their partitions tile
            // the topic exactly (an empty group trivially covers nothing).
            if !members.is_empty() {
                let mut covered: Vec<u32> = members
                    .iter()
                    .flat_map(|&id| group.assignment(id).expect("live member").partitions)
                    .collect();
                covered.sort_unstable();
                prop_assert_eq!(covered, (0..partitions).collect::<Vec<_>>());
            }
        }
    }

    /// Keyed records always map to a valid partition, deterministically.
    #[test]
    fn keyed_partitioning_is_stable(key in proptest::collection::vec(any::<u8>(), 0..32), partitions in 1u32..32) {
        let broker = Broker::new();
        let topic = broker.create_topic("t", partitions).expect("create");
        let record = ProducerRecord::new(&b"v"[..]).with_key(key.clone());
        let p1 = topic.partition_for(&record);
        let p2 = topic.partition_for(&ProducerRecord::new(&b"other"[..]).with_key(key));
        prop_assert!(p1 < partitions);
        prop_assert_eq!(p1, p2);
    }
}
