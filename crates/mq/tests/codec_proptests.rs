//! Fuzz-style property tests for the columnar v2 wire frame.
//!
//! Four invariants pin the codec against the v1 path:
//!
//! 1. **Cross-layout equality** — the same logical batch encoded as an AoS
//!    v1 frame and as a columnar v2 frame decodes to identical contents,
//!    whichever decoder (layout-specific or version-sniffing) reads it.
//! 2. **Prefix rejection** — every strict prefix of a valid v2 frame fails
//!    to decode; there are no partial reads.
//! 3. **No panics on garbage** — arbitrary bytes never panic any decoder;
//!    they either decode (vanishingly unlikely) or return an error.
//! 4. **Cross-version rejection** — the v1 decoder names the v2 frame it
//!    refuses, and vice versa, so misrouted frames fail loudly rather than
//!    silently misparse.
//!
//! The same invariants extend to the v3 summary frame: round-trip over
//! arbitrary observation multisets, every-prefix rejection, garbage never
//! panics, and three-way cross-version rejection by name.

use approxiot_core::{
    Batch, ColumnarBatch, SketchConfig, StratumId, StratumSummaries, StreamItem, WeightMap,
};
use approxiot_mq::codec::{
    decode_batch, decode_batch_any_into, decode_batch_into, decode_columns, decode_columns_into,
    decode_summaries, decode_summaries_into, encode_batch, encode_batch_v2_into, encode_columns,
    encode_summaries, encoded_len_columns, encoded_len_summaries, encoded_len_v2,
};
use bytes::BytesMut;
use proptest::prelude::*;

fn arb_batch() -> impl Strategy<Value = Batch> {
    (
        proptest::collection::vec((0u32..16, -1e9f64..1e9, 0u64..1000, 0u64..1_000_000), 0..50),
        proptest::collection::vec((0u32..16, 1.0f64..1e6), 0..8),
    )
        .prop_map(|(items, weights)| {
            let mut map = WeightMap::new();
            for (s, w) in weights {
                map.set(StratumId::new(s), w);
            }
            Batch::with_weights(
                map,
                items
                    .into_iter()
                    .map(|(s, v, seq, ts)| StreamItem::with_meta(StratumId::new(s), v, seq, ts))
                    .collect(),
            )
        })
}

/// Window summaries built from an arbitrary observation multiset under a
/// small arbitrary config.
fn arb_summaries() -> impl Strategy<Value = (SketchConfig, u64, Vec<(u64, StratumSummaries)>)> {
    (
        (0u32..32, 0u32..8),
        any::<u64>(),
        proptest::collection::vec(
            proptest::collection::vec((0u32..16, -1e9f64..1e9), 0..60),
            0..4,
        ),
    )
        .prop_map(|((kll_k, heavy_capacity), seed, windows)| {
            let config = SketchConfig::new(kll_k, heavy_capacity);
            let windows = windows
                .into_iter()
                .enumerate()
                .map(|(w, observations)| {
                    let mut summaries = StratumSummaries::new(config, seed);
                    for (i, (stratum, value)) in observations.into_iter().enumerate() {
                        summaries.observe(StratumId::new(stratum), i as u64, value);
                    }
                    (w as u64, summaries)
                })
                .collect();
            (config, seed, windows)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// v1 and v2 frames of the same batch decode to equal contents, via
    /// every decoder entry point, and the v2 length prediction holds.
    #[test]
    fn v2_roundtrip_matches_v1(batch in arb_batch()) {
        let v1 = encode_batch(&batch);
        let columns = ColumnarBatch::from_batch(&batch);
        let v2 = encode_columns(&columns);
        prop_assert_eq!(v2.len(), encoded_len_columns(&columns));
        prop_assert_eq!(v2.len(), encoded_len_v2(&batch));

        // Both strided-encode entry points emit identical bytes.
        let mut buf = BytesMut::new();
        encode_batch_v2_into(&batch, &mut buf);
        prop_assert_eq!(&buf[..], &v2[..]);

        // Layout-specific decoders agree across layouts.
        let from_v1 = decode_batch(&v1).expect("well-formed v1 frame");
        let from_v2 = decode_columns(&v2).expect("well-formed v2 frame");
        prop_assert_eq!(&from_v2.to_batch(), &from_v1);
        prop_assert_eq!(&from_v1, &batch);

        // The version-sniffing decoder accepts both and agrees too.
        let mut any = Batch::new();
        decode_batch_any_into(&v1, &mut any).expect("v1 via any");
        prop_assert_eq!(&any, &batch);
        decode_batch_any_into(&v2, &mut any).expect("v2 via any");
        prop_assert_eq!(&any, &batch);
    }

    /// Every strict prefix of a v2 frame is rejected, and the recycled
    /// output columns come back empty after the failure.
    #[test]
    fn v2_rejects_every_prefix(batch in arb_batch(), cut in 0usize..100) {
        let columns = ColumnarBatch::from_batch(&batch);
        let frame = encode_columns(&columns);
        let len = cut % frame.len(); // frame is never empty (header + counts)
        let mut out = ColumnarBatch::from_batch(&batch); // stale contents
        prop_assert!(decode_columns_into(&frame[..len], &mut out).is_err());
        prop_assert!(out.is_empty(), "failed decode must clear the output");
        let mut aos = Batch::new();
        prop_assert!(decode_batch_any_into(&frame[..len], &mut aos).is_err());
        prop_assert!(aos.is_empty());
    }

    /// Arbitrary bytes never panic any decoder.
    #[test]
    fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut columns = ColumnarBatch::new();
        let _ = decode_columns_into(&bytes, &mut columns);
        let mut batch = Batch::new();
        let _ = decode_batch_into(&bytes, &mut batch);
        let _ = decode_batch_any_into(&bytes, &mut batch);
        let mut windows = Vec::new();
        let _ = decode_summaries_into(&bytes, &mut windows);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Magic-stamped garbage: a valid header followed by arbitrary bytes
    /// exercises the body parsers far more often than pure noise, and
    /// must still never panic the summary decoder (whose body layout has
    /// the most internal structure of the three).
    #[test]
    fn summary_decoder_never_panics_on_stamped_garbage(
        version in 0u8..5,
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut frame = vec![0x07, 0xA1, version];
        frame.extend_from_slice(&bytes);
        let mut windows = Vec::new();
        let _ = decode_summaries_into(&frame, &mut windows);
        let mut batch = Batch::new();
        let _ = decode_batch_any_into(&frame, &mut batch);
    }

    /// A v3 frame round-trips bit-exactly for any observation multiset
    /// and config, and the length prediction is exact.
    #[test]
    fn v3_roundtrip_preserves_summaries(arb in arb_summaries()) {
        let (config, seed, windows) = arb;
        let frame = encode_summaries(config, seed, &windows);
        prop_assert_eq!(frame.len(), encoded_len_summaries(&windows));
        let decoded = decode_summaries(&frame).expect("well-formed v3 frame");
        prop_assert_eq!(decoded, windows);
    }

    /// Every strict prefix of a v3 frame is rejected, and the recycled
    /// output vector comes back empty after the failure.
    #[test]
    fn v3_rejects_every_prefix(arb in arb_summaries(), cut in 0usize..4096) {
        let (config, seed, windows) = arb;
        let frame = encode_summaries(config, seed, &windows);
        let len = cut % frame.len(); // frame is never empty (header + counts)
        let mut out = windows.clone(); // stale contents
        prop_assert!(decode_summaries_into(&frame[..len], &mut out).is_err());
        prop_assert!(out.is_empty(), "failed decode must clear the output");
    }

    /// Misrouted v3 frames are rejected by name from every item decoder,
    /// and the v3 decoder names the item frames it refuses.
    #[test]
    fn v3_cross_version_frames_rejected_by_name(batch in arb_batch(), arb in arb_summaries()) {
        let (config, seed, windows) = arb;
        let v3 = encode_summaries(config, seed, &windows);

        let mut aos = Batch::new();
        let err = decode_batch_into(&v3, &mut aos).expect_err("v3 into v1 decoder");
        prop_assert!(err.to_string().contains("summary v3 frame"), "got: {err}");
        let err = decode_batch_any_into(&v3, &mut aos).expect_err("v3 into any-decoder");
        prop_assert!(err.to_string().contains("summary v3 frame"), "got: {err}");
        let mut columns = ColumnarBatch::new();
        let err = decode_columns_into(&v3, &mut columns).expect_err("v3 into columnar");
        prop_assert!(err.to_string().contains("summary v3 frame"), "got: {err}");

        let err = decode_summaries(&encode_batch(&batch)).expect_err("v1 into summary decoder");
        prop_assert!(err.to_string().contains("AoS v1 frame"), "got: {err}");
        let v2 = encode_columns(&ColumnarBatch::from_batch(&batch));
        let err = decode_summaries(&v2).expect_err("v2 into summary decoder");
        prop_assert!(err.to_string().contains("columnar v2 frame"), "got: {err}");
    }

    /// Misrouted frames are rejected with an error naming the other
    /// version, for any batch shape.
    #[test]
    fn cross_version_frames_rejected_by_name(batch in arb_batch()) {
        let v1 = encode_batch(&batch);
        let v2 = encode_columns(&ColumnarBatch::from_batch(&batch));

        let mut columns = ColumnarBatch::from_batch(&batch);
        let err = decode_columns_into(&v1, &mut columns).expect_err("v1 into columnar");
        prop_assert!(err.to_string().contains("AoS v1 frame"), "got: {err}");
        prop_assert!(columns.is_empty());

        let mut aos = Batch::new();
        let err = decode_batch_into(&v2, &mut aos).expect_err("v2 into v1 decoder");
        prop_assert!(err.to_string().contains("columnar v2 frame"), "got: {err}");
        prop_assert!(aos.is_empty());
    }
}
