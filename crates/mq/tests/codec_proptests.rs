//! Fuzz-style property tests for the columnar v2 wire frame.
//!
//! Four invariants pin the codec against the v1 path:
//!
//! 1. **Cross-layout equality** — the same logical batch encoded as an AoS
//!    v1 frame and as a columnar v2 frame decodes to identical contents,
//!    whichever decoder (layout-specific or version-sniffing) reads it.
//! 2. **Prefix rejection** — every strict prefix of a valid v2 frame fails
//!    to decode; there are no partial reads.
//! 3. **No panics on garbage** — arbitrary bytes never panic any decoder;
//!    they either decode (vanishingly unlikely) or return an error.
//! 4. **Cross-version rejection** — the v1 decoder names the v2 frame it
//!    refuses, and vice versa, so misrouted frames fail loudly rather than
//!    silently misparse.

use approxiot_core::{Batch, ColumnarBatch, StratumId, StreamItem, WeightMap};
use approxiot_mq::codec::{
    decode_batch, decode_batch_any_into, decode_batch_into, decode_columns, decode_columns_into,
    encode_batch, encode_batch_v2_into, encode_columns, encoded_len_columns, encoded_len_v2,
};
use bytes::BytesMut;
use proptest::prelude::*;

fn arb_batch() -> impl Strategy<Value = Batch> {
    (
        proptest::collection::vec((0u32..16, -1e9f64..1e9, 0u64..1000, 0u64..1_000_000), 0..50),
        proptest::collection::vec((0u32..16, 1.0f64..1e6), 0..8),
    )
        .prop_map(|(items, weights)| {
            let mut map = WeightMap::new();
            for (s, w) in weights {
                map.set(StratumId::new(s), w);
            }
            Batch::with_weights(
                map,
                items
                    .into_iter()
                    .map(|(s, v, seq, ts)| StreamItem::with_meta(StratumId::new(s), v, seq, ts))
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// v1 and v2 frames of the same batch decode to equal contents, via
    /// every decoder entry point, and the v2 length prediction holds.
    #[test]
    fn v2_roundtrip_matches_v1(batch in arb_batch()) {
        let v1 = encode_batch(&batch);
        let columns = ColumnarBatch::from_batch(&batch);
        let v2 = encode_columns(&columns);
        prop_assert_eq!(v2.len(), encoded_len_columns(&columns));
        prop_assert_eq!(v2.len(), encoded_len_v2(&batch));

        // Both strided-encode entry points emit identical bytes.
        let mut buf = BytesMut::new();
        encode_batch_v2_into(&batch, &mut buf);
        prop_assert_eq!(&buf[..], &v2[..]);

        // Layout-specific decoders agree across layouts.
        let from_v1 = decode_batch(&v1).expect("well-formed v1 frame");
        let from_v2 = decode_columns(&v2).expect("well-formed v2 frame");
        prop_assert_eq!(&from_v2.to_batch(), &from_v1);
        prop_assert_eq!(&from_v1, &batch);

        // The version-sniffing decoder accepts both and agrees too.
        let mut any = Batch::new();
        decode_batch_any_into(&v1, &mut any).expect("v1 via any");
        prop_assert_eq!(&any, &batch);
        decode_batch_any_into(&v2, &mut any).expect("v2 via any");
        prop_assert_eq!(&any, &batch);
    }

    /// Every strict prefix of a v2 frame is rejected, and the recycled
    /// output columns come back empty after the failure.
    #[test]
    fn v2_rejects_every_prefix(batch in arb_batch(), cut in 0usize..100) {
        let columns = ColumnarBatch::from_batch(&batch);
        let frame = encode_columns(&columns);
        let len = cut % frame.len(); // frame is never empty (header + counts)
        let mut out = ColumnarBatch::from_batch(&batch); // stale contents
        prop_assert!(decode_columns_into(&frame[..len], &mut out).is_err());
        prop_assert!(out.is_empty(), "failed decode must clear the output");
        let mut aos = Batch::new();
        prop_assert!(decode_batch_any_into(&frame[..len], &mut aos).is_err());
        prop_assert!(aos.is_empty());
    }

    /// Arbitrary bytes never panic any decoder.
    #[test]
    fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut columns = ColumnarBatch::new();
        let _ = decode_columns_into(&bytes, &mut columns);
        let mut batch = Batch::new();
        let _ = decode_batch_into(&bytes, &mut batch);
        let _ = decode_batch_any_into(&bytes, &mut batch);
    }

    /// Misrouted frames are rejected with an error naming the other
    /// version, for any batch shape.
    #[test]
    fn cross_version_frames_rejected_by_name(batch in arb_batch()) {
        let v1 = encode_batch(&batch);
        let v2 = encode_columns(&ColumnarBatch::from_batch(&batch));

        let mut columns = ColumnarBatch::from_batch(&batch);
        let err = decode_columns_into(&v1, &mut columns).expect_err("v1 into columnar");
        prop_assert!(err.to_string().contains("AoS v1 frame"), "got: {err}");
        prop_assert!(columns.is_empty());

        let mut aos = Batch::new();
        let err = decode_batch_into(&v2, &mut aos).expect_err("v2 into v1 decoder");
        prop_assert!(err.to_string().contains("columnar v2 frame"), "got: {err}");
        prop_assert!(aos.is_empty());
    }
}
