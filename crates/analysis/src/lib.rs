//! `approxiot-analysis` — offline static checks for the workspace's
//! determinism and safety contracts.
//!
//! The repo's central guarantee is that fixed-seed runs are bit-identical
//! across SimEngine and PipelineEngine-replay. That property is easy to
//! break silently: one stray wall-clock read in a replay path, one hash-map
//! iteration in a report writer, one RNG seeded outside the splitmix seed
//! families. Tests at a single seed may well miss all of these. This crate
//! walks the workspace `.rs` sources with a hand-rolled line/token scanner
//! (no external parser — the build environment is fully offline) and
//! enforces the named rules below, reporting `file:line` findings and
//! exiting non-zero from the `check` subcommand.
//!
//! | Rule | Contract |
//! |------|----------|
//! | D1 | no wall-clock reads outside the allowlisted clock-gated modules |
//! | D2 | no hash-map/hash-set types in non-test code (iteration order) |
//! | D3 | RNG seeding flows through the `Topology` seed-derivation helpers |
//! | S1 | every `unsafe` carries a `SAFETY:` comment; crate roots pin their unsafe posture |
//! | P1 | no `unwrap`/`expect`/`panic!` in non-test `runtime`/`mq`/`net` library code |
//! | W0 | waiver hygiene: well-formed, carries a reason, actually used |
//!
//! Exceptions are first-class, not silent: a trailing or immediately
//! preceding comment of the form
//!
//! ```text
//! // analysis: allow(P1, reason = "lock poisoning handled by caller")
//! ```
//!
//! suppresses exactly one rule on exactly one line. Waivers are counted and
//! reported per crate so reviewers see the full exception surface, and an
//! unused or reason-less waiver is itself a finding (W0).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// The named contracts the scanner enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads outside the clock-gated module allowlist.
    D1,
    /// Iteration-order-dependent collections in non-test code.
    D2,
    /// RNG seeding outside the topology seed-derivation families.
    D3,
    /// Unjustified `unsafe` or missing crate-level unsafe posture.
    S1,
    /// Panicking calls in non-test runtime/mq/net library code.
    P1,
    /// Waiver hygiene: malformed, reason-less, or unused waivers.
    W0,
}

impl Rule {
    pub const ALL: [Rule; 6] = [Rule::D1, Rule::D2, Rule::D3, Rule::S1, Rule::P1, Rule::W0];

    pub fn code(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::S1 => "S1",
            Rule::P1 => "P1",
            Rule::W0 => "W0",
        }
    }

    /// One-line description, shown by the `rules` subcommand.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D1 => {
                "no wall-clock (`Instant::now` / `SystemTime`) outside allowlisted clock modules"
            }
            Rule::D2 => {
                "no `HashMap` / `HashSet` in non-test code; use `BTreeMap` or sorted iteration"
            }
            Rule::D3 => {
                "RNG seeding flows through `Topology` seed helpers; no `thread_rng` / `from_entropy`"
            }
            Rule::S1 => {
                "every `unsafe` carries a `SAFETY:` comment; crate roots declare their unsafe posture"
            }
            Rule::P1 => {
                "no `.unwrap()` / `.expect(` / `panic!` in non-test runtime/mq/net code without a waiver"
            }
            Rule::W0 => "waivers must be well-formed, carry a reason, and suppress a real finding",
        }
    }

    /// Parse a rule code appearing inside a waiver annotation. `W0` is not
    /// waivable — hygiene findings always surface.
    pub fn parse_waivable(s: &str) -> Option<Rule> {
        match s {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "S1" => Some(Rule::S1),
            "P1" => Some(Rule::P1),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A single rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `analysis: allow(...)` annotation.
#[derive(Clone, Debug)]
pub struct Waiver {
    pub krate: String,
    pub file: String,
    /// Line the annotation comment sits on.
    pub line: usize,
    /// Code line the waiver applies to (same line for trailing comments,
    /// next non-blank code line for standalone comments).
    pub target_line: usize,
    pub rule: Rule,
    pub reason: String,
    pub used: bool,
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Static allowlists backing the rules. Paths are repo-root-relative with
/// `/` separators.
pub struct Config {
    /// Modules allowed to read the wall clock (D1): the clock abstraction
    /// itself plus the explicitly clock-gated wall-clock branches.
    pub d1_allow_files: &'static [&'static str],
    /// Modules allowed to call `seed_from_u64` directly (D3): worker-lane
    /// fan-out that derives per-shard seeds from an already-derived node
    /// seed, where the lane arithmetic is the documented scheme.
    pub d3_allow_files: &'static [&'static str],
    /// Topology seed-family helpers; a seeding call on the same line as one
    /// of these is by definition flowing through the derivation layer.
    pub d3_seed_helpers: &'static [&'static str],
    /// Crates whose non-test code must be panic-free without a waiver (P1).
    pub p1_crates: &'static [&'static str],
}

impl Default for Config {
    fn default() -> Self {
        Config {
            d1_allow_files: &[
                "crates/net/src/clock.rs",
                "crates/runtime/src/pipeline.rs",
                "crates/runtime/src/engine.rs",
                "crates/mq/src/consumer.rs",
            ],
            d3_allow_files: &[
                "crates/core/src/sampling/sharded.rs",
                "crates/runtime/src/pool.rs",
                "crates/runtime/src/node.rs",
            ],
            d3_seed_helpers: &[
                "node_seed",
                "hop_impairment_seed",
                "churn_seed",
                "replacement_seed",
                "root_seed",
            ],
            p1_crates: &["runtime", "mq", "net"],
        }
    }
}

impl Config {
    fn d1_allows(&self, rel_path: &str) -> bool {
        self.d1_allow_files.contains(&rel_path)
    }

    fn d3_allows(&self, rel_path: &str) -> bool {
        self.d3_allow_files.contains(&rel_path)
    }

    fn p1_applies(&self, krate: &str) -> bool {
        self.p1_crates.contains(&krate)
    }
}

// ---------------------------------------------------------------------------
// Source stripping: split each line into (code, comment), blanking string
// and char-literal contents so token matching never fires inside data.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct Stripped {
    code: String,
    comment: String,
}

#[derive(Clone, Copy)]
enum LexState {
    Code,
    /// Inside `/* ... */`, tracking nesting depth.
    Block(u32),
    /// Inside a normal (possibly byte) string literal.
    Str,
    /// Inside a raw string literal closed by `"` + this many `#`s.
    RawStr(u8),
}

/// Count `#`s after `chars[i]`, then require `"`; returns (hashes, consumed)
/// for a raw-string opener starting at the `r`.
fn raw_string_open(chars: &[char], i: usize) -> Option<(u8, usize)> {
    let mut j = i + 1;
    let mut hashes = 0u8;
    while chars.get(j) == Some(&'#') {
        hashes = hashes.saturating_add(1);
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn strip_lines(text: &str) -> Vec<Stripped> {
    let mut out = Vec::new();
    let mut state = LexState::Code;
    for raw in text.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut line = Stripped::default();
        let mut i = 0;
        while i < chars.len() {
            match state {
                LexState::Code => {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    let prev_ident = i > 0 && is_ident_char(chars[i - 1]);
                    if c == '/' && next == Some('/') {
                        line.comment.extend(&chars[i + 2..]);
                        i = chars.len();
                    } else if c == '/' && next == Some('*') {
                        state = LexState::Block(1);
                        line.code.push(' ');
                        i += 2;
                    } else if c == '"' {
                        line.code.push('"');
                        state = LexState::Str;
                        i += 1;
                    } else if (c == 'r' && !prev_ident)
                        || (c == 'b' && !prev_ident && next == Some('r'))
                    {
                        let r_at = if c == 'b' { i + 1 } else { i };
                        if let Some((hashes, consumed)) = raw_string_open(&chars, r_at) {
                            line.code.push('"');
                            state = LexState::RawStr(hashes);
                            i = r_at + consumed;
                        } else {
                            line.code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal vs lifetime: a backslash or a closing
                        // quote two ahead means literal; otherwise lifetime.
                        if next == Some('\\') {
                            line.code.push_str("''");
                            i += 2;
                            while i < chars.len() && chars[i] != '\'' {
                                i += 1;
                            }
                            i += 1; // closing quote (or line end)
                        } else if chars.get(i + 2) == Some(&'\'') {
                            line.code.push_str("''");
                            i += 3;
                        } else {
                            line.code.push('\'');
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
                LexState::Block(depth) => {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    if c == '*' && next == Some('/') {
                        if depth == 1 {
                            state = LexState::Code;
                        } else {
                            state = LexState::Block(depth - 1);
                        }
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = LexState::Block(depth + 1);
                        i += 2;
                    } else {
                        line.comment.push(c);
                        i += 1;
                    }
                }
                LexState::Str => {
                    let c = chars[i];
                    if c == '\\' {
                        i += 2; // skip the escaped char (may run past EOL)
                    } else if c == '"' {
                        line.code.push('"');
                        state = LexState::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if chars[i] == '"' {
                        let close = (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'));
                        if close {
                            line.code.push('"');
                            state = LexState::Code;
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    i += 1;
                }
            }
        }
        out.push(line);
    }
    out
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// Word-boundary match: `needle` appears in `hay` not glued to identifier
/// characters on either side.
fn has_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(hay[..at].chars().next_back().unwrap_or(' '));
        let after = hay[at + needle.len()..].chars().next();
        let after_ok = !after.map(is_ident_char).unwrap_or(false);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

// ---------------------------------------------------------------------------
// #[cfg(test)] region tracking
// ---------------------------------------------------------------------------

/// Per-line flag: true when the line belongs to a `#[cfg(test)]` item
/// (the attribute line itself, the item body, and its closing brace).
fn test_regions(lines: &[Stripped]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Brace depths at which a cfg(test) item body opened.
    let mut test_entries: Vec<i64> = Vec::new();
    // Latched cfg(test) attribute waiting for its item's `{` (cancelled by
    // a `;` at the latch depth: the attribute decorated a braceless item).
    let mut pending_at: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        let mut in_test = !test_entries.is_empty() || pending_at.is_some();
        if line.code.contains("cfg(test") {
            pending_at = Some(depth);
            in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(latch) = pending_at.take() {
                        if latch + 1 == depth {
                            test_entries.push(depth);
                            in_test = true;
                        } else {
                            // A `{` deeper than the latch (e.g. inside an
                            // attribute argument) keeps the latch armed.
                            pending_at = Some(latch);
                        }
                    }
                }
                '}' => {
                    if test_entries.last() == Some(&depth) {
                        test_entries.pop();
                    }
                    depth -= 1;
                }
                ';' if pending_at == Some(depth) => {
                    pending_at = None;
                }
                _ => {}
            }
        }
        flags[idx] = in_test || !test_entries.is_empty();
    }
    flags
}

// ---------------------------------------------------------------------------
// Waiver parsing
// ---------------------------------------------------------------------------

const WAIVER_TAG: &str = "analysis:";

/// Parse one comment for a waiver annotation. Returns `Ok(None)` when the
/// comment carries no annotation, `Err(message)` for a malformed one.
fn parse_waiver(comment: &str) -> Result<Option<(Rule, String)>, String> {
    let Some(tag_at) = comment.find(WAIVER_TAG) else {
        return Ok(None);
    };
    let rest = comment[tag_at + WAIVER_TAG.len()..].trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(<rule>, reason = \"...\")` after `analysis:`".to_string());
    };
    let Some(close) = args.rfind(')') else {
        return Err("unclosed `allow(` in waiver".to_string());
    };
    let args = &args[..close];
    let (rule_str, reason_part) = match args.find(',') {
        Some(comma) => (args[..comma].trim(), Some(args[comma + 1..].trim())),
        None => (args.trim(), None),
    };
    let Some(rule) = Rule::parse_waivable(rule_str) else {
        return Err(format!("unknown or unwaivable rule `{rule_str}` in waiver"));
    };
    let Some(reason_part) = reason_part else {
        return Err(format!("waiver for {rule} is missing `reason = \"...\"`"));
    };
    let Some(quoted) = reason_part
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix('='))
        .map(str::trim_start)
    else {
        return Err(format!("waiver for {rule} is missing `reason = \"...\"`"));
    };
    let reason = quoted.trim_start_matches('"').trim_end_matches('"').trim();
    if reason.is_empty() {
        return Err(format!("waiver for {rule} has an empty reason"));
    }
    Ok(Some((rule, reason.to_string())))
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

/// Everything the scanner learned about one source file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub waivers: Vec<Waiver>,
    /// The file contains a bare `unsafe` token in code.
    pub has_unsafe_code: bool,
    /// The file declares `#![deny(unsafe_op_in_unsafe_fn)]`.
    pub declares_deny_unsafe_op: bool,
    /// The file declares `#![forbid(unsafe_code)]`.
    pub declares_forbid_unsafe: bool,
}

/// Run every line rule against one file's text. `rel_path` is repo-root
/// relative with `/` separators; `krate` is the workspace crate directory
/// name (`core`, `mq`, ... or `approxiot` for the facade).
pub fn analyze_source(cfg: &Config, krate: &str, rel_path: &str, text: &str) -> FileReport {
    let lines = strip_lines(text);
    let in_test = test_regions(&lines);
    let mut report = FileReport::default();

    // Pass 1: waivers (and W0 findings for malformed ones). Doc comments
    // (`///` / `//!`) never carry live waivers — they document the syntax.
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.comment.starts_with('/') || line.comment.starts_with('!') {
            continue;
        }
        match parse_waiver(&line.comment) {
            Ok(None) => {}
            Ok(Some((rule, reason))) => {
                let target_line = if line.code.trim().is_empty() {
                    // Standalone comment: applies to the next code line,
                    // looking through attribute lines (so a waiver can sit
                    // above e.g. `#[allow(clippy::disallowed_methods)]`).
                    lines[idx + 1..]
                        .iter()
                        .position(|l| {
                            let code = l.code.trim();
                            !code.is_empty() && !code.starts_with("#[")
                        })
                        .map(|off| lineno + 1 + off)
                        .unwrap_or(0)
                } else {
                    lineno
                };
                report.waivers.push(Waiver {
                    krate: krate.to_string(),
                    file: rel_path.to_string(),
                    line: lineno,
                    target_line,
                    rule,
                    reason,
                    used: false,
                });
            }
            Err(message) => report.findings.push(Finding {
                file: rel_path.to_string(),
                line: lineno,
                rule: Rule::W0,
                message,
            }),
        }
    }

    // Pass 2: line rules.
    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |line: usize, rule: Rule, message: String| {
        raw.push(Finding {
            file: rel_path.to_string(),
            line,
            rule,
            message,
        });
    };
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        let test = in_test[idx];

        // Crate-root posture declarations (recorded for the S1 crate check).
        let trimmed = code.trim_start();
        if trimmed.starts_with("#![") {
            if code.contains("deny(unsafe_op_in_unsafe_fn)") {
                report.declares_deny_unsafe_op = true;
            }
            if code.contains("forbid(unsafe_code)") {
                report.declares_forbid_unsafe = true;
            }
        }

        // D1: wall-clock reads.
        if !test && !cfg.d1_allows(rel_path) {
            if code.contains("Instant::now") {
                push(
                    lineno,
                    Rule::D1,
                    "wall-clock read `Instant::now` outside the clock-gated allowlist".into(),
                );
            } else if has_word(code, "SystemTime") {
                push(
                    lineno,
                    Rule::D1,
                    "`SystemTime` outside the clock-gated allowlist".into(),
                );
            }
        }

        // D2: iteration-order-dependent collections.
        if !test {
            for ty in ["HashMap", "HashSet"] {
                if has_word(code, ty) {
                    push(
                        lineno,
                        Rule::D2,
                        format!("`{ty}` in non-test code; use `BTreeMap`/`BTreeSet` or sorted iteration"),
                    );
                    break;
                }
            }
        }

        // D3: seeding discipline.
        if has_word(code, "thread_rng") || has_word(code, "from_entropy") {
            push(
                lineno,
                Rule::D3,
                "entropy-based RNG construction; all randomness must be seeded".into(),
            );
        } else if !test
            && has_word(code, "seed_from_u64")
            && !cfg.d3_allows(rel_path)
            && !cfg.d3_seed_helpers.iter().any(|h| has_word(code, h))
        {
            push(
                lineno,
                Rule::D3,
                "raw `seed_from_u64` outside the topology seed-derivation helpers".into(),
            );
        }

        // S1: unsafe justification. Accept `SAFETY:` on the same line or in
        // the contiguous comment/attribute block immediately above.
        if has_word(code, "unsafe") {
            report.has_unsafe_code = true;
            let mut justified = line.comment.contains("SAFETY:");
            if !justified {
                for prev in lines[..idx].iter().rev() {
                    if prev.comment.contains("SAFETY:") {
                        justified = true;
                        break;
                    }
                    let prev_code = prev.code.trim();
                    if !prev_code.is_empty() && !prev_code.starts_with("#[") {
                        break;
                    }
                }
            }
            if !justified {
                push(
                    lineno,
                    Rule::S1,
                    "`unsafe` without a `// SAFETY:` justification".into(),
                );
            }
        }

        // P1: panicking calls in the panic-free crates.
        if !test && cfg.p1_applies(krate) {
            let pattern = if code.contains(".unwrap()") {
                Some(".unwrap()")
            } else if code.contains(".expect(") {
                Some(".expect(")
            } else if has_word(code, "panic!") {
                Some("panic!")
            } else {
                None
            };
            if let Some(pattern) = pattern {
                push(
                    lineno,
                    Rule::P1,
                    format!("`{pattern}` in non-test {krate} code; return a typed error or waive with a reason"),
                );
            }
        }
    }

    // Pass 3: waiver suppression.
    for finding in raw {
        let waiver = report
            .waivers
            .iter_mut()
            .find(|w| w.rule == finding.rule && w.target_line == finding.line);
        match waiver {
            Some(w) => w.used = true,
            None => report.findings.push(finding),
        }
    }

    // Pass 4: a waiver that suppressed nothing is itself a finding.
    for w in &report.waivers {
        if !w.used {
            report.findings.push(Finding {
                file: rel_path.to_string(),
                line: w.line,
                rule: Rule::W0,
                message: format!("waiver for {} does not suppress any finding", w.rule),
            });
        }
    }

    report.findings.sort();
    report
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// The product crates under scan: the facade package plus everything under
/// `crates/`. Vendored stand-ins (`vendor/`), integration tests, benches,
/// and examples are out of scope.
pub fn workspace_crates(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut crates = vec![("approxiot".to_string(), root.join("src"))];
    let crates_dir = root.join("crates");
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.path().join("src").is_dir() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    for name in names {
        let src = crates_dir.join(&name).join("src");
        crates.push((name, src));
    }
    Ok(crates)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Full workspace report: per-file findings plus the crate-level S1 posture
/// check (crates containing `unsafe` must deny `unsafe_op_in_unsafe_fn` at
/// every crate root; all others must forbid unsafe code outright).
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub waivers: Vec<Waiver>,
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Waiver counts keyed by (crate, rule), for the CI job summary.
    pub fn waiver_counts(&self) -> BTreeMap<(String, Rule), usize> {
        let mut counts = BTreeMap::new();
        for w in &self.waivers {
            *counts.entry((w.krate.clone(), w.rule)).or_insert(0) += 1;
        }
        counts
    }

    /// Markdown table of waiver counts per crate, one column per waivable
    /// rule — rendered into `$GITHUB_STEP_SUMMARY` by the CI job.
    pub fn summary_markdown(&self) -> String {
        let waivable = [Rule::D1, Rule::D2, Rule::D3, Rule::S1, Rule::P1];
        let counts = self.waiver_counts();
        let mut crates: Vec<&String> = counts.keys().map(|(k, _)| k).collect();
        crates.dedup();
        let mut out = String::from("## Static-analysis waivers\n\n");
        out.push_str(&format!(
            "{} file(s) scanned, {} finding(s), {} waiver(s).\n\n",
            self.files_scanned,
            self.findings.len(),
            self.waivers.len()
        ));
        out.push_str("| crate |");
        for r in waivable {
            out.push_str(&format!(" {r} |"));
        }
        out.push_str(" total |\n|---|");
        out.push_str(&"---|".repeat(waivable.len() + 1));
        out.push('\n');
        for krate in crates {
            let mut total = 0;
            let mut row = format!("| {krate} |");
            for r in waivable {
                let n = counts.get(&(krate.clone(), r)).copied().unwrap_or(0);
                total += n;
                row.push_str(&format!(" {n} |"));
            }
            out.push_str(&format!("{row} {total} |\n"));
        }
        out
    }
}

/// Scan every product crate under `root` and aggregate findings.
pub fn check_workspace(cfg: &Config, root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for (krate, src_dir) in workspace_crates(root)? {
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        let mut crate_has_unsafe = false;
        // (rel_path, declares_deny, declares_forbid) for each crate root.
        let mut roots: Vec<(String, bool, bool)> = Vec::new();
        for path in &files {
            let text = fs::read_to_string(path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            let file_report = analyze_source(cfg, &krate, &rel, &text);
            crate_has_unsafe |= file_report.has_unsafe_code;
            let within_src = path.strip_prefix(&src_dir).unwrap_or(path);
            let is_root = within_src == Path::new("lib.rs")
                || within_src == Path::new("main.rs")
                || within_src.starts_with("bin");
            if is_root {
                roots.push((
                    rel.clone(),
                    file_report.declares_deny_unsafe_op,
                    file_report.declares_forbid_unsafe,
                ));
            }
            report.findings.extend(file_report.findings);
            report.waivers.extend(file_report.waivers);
            report.files_scanned += 1;
        }
        for (rel, declares_deny, declares_forbid) in roots {
            if crate_has_unsafe && !declares_deny {
                report.findings.push(Finding {
                    file: rel,
                    line: 1,
                    rule: Rule::S1,
                    message: format!(
                        "crate `{krate}` contains unsafe code but this root lacks #![deny(unsafe_op_in_unsafe_fn)]"
                    ),
                });
            } else if !crate_has_unsafe && !declares_forbid {
                report.findings.push(Finding {
                    file: rel,
                    line: 1,
                    rule: Rule::S1,
                    message: format!("crate `{krate}` root lacks #![forbid(unsafe_code)]"),
                });
            }
        }
    }
    report.findings.sort();
    Ok(report)
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(krate: &str, path: &str, text: &str) -> FileReport {
        analyze_source(&Config::default(), krate, path, text)
    }

    #[test]
    fn stripper_separates_code_and_comments() {
        let lines = strip_lines("let x = 1; // trailing\n/* block */ let y = 2;\n");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert_eq!(lines[0].comment, " trailing");
        assert!(lines[1].code.contains("let y = 2;"));
        assert_eq!(lines[1].comment, " block ");
    }

    #[test]
    fn stripper_blanks_string_contents() {
        let lines = strip_lines(r#"call("seeded via thread_rng inside a string");"#);
        assert_eq!(lines[0].code, r#"call("");"#);
    }

    #[test]
    fn stripper_handles_raw_strings_and_char_literals() {
        let src = "let s = r#\"raw \"quoted\" body\"#; let c = '{'; let lt: &'static str = \"\";";
        let lines = strip_lines(src);
        assert!(!lines[0].code.contains("raw"));
        assert!(
            !lines[0].code.contains('{'),
            "char literal content must be blanked"
        );
        assert!(lines[0].code.contains("&'static str"));
    }

    #[test]
    fn stripper_tracks_multiline_block_comments() {
        let lines = strip_lines("/* one\n   two */ code();\n");
        assert_eq!(lines[0].code.trim(), "");
        assert!(lines[1].code.contains("code();"));
    }

    #[test]
    fn test_region_covers_mod_tests_and_cancels_on_semicolon() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n#[cfg(test)]\nuse foo;\nfn tail() {}\n";
        let lines = strip_lines(src);
        let flags = test_regions(&lines);
        assert_eq!(
            flags,
            vec![false, true, true, true, true, false, true, true, false]
        );
    }

    #[test]
    fn waiver_parses_rule_and_reason() {
        let parsed = parse_waiver(" analysis: allow(P1, reason = \"checked above\")").unwrap();
        let (rule, reason) = parsed.unwrap();
        assert_eq!(rule, Rule::P1);
        assert_eq!(reason, "checked above");
    }

    #[test]
    fn waiver_rejects_missing_reason_and_unknown_rule() {
        assert!(parse_waiver(" analysis: allow(P1)").is_err());
        assert!(parse_waiver(" analysis: allow(P1, reason = \"\")").is_err());
        assert!(parse_waiver(" analysis: allow(Z9, reason = \"x\")").is_err());
        assert!(
            parse_waiver(" analysis: allow(W0, reason = \"x\")").is_err(),
            "W0 is unwaivable"
        );
    }

    #[test]
    fn trailing_waiver_suppresses_and_is_marked_used() {
        let src = "fn f() {\n    x.unwrap() // analysis: allow(P1, reason = \"cannot fail\")\n}\n";
        let report = analyze("runtime", "crates/runtime/src/f.rs", src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.waivers[0].used);
    }

    #[test]
    fn standalone_waiver_targets_next_code_line() {
        let src =
            "fn f() {\n    // analysis: allow(P1, reason = \"cannot fail\")\n    x.unwrap();\n}\n";
        let report = analyze("runtime", "crates/runtime/src/f.rs", src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.waivers[0].target_line, 3);
    }

    #[test]
    fn unused_waiver_is_a_w0_finding() {
        let src = "// analysis: allow(D1, reason = \"nothing here\")\nfn f() {}\n";
        let report = analyze("core", "crates/core/src/f.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::W0);
    }

    #[test]
    fn rules_skip_strings_comments_and_test_code() {
        let src = concat!(
            "fn f() { log(\"Instant::now HashMap thread_rng .unwrap()\"); }\n",
            "// mentions Instant::now and HashMap in prose\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use std::collections::HashMap;\n",
            "    fn t() { let _ = x.unwrap(); }\n",
            "}\n",
        );
        let report = analyze("runtime", "crates/runtime/src/f.rs", src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn d3_allows_seeding_via_topology_helpers() {
        let ok = "let rng = StdRng::seed_from_u64(topology.node_seed(id));\n";
        let report = analyze("runtime", "crates/runtime/src/f.rs", ok);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        let bad = "let rng = StdRng::seed_from_u64(id * 31);\n";
        let report = analyze("runtime", "crates/runtime/src/f.rs", bad);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::D3);
    }

    #[test]
    fn s1_accepts_safety_comment_above_attribute() {
        let src = "// SAFETY: Job pointers outlive the worker.\n#[allow(dead_code)]\nunsafe impl Send for Job {}\n";
        let report = analyze("runtime", "crates/runtime/src/f.rs", src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.has_unsafe_code);
    }

    #[test]
    fn p1_only_applies_to_configured_crates() {
        let src = "fn f() { x.unwrap(); }\n";
        assert!(analyze("core", "crates/core/src/f.rs", src)
            .findings
            .is_empty());
        assert_eq!(analyze("net", "crates/net/src/f.rs", src).findings.len(), 1);
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f() { x.unwrap_or_else(PoisonError::into_inner); }\n";
        let report = analyze("runtime", "crates/runtime/src/f.rs", src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }
}
