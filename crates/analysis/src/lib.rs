//! `approxiot-analysis` — offline static checks for the workspace's
//! determinism and safety contracts.
//!
//! The repo's central guarantee is that fixed-seed runs are bit-identical
//! across SimEngine and PipelineEngine-replay. That property is easy to
//! break silently: one stray wall-clock read in a replay path, one hash-map
//! iteration in a report writer, one RNG seeded outside the splitmix seed
//! families. Tests at a single seed may well miss all of these. This crate
//! walks the workspace `.rs` sources with a hand-rolled line/token scanner
//! (no external parser — the build environment is fully offline) and
//! enforces the named rules below, reporting `file:line` findings and
//! exiting non-zero from the `check` subcommand.
//!
//! | Rule | Contract |
//! |------|----------|
//! | D1 | no wall-clock reads outside the allowlisted clock-gated modules |
//! | D2 | no hash-map/hash-set types in non-test code (iteration order) |
//! | D3 | RNG seed arguments trace to a `Topology` seed-derivation helper |
//! | S1 | every `unsafe` carries a `SAFETY:` comment; crate roots pin their unsafe posture |
//! | P1 | no `unwrap`/`expect`/`panic!` in non-test `runtime`/`mq`/`net` library code |
//! | C1 | the cross-function lock-acquisition-order graph is acyclic |
//! | C2 | no bounded-channel send under a lock; no bounded send/recv rings |
//! | C3 | no lock held across a blocking call (channel op, join, sleep) |
//! | W0 | waiver hygiene: well-formed, carries a reason, actually used |
//!
//! D1–P1 are line rules checked per file. C1–C3 are graph rules: a model
//! pass ([`model`]) summarizes each function's lock acquisitions, channel
//! endpoints, and blocking calls, a graph pass ([`graph`]) assembles the
//! workspace lock-order and channel-topology graphs, and
//! the private `rules_concurrency` pass walks them for cycles and
//! lock-held-across-block hazards. The `graph` subcommand renders both graphs as DOT.
//!
//! Exceptions are first-class, not silent: a trailing or immediately
//! preceding comment of the form
//!
//! ```text
//! // analysis: allow(P1, reason = "lock poisoning handled by caller")
//! ```
//!
//! suppresses exactly one rule on exactly one line. Waivers are counted and
//! reported per crate so reviewers see the full exception surface, and an
//! unused or reason-less waiver is itself a finding (W0).

#![forbid(unsafe_code)]

pub mod graph;
pub mod model;
mod rules_concurrency;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// The named contracts the scanner enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads outside the clock-gated module allowlist.
    D1,
    /// Iteration-order-dependent collections in non-test code.
    D2,
    /// RNG seeding outside the topology seed-derivation families.
    D3,
    /// Unjustified `unsafe` or missing crate-level unsafe posture.
    S1,
    /// Panicking calls in non-test runtime/mq/net library code.
    P1,
    /// Lock-acquisition-order cycles (potential deadlock).
    C1,
    /// Channel-topology hazards: bounded send under lock, bounded rings.
    C2,
    /// Lock held across a blocking call.
    C3,
    /// Waiver hygiene: malformed, reason-less, or unused waivers.
    W0,
}

impl Rule {
    pub const ALL: [Rule; 9] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::S1,
        Rule::P1,
        Rule::C1,
        Rule::C2,
        Rule::C3,
        Rule::W0,
    ];

    /// Every rule a waiver may name (everything but W0 itself).
    pub const WAIVABLE: [Rule; 8] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::S1,
        Rule::P1,
        Rule::C1,
        Rule::C2,
        Rule::C3,
    ];

    pub fn code(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::S1 => "S1",
            Rule::P1 => "P1",
            Rule::C1 => "C1",
            Rule::C2 => "C2",
            Rule::C3 => "C3",
            Rule::W0 => "W0",
        }
    }

    /// One-line description, shown by the `rules` subcommand.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D1 => {
                "no wall-clock (`Instant::now` / `SystemTime`) outside allowlisted clock modules"
            }
            Rule::D2 => {
                "no `HashMap` / `HashSet` in non-test code; use `BTreeMap` or sorted iteration"
            }
            Rule::D3 => {
                "RNG seeding flows through `Topology` seed helpers; no `thread_rng` / `from_entropy`"
            }
            Rule::S1 => {
                "every `unsafe` carries a `SAFETY:` comment; crate roots declare their unsafe posture"
            }
            Rule::P1 => {
                "no `.unwrap()` / `.expect(` / `panic!` in non-test runtime/mq/net code without a waiver"
            }
            Rule::C1 => {
                "lock-acquisition order is globally consistent; any cross-function cycle is a potential deadlock"
            }
            Rule::C2 => {
                "no bounded-channel send while a lock is held; no send/recv rings over bounded channels"
            }
            Rule::C3 => {
                "no lock guard held across a blocking call (channel send/recv, `join`, sleep, `acquire`)"
            }
            Rule::W0 => "waivers must be well-formed, carry a reason, and suppress a real finding",
        }
    }

    /// Parse a rule code appearing inside a waiver annotation. `W0` is not
    /// waivable — hygiene findings always surface.
    pub fn parse_waivable(s: &str) -> Option<Rule> {
        Rule::WAIVABLE.into_iter().find(|r| r.code() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A single rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `analysis: allow(...)` annotation.
#[derive(Clone, Debug)]
pub struct Waiver {
    pub krate: String,
    pub file: String,
    /// Line the annotation comment sits on.
    pub line: usize,
    /// Code line the waiver applies to (same line for trailing comments,
    /// next non-blank code line for standalone comments).
    pub target_line: usize,
    pub rule: Rule,
    pub reason: String,
    pub used: bool,
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Static allowlists backing the rules. Paths are repo-root-relative with
/// `/` separators.
pub struct Config {
    /// Modules allowed to read the wall clock (D1): the clock abstraction
    /// itself plus the explicitly clock-gated wall-clock branches.
    pub d1_allow_files: &'static [&'static str],
    /// Modules allowed to call `seed_from_u64` directly (D3): worker-lane
    /// fan-out that derives per-shard seeds from an already-derived node
    /// seed, where the lane arithmetic is the documented scheme.
    pub d3_allow_files: &'static [&'static str],
    /// Topology seed-family helpers; a seeding call on the same line as one
    /// of these is by definition flowing through the derivation layer.
    pub d3_seed_helpers: &'static [&'static str],
    /// Crates whose non-test code must be panic-free without a waiver (P1).
    pub p1_crates: &'static [&'static str],
}

impl Default for Config {
    fn default() -> Self {
        Config {
            d1_allow_files: &[
                "crates/net/src/clock.rs",
                "crates/runtime/src/pipeline.rs",
                "crates/runtime/src/engine.rs",
                "crates/mq/src/consumer.rs",
            ],
            d3_allow_files: &[
                "crates/core/src/sampling/sharded.rs",
                "crates/runtime/src/pool.rs",
                "crates/runtime/src/node.rs",
            ],
            d3_seed_helpers: &[
                "node_seed",
                "hop_impairment_seed",
                "churn_seed",
                "replacement_seed",
                "root_seed",
            ],
            p1_crates: &["runtime", "mq", "net"],
        }
    }
}

impl Config {
    fn d1_allows(&self, rel_path: &str) -> bool {
        self.d1_allow_files.contains(&rel_path)
    }

    fn d3_allows(&self, rel_path: &str) -> bool {
        self.d3_allow_files.contains(&rel_path)
    }

    fn p1_applies(&self, krate: &str) -> bool {
        self.p1_crates.contains(&krate)
    }
}

// ---------------------------------------------------------------------------
// Source stripping: split each line into (code, comment), blanking string
// and char-literal contents so token matching never fires inside data.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
pub(crate) struct Stripped {
    pub(crate) code: String,
    pub(crate) comment: String,
}

#[derive(Clone, Copy)]
enum LexState {
    Code,
    /// Inside `/* ... */`, tracking nesting depth.
    Block(u32),
    /// Inside a normal (possibly byte) string literal.
    Str,
    /// Inside a raw string literal closed by `"` + this many `#`s.
    RawStr(u8),
}

/// Count `#`s after `chars[i]`, then require `"`; returns (hashes, consumed)
/// for a raw-string opener starting at the `r`.
fn raw_string_open(chars: &[char], i: usize) -> Option<(u8, usize)> {
    let mut j = i + 1;
    let mut hashes = 0u8;
    while chars.get(j) == Some(&'#') {
        hashes = hashes.saturating_add(1);
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

pub(crate) fn strip_lines(text: &str) -> Vec<Stripped> {
    let mut out = Vec::new();
    let mut state = LexState::Code;
    for raw in text.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut line = Stripped::default();
        let mut i = 0;
        while i < chars.len() {
            match state {
                LexState::Code => {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    let prev_ident = i > 0 && is_ident_char(chars[i - 1]);
                    if c == '/' && next == Some('/') {
                        line.comment.extend(&chars[i + 2..]);
                        i = chars.len();
                    } else if c == '/' && next == Some('*') {
                        state = LexState::Block(1);
                        line.code.push(' ');
                        i += 2;
                    } else if c == '"' {
                        line.code.push('"');
                        state = LexState::Str;
                        i += 1;
                    } else if (c == 'r' && !prev_ident)
                        || (c == 'b' && !prev_ident && next == Some('r'))
                    {
                        let r_at = if c == 'b' { i + 1 } else { i };
                        if let Some((hashes, consumed)) = raw_string_open(&chars, r_at) {
                            line.code.push('"');
                            state = LexState::RawStr(hashes);
                            i = r_at + consumed;
                        } else {
                            line.code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal vs lifetime: a backslash or a closing
                        // quote two ahead means literal; otherwise lifetime.
                        if next == Some('\\') {
                            line.code.push_str("''");
                            i += 2;
                            while i < chars.len() && chars[i] != '\'' {
                                i += 1;
                            }
                            i += 1; // closing quote (or line end)
                        } else if chars.get(i + 2) == Some(&'\'') {
                            line.code.push_str("''");
                            i += 3;
                        } else {
                            line.code.push('\'');
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
                LexState::Block(depth) => {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    if c == '*' && next == Some('/') {
                        if depth == 1 {
                            state = LexState::Code;
                        } else {
                            state = LexState::Block(depth - 1);
                        }
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = LexState::Block(depth + 1);
                        i += 2;
                    } else {
                        line.comment.push(c);
                        i += 1;
                    }
                }
                LexState::Str => {
                    let c = chars[i];
                    if c == '\\' {
                        i += 2; // skip the escaped char (may run past EOL)
                    } else if c == '"' {
                        line.code.push('"');
                        state = LexState::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if chars[i] == '"' {
                        let close = (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'));
                        if close {
                            line.code.push('"');
                            state = LexState::Code;
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    i += 1;
                }
            }
        }
        out.push(line);
    }
    out
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// Word-boundary match: `needle` appears in `hay` not glued to identifier
/// characters on either side.
pub(crate) fn has_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(hay[..at].chars().next_back().unwrap_or(' '));
        let after = hay[at + needle.len()..].chars().next();
        let after_ok = !after.map(is_ident_char).unwrap_or(false);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

// ---------------------------------------------------------------------------
// #[cfg(test)] region tracking
// ---------------------------------------------------------------------------

/// Per-line flag: true when the line belongs to a `#[cfg(test)]` item
/// (the attribute line itself, the item body, and its closing brace).
pub(crate) fn test_regions(lines: &[Stripped]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Brace depths at which a cfg(test) item body opened.
    let mut test_entries: Vec<i64> = Vec::new();
    // Latched cfg(test) attribute waiting for its item's `{` (cancelled by
    // a `;` at the latch depth: the attribute decorated a braceless item).
    let mut pending_at: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        let mut in_test = !test_entries.is_empty() || pending_at.is_some();
        if line.code.contains("cfg(test") {
            pending_at = Some(depth);
            in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(latch) = pending_at.take() {
                        if latch + 1 == depth {
                            test_entries.push(depth);
                            in_test = true;
                        } else {
                            // A `{` deeper than the latch (e.g. inside an
                            // attribute argument) keeps the latch armed.
                            pending_at = Some(latch);
                        }
                    }
                }
                '}' => {
                    if test_entries.last() == Some(&depth) {
                        test_entries.pop();
                    }
                    depth -= 1;
                }
                ';' if pending_at == Some(depth) => {
                    pending_at = None;
                }
                _ => {}
            }
        }
        flags[idx] = in_test || !test_entries.is_empty();
    }
    flags
}

// ---------------------------------------------------------------------------
// Waiver parsing
// ---------------------------------------------------------------------------

const WAIVER_TAG: &str = "analysis:";

/// Parse one comment for a waiver annotation. Returns `Ok(None)` when the
/// comment carries no annotation, `Err(message)` for a malformed one.
fn parse_waiver(comment: &str) -> Result<Option<(Rule, String)>, String> {
    let Some(tag_at) = comment.find(WAIVER_TAG) else {
        return Ok(None);
    };
    let rest = comment[tag_at + WAIVER_TAG.len()..].trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(<rule>, reason = \"...\")` after `analysis:`".to_string());
    };
    let Some(close) = args.rfind(')') else {
        return Err("unclosed `allow(` in waiver".to_string());
    };
    let args = &args[..close];
    let (rule_str, reason_part) = match args.find(',') {
        Some(comma) => (args[..comma].trim(), Some(args[comma + 1..].trim())),
        None => (args.trim(), None),
    };
    let Some(rule) = Rule::parse_waivable(rule_str) else {
        return Err(format!("unknown or unwaivable rule `{rule_str}` in waiver"));
    };
    let Some(reason_part) = reason_part else {
        return Err(format!("waiver for {rule} is missing `reason = \"...\"`"));
    };
    let Some(quoted) = reason_part
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix('='))
        .map(str::trim_start)
    else {
        return Err(format!("waiver for {rule} is missing `reason = \"...\"`"));
    };
    let reason = quoted.trim_start_matches('"').trim_end_matches('"').trim();
    if reason.is_empty() {
        return Err(format!("waiver for {rule} has an empty reason"));
    }
    Ok(Some((rule, reason.to_string())))
}

// ---------------------------------------------------------------------------
// D3 seed-flow taint
// ---------------------------------------------------------------------------

/// Argument text of the `seed_from_u64(...)` call starting on `lines[idx]`,
/// spanning up to 8 lines for multi-line argument lists. `None` when the
/// token is not followed by a parseable call.
fn seed_call_args(lines: &[Stripped], idx: usize) -> Option<String> {
    let code = lines[idx].code.as_str();
    let at = code.find("seed_from_u64")?;
    let after = &code[at + "seed_from_u64".len()..];
    let open = after.find('(')?;
    if !after[..open].trim().is_empty() {
        return None;
    }
    let start_col = at + "seed_from_u64".len() + open;
    let mut depth = 0i32;
    let mut args = String::new();
    for (j, line) in lines[idx..].iter().take(8).enumerate() {
        let text = if j == 0 {
            &line.code[start_col..]
        } else {
            line.code.as_str()
        };
        for c in text.chars() {
            match c {
                '(' => {
                    if depth > 0 {
                        args.push(c);
                    }
                    depth += 1;
                }
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(args);
                    }
                    args.push(c);
                }
                _ if depth > 0 => args.push(c),
                _ => {}
            }
        }
        args.push(' ');
    }
    None
}

/// Identifier tokens in an expression, minus numeric literals and binding
/// noise — the candidates for taint tracing.
fn ident_tokens(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if is_ident_char(c) {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out.retain(|t| {
        !t.starts_with(|c: char| c.is_ascii_digit())
            && !matches!(t.as_str(), "self" | "mut" | "let" | "as" | "ref")
    });
    out
}

/// The right-hand side of a `ident = ...` / `let ident = ...` assignment on
/// this line, if any (`==` comparisons and `=>` match arms excluded).
fn assignment_rhs(code: &str, ident: &str) -> Option<String> {
    let mut start = 0;
    while let Some(pos) = code[start..].find(ident) {
        let at = start + pos;
        start = at + ident.len();
        let before_ok = at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
        let after = &code[at + ident.len()..];
        if !before_ok || after.chars().next().map(is_ident_char).unwrap_or(false) {
            continue;
        }
        let rest = after.trim_start();
        if let Some(rhs) = rest.strip_prefix('=') {
            if !rhs.starts_with('=') && !rhs.starts_with('>') {
                return Some(rhs.trim().trim_end_matches(';').trim().to_string());
            }
        }
    }
    None
}

/// Does `ident` trace back to a seed-helper call through local
/// assignments? Reverse scan for the nearest assignment at or before
/// `use_idx`; its RHS either names a helper directly or the trace recurses
/// into the RHS identifiers. The nearest assignment decides — shadowing
/// resolves conservatively toward a finding.
fn traces_to_helper(
    cfg: &Config,
    lines: &[Stripped],
    use_idx: usize,
    ident: &str,
    depth: usize,
    visited: &mut Vec<String>,
) -> bool {
    if depth == 0 || visited.iter().any(|v| v == ident) {
        return false;
    }
    visited.push(ident.to_string());
    for j in (0..=use_idx).rev() {
        let Some(rhs) = assignment_rhs(&lines[j].code, ident) else {
            continue;
        };
        if cfg.d3_seed_helpers.iter().any(|h| has_word(&rhs, h)) {
            return true;
        }
        return ident_tokens(&rhs)
            .iter()
            .any(|tok| tok != ident && traces_to_helper(cfg, lines, j, tok, depth - 1, visited));
    }
    false
}

/// D3 taint verdict for the seeding call on `lines[idx]`: clean iff a seed
/// helper appears in the argument list, or any argument identifier traces
/// back to a helper call through local assignments.
fn d3_seed_flows_from_helper(cfg: &Config, lines: &[Stripped], idx: usize) -> bool {
    let Some(args) = seed_call_args(lines, idx) else {
        // Unparsable call shape (e.g. a bare path mention): fall back to the
        // same-line helper check.
        return cfg
            .d3_seed_helpers
            .iter()
            .any(|h| has_word(&lines[idx].code, h));
    };
    if cfg.d3_seed_helpers.iter().any(|h| has_word(&args, h)) {
        return true;
    }
    ident_tokens(&args).iter().any(|tok| {
        let mut visited = Vec::new();
        traces_to_helper(cfg, lines, idx, tok, 8, &mut visited)
    })
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

/// Everything the scanner learned about one source file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub waivers: Vec<Waiver>,
    /// The file contains a bare `unsafe` token in code.
    pub has_unsafe_code: bool,
    /// The file declares `#![deny(unsafe_op_in_unsafe_fn)]`.
    pub declares_deny_unsafe_op: bool,
    /// The file declares `#![forbid(unsafe_code)]`.
    pub declares_forbid_unsafe: bool,
}

/// Run every line rule against one file's text. `rel_path` is repo-root
/// relative with `/` separators; `krate` is the workspace crate directory
/// name (`core`, `mq`, ... or `approxiot` for the facade).
pub fn analyze_source(cfg: &Config, krate: &str, rel_path: &str, text: &str) -> FileReport {
    let lines = strip_lines(text);
    let in_test = test_regions(&lines);
    let mut report = FileReport::default();

    // Pass 1: waivers (and W0 findings for malformed ones). Doc comments
    // (`///` / `//!`) never carry live waivers — they document the syntax.
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.comment.starts_with('/') || line.comment.starts_with('!') {
            continue;
        }
        match parse_waiver(&line.comment) {
            Ok(None) => {}
            Ok(Some((rule, reason))) => {
                let target_line = if line.code.trim().is_empty() {
                    // Standalone comment: applies to the next code line,
                    // looking through attribute lines (so a waiver can sit
                    // above e.g. `#[allow(clippy::disallowed_methods)]`).
                    lines[idx + 1..]
                        .iter()
                        .position(|l| {
                            let code = l.code.trim();
                            !code.is_empty() && !code.starts_with("#[")
                        })
                        .map(|off| lineno + 1 + off)
                        .unwrap_or(0)
                } else {
                    lineno
                };
                report.waivers.push(Waiver {
                    krate: krate.to_string(),
                    file: rel_path.to_string(),
                    line: lineno,
                    target_line,
                    rule,
                    reason,
                    used: false,
                });
            }
            Err(message) => report.findings.push(Finding {
                file: rel_path.to_string(),
                line: lineno,
                rule: Rule::W0,
                message,
            }),
        }
    }

    // Pass 2: line rules.
    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |line: usize, rule: Rule, message: String| {
        raw.push(Finding {
            file: rel_path.to_string(),
            line,
            rule,
            message,
        });
    };
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        let test = in_test[idx];

        // Crate-root posture declarations (recorded for the S1 crate check).
        let trimmed = code.trim_start();
        if trimmed.starts_with("#![") {
            if code.contains("deny(unsafe_op_in_unsafe_fn)") {
                report.declares_deny_unsafe_op = true;
            }
            if code.contains("forbid(unsafe_code)") {
                report.declares_forbid_unsafe = true;
            }
        }

        // D1: wall-clock reads.
        if !test && !cfg.d1_allows(rel_path) {
            if code.contains("Instant::now") {
                push(
                    lineno,
                    Rule::D1,
                    "wall-clock read `Instant::now` outside the clock-gated allowlist".into(),
                );
            } else if has_word(code, "SystemTime") {
                push(
                    lineno,
                    Rule::D1,
                    "`SystemTime` outside the clock-gated allowlist".into(),
                );
            }
        }

        // D2: iteration-order-dependent collections.
        if !test {
            for ty in ["HashMap", "HashSet"] {
                if has_word(code, ty) {
                    push(
                        lineno,
                        Rule::D2,
                        format!("`{ty}` in non-test code; use `BTreeMap`/`BTreeSet` or sorted iteration"),
                    );
                    break;
                }
            }
        }

        // D3: seeding discipline. Entropy sources are banned outright; a
        // `seed_from_u64` argument must *trace back* to a topology seed
        // helper through local assignments (seed-flow taint), not merely
        // avoid banned tokens.
        if has_word(code, "thread_rng") || has_word(code, "from_entropy") {
            push(
                lineno,
                Rule::D3,
                "entropy-based RNG construction; all randomness must be seeded".into(),
            );
        } else if !test
            && has_word(code, "seed_from_u64")
            && !cfg.d3_allows(rel_path)
            && !d3_seed_flows_from_helper(cfg, &lines, idx)
        {
            push(
                lineno,
                Rule::D3,
                "`seed_from_u64` argument does not trace back to a topology seed helper".into(),
            );
        }

        // S1: unsafe justification. Accept `SAFETY:` on the same line or in
        // the contiguous comment/attribute block immediately above.
        if has_word(code, "unsafe") {
            report.has_unsafe_code = true;
            let mut justified = line.comment.contains("SAFETY:");
            if !justified {
                for prev in lines[..idx].iter().rev() {
                    if prev.comment.contains("SAFETY:") {
                        justified = true;
                        break;
                    }
                    let prev_code = prev.code.trim();
                    if !prev_code.is_empty() && !prev_code.starts_with("#[") {
                        break;
                    }
                }
            }
            if !justified {
                push(
                    lineno,
                    Rule::S1,
                    "`unsafe` without a `// SAFETY:` justification".into(),
                );
            }
        }

        // P1: panicking calls in the panic-free crates.
        if !test && cfg.p1_applies(krate) {
            let pattern = if code.contains(".unwrap()") {
                Some(".unwrap()")
            } else if code.contains(".expect(") {
                Some(".expect(")
            } else if has_word(code, "panic!") {
                Some("panic!")
            } else {
                None
            };
            if let Some(pattern) = pattern {
                push(
                    lineno,
                    Rule::P1,
                    format!("`{pattern}` in non-test {krate} code; return a typed error or waive with a reason"),
                );
            }
        }
    }

    // Pass 3: waiver suppression. Unused waivers are NOT flagged here —
    // the graph rules run at workspace level and may still consume them;
    // `check_sources` audits leftovers as W0.
    for finding in raw {
        let waiver = report
            .waivers
            .iter_mut()
            .find(|w| w.rule == finding.rule && w.target_line == finding.line);
        match waiver {
            Some(w) => w.used = true,
            None => report.findings.push(finding),
        }
    }

    report.findings.sort();
    report
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// The product crates under scan: the facade package plus everything under
/// `crates/`. Vendored stand-ins (`vendor/`), integration tests, benches,
/// and examples are out of scope.
pub fn workspace_crates(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut crates = vec![("approxiot".to_string(), root.join("src"))];
    let crates_dir = root.join("crates");
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.path().join("src").is_dir() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    for name in names {
        let src = crates_dir.join(&name).join("src");
        crates.push((name, src));
    }
    Ok(crates)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Full workspace report: per-file findings plus the crate-level S1 posture
/// check (crates containing `unsafe` must deny `unsafe_op_in_unsafe_fn` at
/// every crate root; all others must forbid unsafe code outright).
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub waivers: Vec<Waiver>,
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Waiver counts keyed by (crate, rule), for the CI job summary.
    pub fn waiver_counts(&self) -> BTreeMap<(String, Rule), usize> {
        let mut counts = BTreeMap::new();
        for w in &self.waivers {
            *counts.entry((w.krate.clone(), w.rule)).or_insert(0) += 1;
        }
        counts
    }

    /// Per-rule findings/waivers table — appended to the CI job summary so
    /// reviewers see which contracts are doing work on every run.
    pub fn rules_markdown(&self) -> String {
        let mut out =
            String::from("## Findings by rule\n\n| rule | findings | waivers |\n|---|---|---|\n");
        for r in Rule::ALL {
            let f = self.findings.iter().filter(|x| x.rule == r).count();
            let w = self.waivers.iter().filter(|x| x.rule == r).count();
            out.push_str(&format!("| {r} | {f} | {w} |\n"));
        }
        out
    }

    /// Machine-readable findings for CI artifacts. Hand-rolled JSON — the
    /// crate is deliberately dependency-free.
    pub fn findings_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.rule,
                json_escape(&f.message)
            ));
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"crate\": \"{}\", \"file\": \"{}\", \"line\": {}, \"target_line\": {}, \"rule\": \"{}\", \"reason\": \"{}\", \"used\": {}}}",
                json_escape(&w.krate),
                json_escape(&w.file),
                w.line,
                w.target_line,
                w.rule,
                json_escape(&w.reason),
                w.used
            ));
        }
        out.push_str(if self.waivers.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Markdown table of waiver counts per crate, one column per waivable
    /// rule — rendered into `$GITHUB_STEP_SUMMARY` by the CI job.
    pub fn summary_markdown(&self) -> String {
        let waivable = Rule::WAIVABLE;
        let counts = self.waiver_counts();
        let mut crates: Vec<&String> = counts.keys().map(|(k, _)| k).collect();
        crates.dedup();
        let mut out = String::from("## Static-analysis waivers\n\n");
        out.push_str(&format!(
            "{} file(s) scanned, {} finding(s), {} waiver(s).\n\n",
            self.files_scanned,
            self.findings.len(),
            self.waivers.len()
        ));
        out.push_str("| crate |");
        for r in waivable {
            out.push_str(&format!(" {r} |"));
        }
        out.push_str(" total |\n|---|");
        out.push_str(&"---|".repeat(waivable.len() + 1));
        out.push('\n');
        for krate in crates {
            let mut total = 0;
            let mut row = format!("| {krate} |");
            for r in waivable {
                let n = counts.get(&(krate.clone(), r)).copied().unwrap_or(0);
                total += n;
                row.push_str(&format!(" {n} |"));
            }
            out.push_str(&format!("{row} {total} |\n"));
        }
        out
    }
}

/// One source file queued for analysis.
pub struct SourceSpec {
    pub krate: String,
    pub rel_path: String,
    pub text: String,
}

/// Load every `.rs` file of every product crate under `root`.
pub fn load_sources(root: &Path) -> io::Result<Vec<SourceSpec>> {
    let mut out = Vec::new();
    for (krate, src_dir) in workspace_crates(root)? {
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        for path in &files {
            let text = fs::read_to_string(path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceSpec {
                krate: krate.clone(),
                rel_path: rel,
                text,
            });
        }
    }
    Ok(out)
}

fn is_crate_root(rel: &str) -> bool {
    rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs") || rel.contains("/src/bin/")
}

/// Build the workspace concurrency model for a source set — what the
/// `graph` subcommand renders as DOT.
pub fn workspace_model(sources: &[SourceSpec]) -> graph::WorkspaceModel {
    graph::WorkspaceModel::new(
        sources
            .iter()
            .map(|s| model::FileModel::build(&s.rel_path, &s.text))
            .collect(),
    )
}

/// Run the full pipeline over an explicit source set: per-file line rules,
/// crate-level S1 posture (for crates whose root is in the set), the
/// workspace concurrency rules, and the unused-waiver audit.
pub fn check_sources(cfg: &Config, sources: &[SourceSpec]) -> Report {
    // krate -> (has_unsafe, crate roots as (rel, declares_deny, declares_forbid))
    type Posture = BTreeMap<String, (bool, Vec<(String, bool, bool)>)>;
    let mut report = Report::default();
    let mut models = Vec::new();
    let mut posture: Posture = BTreeMap::new();
    for s in sources {
        let fr = analyze_source(cfg, &s.krate, &s.rel_path, &s.text);
        let entry = posture.entry(s.krate.clone()).or_default();
        entry.0 |= fr.has_unsafe_code;
        if is_crate_root(&s.rel_path) {
            entry.1.push((
                s.rel_path.clone(),
                fr.declares_deny_unsafe_op,
                fr.declares_forbid_unsafe,
            ));
        }
        report.findings.extend(fr.findings);
        report.waivers.extend(fr.waivers);
        models.push(model::FileModel::build(&s.rel_path, &s.text));
        report.files_scanned += 1;
    }
    for (krate, (has_unsafe, roots)) in &posture {
        for (rel, declares_deny, declares_forbid) in roots {
            if *has_unsafe && !declares_deny {
                report.findings.push(Finding {
                    file: rel.clone(),
                    line: 1,
                    rule: Rule::S1,
                    message: format!(
                        "crate `{krate}` contains unsafe code but this root lacks #![deny(unsafe_op_in_unsafe_fn)]"
                    ),
                });
            } else if !*has_unsafe && !declares_forbid {
                report.findings.push(Finding {
                    file: rel.clone(),
                    line: 1,
                    rule: Rule::S1,
                    message: format!("crate `{krate}` root lacks #![forbid(unsafe_code)]"),
                });
            }
        }
    }

    // Concurrency graph rules, suppressed against the workspace waiver set.
    let ws = graph::WorkspaceModel::new(models);
    for finding in rules_concurrency::check(&ws) {
        let waiver = report.waivers.iter_mut().find(|w| {
            w.rule == finding.rule && w.file == finding.file && w.target_line == finding.line
        });
        match waiver {
            Some(w) => w.used = true,
            None => report.findings.push(finding),
        }
    }

    // W0 audit: a waiver that suppressed nothing anywhere is a finding.
    let unused: Vec<Finding> = report
        .waivers
        .iter()
        .filter(|w| !w.used)
        .map(|w| Finding {
            file: w.file.clone(),
            line: w.line,
            rule: Rule::W0,
            message: format!("waiver for {} does not suppress any finding", w.rule),
        })
        .collect();
    report.findings.extend(unused);

    report.findings.sort();
    report
}

/// Scan every product crate under `root` and aggregate findings.
pub fn check_workspace(cfg: &Config, root: &Path) -> io::Result<Report> {
    Ok(check_sources(cfg, &load_sources(root)?))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(krate: &str, path: &str, text: &str) -> FileReport {
        analyze_source(&Config::default(), krate, path, text)
    }

    #[test]
    fn stripper_separates_code_and_comments() {
        let lines = strip_lines("let x = 1; // trailing\n/* block */ let y = 2;\n");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert_eq!(lines[0].comment, " trailing");
        assert!(lines[1].code.contains("let y = 2;"));
        assert_eq!(lines[1].comment, " block ");
    }

    #[test]
    fn stripper_blanks_string_contents() {
        let lines = strip_lines(r#"call("seeded via thread_rng inside a string");"#);
        assert_eq!(lines[0].code, r#"call("");"#);
    }

    #[test]
    fn stripper_handles_raw_strings_and_char_literals() {
        let src = "let s = r#\"raw \"quoted\" body\"#; let c = '{'; let lt: &'static str = \"\";";
        let lines = strip_lines(src);
        assert!(!lines[0].code.contains("raw"));
        assert!(
            !lines[0].code.contains('{'),
            "char literal content must be blanked"
        );
        assert!(lines[0].code.contains("&'static str"));
    }

    #[test]
    fn stripper_tracks_multiline_block_comments() {
        let lines = strip_lines("/* one\n   two */ code();\n");
        assert_eq!(lines[0].code.trim(), "");
        assert!(lines[1].code.contains("code();"));
    }

    #[test]
    fn test_region_covers_mod_tests_and_cancels_on_semicolon() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n#[cfg(test)]\nuse foo;\nfn tail() {}\n";
        let lines = strip_lines(src);
        let flags = test_regions(&lines);
        assert_eq!(
            flags,
            vec![false, true, true, true, true, false, true, true, false]
        );
    }

    #[test]
    fn waiver_parses_rule_and_reason() {
        let parsed = parse_waiver(" analysis: allow(P1, reason = \"checked above\")").unwrap();
        let (rule, reason) = parsed.unwrap();
        assert_eq!(rule, Rule::P1);
        assert_eq!(reason, "checked above");
    }

    #[test]
    fn waiver_rejects_missing_reason_and_unknown_rule() {
        assert!(parse_waiver(" analysis: allow(P1)").is_err());
        assert!(parse_waiver(" analysis: allow(P1, reason = \"\")").is_err());
        assert!(parse_waiver(" analysis: allow(Z9, reason = \"x\")").is_err());
        assert!(
            parse_waiver(" analysis: allow(W0, reason = \"x\")").is_err(),
            "W0 is unwaivable"
        );
    }

    #[test]
    fn trailing_waiver_suppresses_and_is_marked_used() {
        let src = "fn f() {\n    x.unwrap() // analysis: allow(P1, reason = \"cannot fail\")\n}\n";
        let report = analyze("runtime", "crates/runtime/src/f.rs", src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.waivers[0].used);
    }

    #[test]
    fn standalone_waiver_targets_next_code_line() {
        let src =
            "fn f() {\n    // analysis: allow(P1, reason = \"cannot fail\")\n    x.unwrap();\n}\n";
        let report = analyze("runtime", "crates/runtime/src/f.rs", src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.waivers[0].target_line, 3);
    }

    #[test]
    fn unused_waiver_is_a_w0_finding() {
        // The unused-waiver audit runs at workspace level (graph rules may
        // consume a waiver the line rules did not), so exercise the full
        // `check_sources` pipeline.
        let src = "// analysis: allow(D1, reason = \"nothing here\")\nfn f() {}\n";
        let report = check_sources(
            &Config::default(),
            &[SourceSpec {
                krate: "core".to_string(),
                rel_path: "crates/core/src/f.rs".to_string(),
                text: src.to_string(),
            }],
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, Rule::W0);
    }

    #[test]
    fn rules_skip_strings_comments_and_test_code() {
        let src = concat!(
            "fn f() { log(\"Instant::now HashMap thread_rng .unwrap()\"); }\n",
            "// mentions Instant::now and HashMap in prose\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use std::collections::HashMap;\n",
            "    fn t() { let _ = x.unwrap(); }\n",
            "}\n",
        );
        let report = analyze("runtime", "crates/runtime/src/f.rs", src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn d3_allows_seeding_via_topology_helpers() {
        let ok = "let rng = StdRng::seed_from_u64(topology.node_seed(id));\n";
        let report = analyze("runtime", "crates/runtime/src/f.rs", ok);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        let bad = "let rng = StdRng::seed_from_u64(id * 31);\n";
        let report = analyze("runtime", "crates/runtime/src/f.rs", bad);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::D3);
    }

    #[test]
    fn d3_taint_traces_through_local_assignments() {
        let ok = concat!(
            "fn f(topology: &Topology, id: u64) {\n",
            "    let base = topology.node_seed(id);\n",
            "    let mixed = base ^ 0x9E37;\n",
            "    let rng = StdRng::seed_from_u64(mixed);\n",
            "}\n",
        );
        let report = analyze("runtime", "crates/runtime/src/f.rs", ok);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn d3_taint_rejects_laundered_constants() {
        // A chain of local assignments that never touches a seed helper
        // must still fire — token matching alone would have passed this
        // once the banned names were hidden behind a rename.
        let bad = concat!(
            "fn f(id: u64) {\n",
            "    let node_value = id.wrapping_mul(31);\n",
            "    let derived = node_value ^ 0x5EED;\n",
            "    let rng = StdRng::seed_from_u64(derived);\n",
            "}\n",
        );
        let report = analyze("runtime", "crates/runtime/src/f.rs", bad);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, Rule::D3);
        assert_eq!(report.findings[0].line, 4);
    }

    #[test]
    fn d3_taint_spans_multiline_argument_lists() {
        let ok = concat!(
            "fn f(topology: &Topology, id: u64) {\n",
            "    let rng = StdRng::seed_from_u64(\n",
            "        topology.churn_seed(id),\n",
            "    );\n",
            "}\n",
        );
        let report = analyze("runtime", "crates/runtime/src/f.rs", ok);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn s1_accepts_safety_comment_above_attribute() {
        let src = "// SAFETY: Job pointers outlive the worker.\n#[allow(dead_code)]\nunsafe impl Send for Job {}\n";
        let report = analyze("runtime", "crates/runtime/src/f.rs", src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.has_unsafe_code);
    }

    #[test]
    fn p1_only_applies_to_configured_crates() {
        let src = "fn f() { x.unwrap(); }\n";
        assert!(analyze("core", "crates/core/src/f.rs", src)
            .findings
            .is_empty());
        assert_eq!(analyze("net", "crates/net/src/f.rs", src).findings.len(), 1);
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f() { x.unwrap_or_else(PoisonError::into_inner); }\n";
        let report = analyze("runtime", "crates/runtime/src/f.rs", src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }
}
