//! Graph rules over the workspace concurrency model.
//!
//! - **C1** — the lock-acquisition-order graph must be acyclic. A cycle is
//!   a potential deadlock; the finding prints the full witness path (who
//!   acquires what where, while holding what).
//! - **C2** — channel topology: no send on a *bounded* channel while a
//!   lock is held (the send can block on backpressure with the lock
//!   pinned), and no send/recv ring among threads over bounded channels
//!   (a full queue stalls every member of the ring).
//! - **C3** — no lock held across any other blocking call: channel
//!   send/recv, `thread::sleep`, `join`, rate-limiter `acquire`. Condvar
//!   waits are exempt — they release the guard while parked.
//!
//! Findings anchor on real acquisition/send sites so the existing
//! `// analysis: allow(...)` waiver machinery can target them.

use std::collections::BTreeSet;

use crate::graph::{ChanEdge, LockEdge, WorkspaceModel};
use crate::{Finding, Rule};

pub fn check(ws: &WorkspaceModel) -> Vec<Finding> {
    let mut findings = Vec::new();

    // C1: lock-order cycles.
    for cycle in ws.lock_cycles() {
        let Some(first) = cycle.first() else { continue };
        let ring: Vec<&str> = cycle
            .iter()
            .map(|e| e.from.as_str())
            .chain(std::iter::once(first.from.as_str()))
            .collect();
        let witness: Vec<String> = cycle.iter().map(describe_lock_edge).collect();
        findings.push(Finding {
            file: first.file.clone(),
            line: first.line,
            rule: Rule::C1,
            message: format!(
                "potential deadlock: lock-order cycle {}; witness: {}",
                ring.join(" -> "),
                witness.join("; ")
            ),
        });
    }

    // C2a: bounded-channel send while holding a lock.
    for ctx in ws.contexts() {
        for op in &ctx.chan_ops {
            if op.role != crate::model::Role::Send || op.bounded != Some(true) {
                continue;
            }
            if let Some(guard) = ctx.guards_at(op.line).next() {
                findings.push(Finding {
                    file: ctx.file.clone(),
                    line: op.line,
                    rule: Rule::C2,
                    message: format!(
                        "send on bounded channel while holding lock `{}` in {} — backpressure can deadlock",
                        guard.lock, ctx.name
                    ),
                });
            }
        }
    }

    // C2b: send/recv rings over bounded channels.
    for cycle in ws.channel_cycles() {
        let Some(anchor) = cycle
            .iter()
            .min_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)))
        else {
            continue;
        };
        let ring: Vec<String> = cycle.iter().map(describe_chan_edge).collect();
        findings.push(Finding {
            file: anchor.file.clone(),
            line: anchor.line,
            rule: Rule::C2,
            message: format!(
                "bounded-channel send/recv cycle — a full queue can stall the ring: {}",
                ring.join("; ")
            ),
        });
    }

    // C3: lock held across a blocking call. Skip lines that already carry
    // a C2 finding — the bounded-send-under-lock case is the same defect
    // reported with more context.
    let c2_sites: BTreeSet<(String, usize)> = findings
        .iter()
        .filter(|f| f.rule == Rule::C2)
        .map(|f| (f.file.clone(), f.line))
        .collect();
    for ctx in ws.contexts() {
        for call in &ctx.blocking {
            if c2_sites.contains(&(ctx.file.clone(), call.line)) {
                continue;
            }
            if let Some(guard) = ctx.guards_at(call.line).next() {
                findings.push(Finding {
                    file: ctx.file.clone(),
                    line: call.line,
                    rule: Rule::C3,
                    message: format!(
                        "lock `{}` held across blocking {} in {} (acquired at line {})",
                        guard.lock, call.what, ctx.name, guard.line
                    ),
                });
            }
        }
    }

    findings.sort();
    findings.dedup();
    findings
}

fn describe_lock_edge(e: &LockEdge) -> String {
    match &e.via_call {
        Some(callee) => format!(
            "{} holds `{}` and calls {} which acquires `{}` at {}:{}",
            e.ctx, e.from, callee, e.to, e.file, e.line
        ),
        None => format!(
            "{} acquires `{}` at {}:{} while holding `{}`",
            e.ctx, e.to, e.file, e.line, e.from
        ),
    }
}

fn describe_chan_edge(e: &ChanEdge) -> String {
    format!(
        "{} sends at {}:{} on a bounded channel received by {}",
        e.from_ctx, e.file, e.line, e.to_ctx
    )
}
