//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p approxiot-analysis -- check [--root PATH] [--summary PATH]
//! cargo run -p approxiot-analysis -- rules
//! ```
//!
//! `check` exits 1 when any finding survives waiver suppression; `--summary`
//! writes the per-crate waiver table as markdown (CI appends it to the job
//! summary). `rules` prints the rule catalogue.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use approxiot_analysis::{check_workspace, Config, Rule};

fn usage() -> ExitCode {
    eprintln!("usage: approxiot-analysis <check [--root PATH] [--summary PATH] | rules>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for rule in Rule::ALL {
                println!("{rule}  {}", rule.summary());
            }
            ExitCode::SUCCESS
        }
        Some("check") => run_check(&args[1..]),
        _ => usage(),
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut summary: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "--summary" => match it.next() {
                Some(p) => summary = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = match check_workspace(&Config::default(), &root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("analysis: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = summary {
        if let Err(err) = std::fs::write(&path, report.summary_markdown()) {
            eprintln!(
                "analysis: failed to write summary {}: {err}",
                path.display()
            );
            return ExitCode::from(2);
        }
    }

    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "analysis: {} file(s) scanned, {} finding(s), {} waiver(s)",
        report.files_scanned,
        report.findings.len(),
        report.waivers.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
