//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p approxiot-analysis -- check [--root PATH] [--summary PATH]
//!                                          [--json PATH] [--format human|json]
//! cargo run -p approxiot-analysis -- graph [--root PATH] [--out PATH]
//! cargo run -p approxiot-analysis -- rules
//! ```
//!
//! `check` exits 1 when any finding survives waiver suppression; `--summary`
//! writes the per-crate waiver table plus the per-rule findings table as
//! markdown (CI appends it to the job summary), `--json` writes the
//! machine-readable findings (CI uploads it as an artifact), and
//! `--format json` prints that JSON to stdout instead of the human lines.
//! `graph` emits the workspace lock-order and channel-topology graphs as
//! one DOT digraph. `rules` prints the rule catalogue.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use approxiot_analysis::{check_sources, load_sources, workspace_model, Config, Rule};

fn usage() -> ExitCode {
    eprintln!(
        "usage: approxiot-analysis <check [--root PATH] [--summary PATH] [--json PATH] \
         [--format human|json] | graph [--root PATH] [--out PATH] | rules>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for rule in Rule::ALL {
                println!("{rule}  {}", rule.summary());
            }
            ExitCode::SUCCESS
        }
        Some("check") => run_check(&args[1..]),
        Some("graph") => run_graph(&args[1..]),
        _ => usage(),
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut summary: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut format = "human".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "--summary" => match it.next() {
                Some(p) => summary = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--json" => match it.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("human" | "json")) => format = f.to_string(),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    let sources = match load_sources(&root) {
        Ok(sources) => sources,
        Err(err) => {
            eprintln!("analysis: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    let report = check_sources(&Config::default(), &sources);

    if let Some(path) = summary {
        let text = format!("{}\n{}", report.summary_markdown(), report.rules_markdown());
        if let Err(err) = std::fs::write(&path, text) {
            eprintln!(
                "analysis: failed to write summary {}: {err}",
                path.display()
            );
            return ExitCode::from(2);
        }
    }
    if let Some(path) = json {
        if let Err(err) = std::fs::write(&path, report.findings_json()) {
            eprintln!("analysis: failed to write json {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }

    if format == "json" {
        print!("{}", report.findings_json());
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        println!(
            "analysis: {} file(s) scanned, {} finding(s), {} waiver(s)",
            report.files_scanned,
            report.findings.len(),
            report.waivers.len()
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_graph(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let sources = match load_sources(&root) {
        Ok(sources) => sources,
        Err(err) => {
            eprintln!("analysis: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    let dot = workspace_model(&sources).to_dot();
    match out {
        Some(path) => {
            if let Err(err) = std::fs::write(&path, &dot) {
                eprintln!("analysis: failed to write graph {}: {err}", path.display());
                return ExitCode::from(2);
            }
            println!("analysis: wrote {}", path.display());
        }
        None => print!("{dot}"),
    }
    ExitCode::SUCCESS
}
